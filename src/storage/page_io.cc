#include "storage/page_io.h"

#include <cstring>

#include "util/crc32c.h"
#include "util/slice.h"

namespace bess {

uint32_t PageCrc(uint16_t area_id, uint32_t page, const void* bytes) {
  uint32_t crc = crc32c::Value(static_cast<const char*>(bytes), kPageSize);
  char addr[8];
  EncodeFixed32(addr, area_id);
  EncodeFixed32(addr + 4, page);
  return crc32c::Extend(crc, addr, sizeof(addr));
}

void PageIntegrity::AddExtent() {
  std::lock_guard<std::mutex> lock(mu_);
  extents_.emplace_back(kPagesPerExtent);
  dirty_.push_back(0);
}

uint32_t PageIntegrity::extent_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint32_t>(extents_.size());
}

void PageIntegrity::EncodeExtent(uint32_t extent, char* out) {
  std::lock_guard<std::mutex> lock(mu_);
  char* entries = out + 4;
  for (uint32_t i = 0; i < kPagesPerExtent; ++i) {
    const PageTrailer& t = extents_[extent][i];
    EncodeFixed32(entries + i * kPageTrailerBytes, t.crc);
    EncodeFixed64(entries + i * kPageTrailerBytes + 4, t.lsn);
  }
  EncodeFixed32(out, crc32c::Mask(crc32c::Value(
                         entries, kPagesPerExtent * kPageTrailerBytes)));
  dirty_[extent] = 0;
}

bool PageIntegrity::DecodeExtent(uint32_t extent, const char* in) {
  std::lock_guard<std::mutex> lock(mu_);
  while (extents_.size() <= extent) {
    extents_.emplace_back(kPagesPerExtent);
    dirty_.push_back(0);
  }
  const char* entries = in + 4;
  uint32_t stored = DecodeFixed32(in);
  if (crc32c::Value(entries, kPagesPerExtent * kPageTrailerBytes) !=
      crc32c::Unmask(stored)) {
    // Torn trailer write or a pre-trailer-format area: degrade every page in
    // the extent to unstamped rather than refusing to open.
    for (PageTrailer& t : extents_[extent]) t = PageTrailer{};
    dirty_[extent] = 1;
    return false;
  }
  for (uint32_t i = 0; i < kPagesPerExtent; ++i) {
    PageTrailer& t = extents_[extent][i];
    t.crc = DecodeFixed32(entries + i * kPageTrailerBytes);
    t.lsn = DecodeFixed64(entries + i * kPageTrailerBytes + 4);
  }
  dirty_[extent] = 0;
  return true;
}

void PageIntegrity::Stamp(uint32_t page, const void* bytes, uint64_t lsn) {
  // The CRC walks the whole page; keep it off the trailer mutex so
  // concurrent stampers (async write-back batches) don't serialize on it.
  // The caller owns the page buffer for the duration (frame is kWriting),
  // so computing outside the lock reads stable bytes.
  const uint32_t crc = crc32c::Mask(PageCrc(area_id_, page, bytes));
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t extent = page / kPagesPerExtent;
  if (extent >= extents_.size()) return;
  PageTrailer& t = extents_[extent][page % kPagesPerExtent];
  t.crc = crc;
  // Keep (crc==0, lsn==0) reserved for "never stamped": non-WAL writes get a
  // locally monotone pseudo-LSN instead of 0.
  t.lsn = lsn != 0 ? lsn : ++stamp_seq_;
  dirty_[extent] = 1;
}

PageIntegrity::Verdict PageIntegrity::Verify(uint32_t page,
                                             const void* bytes) const {
  // Snapshot the expected trailer under the mutex, then compute the page
  // CRC outside it: holding mu_ across a full-page checksum serializes
  // every concurrent reader's verification (the pool backend runs many at
  // once), turning the trailer lock into a read-path bottleneck.
  uint32_t expected;
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint32_t extent = page / kPagesPerExtent;
    if (extent >= extents_.size()) return Verdict::kUnstamped;
    const PageTrailer& t = extents_[extent][page % kPagesPerExtent];
    if (t.crc == 0 && t.lsn == 0) return Verdict::kUnstamped;
    expected = t.crc;
  }
  return crc32c::Unmask(expected) == PageCrc(area_id_, page, bytes)
             ? Verdict::kOk
             : Verdict::kMismatch;
}

uint32_t PageIntegrity::expected_crc(uint32_t page) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t extent = page / kPagesPerExtent;
  if (extent >= extents_.size()) return 0;
  return extents_[extent][page % kPagesPerExtent].crc;
}

uint64_t PageIntegrity::lsn_of(uint32_t page) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t extent = page / kPagesPerExtent;
  if (extent >= extents_.size()) return 0;
  return extents_[extent][page % kPagesPerExtent].lsn;
}

void PageIntegrity::Clear(uint32_t page) {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t extent = page / kPagesPerExtent;
  if (extent >= extents_.size()) return;
  extents_[extent][page % kPagesPerExtent] = PageTrailer{};
  dirty_[extent] = 1;
  quarantined_.erase(page);
}

bool PageIntegrity::IsQuarantined(uint32_t page) const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_.count(page) != 0;
}

void PageIntegrity::Quarantine(uint32_t page) {
  std::lock_guard<std::mutex> lock(mu_);
  quarantined_.insert(page);
}

void PageIntegrity::Unquarantine(uint32_t page) {
  std::lock_guard<std::mutex> lock(mu_);
  quarantined_.erase(page);
}

uint64_t PageIntegrity::quarantined_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_.size();
}

std::vector<uint32_t> PageIntegrity::DirtyExtents() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < dirty_.size(); ++i) {
    if (dirty_[i]) out.push_back(i);
  }
  return out;
}

}  // namespace bess
