#include "storage/storage_area.h"

#include <cstring>

#include "util/crc32c.h"
#include "util/slice.h"

namespace bess {
namespace {

constexpr uint32_t kAreaMagic = 0xBE550A3Au;
constexpr uint32_t kMetaMagic = 0xBE55E7E0u;

static_assert(kPagesPerExtent <= kPageSize - 16,
              "extent allocation map must fit in one meta page");

}  // namespace

// Area header (physical page 0) layout:
//   [0]  u32 magic
//   [4]  u32 page_size
//   [8]  u32 pages_per_extent
//   [12] u32 extent_count
//   [16] u16 area_id
struct StorageArea::AreaHeader {
  uint32_t magic;
  uint32_t page_size;
  uint32_t pages_per_extent;
  uint32_t extent_count;
  uint16_t area_id;
};

uint64_t StorageArea::PhysicalOffset(PageId page) const {
  const uint64_t extent = page / kPagesPerExtent;
  const uint64_t within = page % kPagesPerExtent;
  const uint64_t physical_page =
      1 + extent * (kPagesPerExtent + 1) + 1 + within;
  return physical_page * kPageSize;
}

uint64_t StorageArea::ExtentMetaOffset(uint32_t extent) const {
  const uint64_t physical_page =
      1 + static_cast<uint64_t>(extent) * (kPagesPerExtent + 1);
  return physical_page * kPageSize;
}

Result<std::unique_ptr<StorageArea>> StorageArea::Create(
    const std::string& path, uint16_t area_id, uint32_t initial_extents) {
  if (initial_extents == 0) {
    return Status::InvalidArgument("area needs at least one extent");
  }
  if (File::Exists(path)) {
    BESS_RETURN_IF_ERROR(File::Remove(path));
  }
  BESS_ASSIGN_OR_RETURN(File file, File::Open(path));
  auto area =
      std::unique_ptr<StorageArea>(new StorageArea(std::move(file), area_id));
  std::lock_guard<std::mutex> guard(area->mutex_);
  for (uint32_t i = 0; i < initial_extents; ++i) {
    BESS_RETURN_IF_ERROR(area->AddExtentLocked());
  }
  BESS_RETURN_IF_ERROR(area->WriteHeaderLocked());
  BESS_RETURN_IF_ERROR(area->file_.Sync());
  return area;
}

Result<std::unique_ptr<StorageArea>> StorageArea::Open(
    const std::string& path) {
  BESS_ASSIGN_OR_RETURN(File file, File::Open(path, /*create=*/false));
  char header_page[kPageSize];
  BESS_RETURN_IF_ERROR(file.ReadAt(0, header_page, kPageSize));
  Decoder dec(Slice(header_page, kPageSize));
  const uint32_t magic = dec.GetFixed32();
  const uint32_t page_size = dec.GetFixed32();
  const uint32_t pages_per_extent = dec.GetFixed32();
  const uint32_t extent_count = dec.GetFixed32();
  const uint16_t area_id = dec.GetFixed16();
  if (magic != kAreaMagic) {
    return Status::Corruption("not a BeSS storage area: " + path);
  }
  if (page_size != kPageSize || pages_per_extent != kPagesPerExtent) {
    return Status::NotSupported("area geometry mismatch in " + path);
  }
  auto area =
      std::unique_ptr<StorageArea>(new StorageArea(std::move(file), area_id));
  std::lock_guard<std::mutex> guard(area->mutex_);
  for (uint32_t e = 0; e < extent_count; ++e) {
    char meta[kPageSize];
    BESS_RETURN_IF_ERROR(
        area->file_.ReadAt(area->ExtentMetaOffset(e), meta, kPageSize));
    Decoder mdec(Slice(meta, kPageSize));
    if (mdec.GetFixed32() != kMetaMagic) {
      return Status::Corruption("bad extent meta magic in " + path);
    }
    const uint32_t stored_crc = mdec.GetFixed32();
    const uint8_t* map = reinterpret_cast<const uint8_t*>(meta) + 8;
    if (crc32c::Value(map, kPagesPerExtent) != crc32c::Unmask(stored_crc)) {
      return Status::Corruption("extent meta checksum mismatch in " + path);
    }
    BESS_ASSIGN_OR_RETURN(BuddyAllocator alloc,
                          BuddyAllocator::FromMap(map, kPagesPerExtent));
    area->extents_.push_back(
        std::make_unique<BuddyAllocator>(std::move(alloc)));
  }
  return area;
}

Status StorageArea::AddExtentLocked() {
  const uint32_t extent = static_cast<uint32_t>(extents_.size());
  extents_.push_back(std::make_unique<BuddyAllocator>(kPagesPerExtent));
  // Size the file to cover the new extent's last data page.
  const uint64_t end = PhysicalOffset((extent + 1) * kPagesPerExtent - 1) +
                       kPageSize;
  BESS_RETURN_IF_ERROR(file_.Truncate(end));
  BESS_RETURN_IF_ERROR(FlushExtentMetaLocked(extent));
  return WriteHeaderLocked();
}

Status StorageArea::FlushExtentMetaLocked(uint32_t extent) {
  char meta[kPageSize];
  memset(meta, 0, sizeof(meta));
  uint8_t* map = reinterpret_cast<uint8_t*>(meta) + 8;
  extents_[extent]->SaveMap(map);
  EncodeFixed32(meta, kMetaMagic);
  EncodeFixed32(meta + 4, crc32c::Mask(crc32c::Value(map, kPagesPerExtent)));
  return file_.WriteAt(ExtentMetaOffset(extent), meta, kPageSize);
}

Status StorageArea::WriteHeaderLocked() {
  char page[kPageSize];
  memset(page, 0, sizeof(page));
  EncodeFixed32(page, kAreaMagic);
  EncodeFixed32(page + 4, kPageSize);
  EncodeFixed32(page + 8, kPagesPerExtent);
  EncodeFixed32(page + 12, static_cast<uint32_t>(extents_.size()));
  EncodeFixed16(page + 16, area_id_);
  return file_.WriteAt(0, page, kPageSize);
}

uint32_t StorageArea::extent_count() const {
  return static_cast<uint32_t>(extents_.size());
}

Result<DiskSegment> StorageArea::AllocSegment(uint32_t npages) {
  if (npages == 0 || npages > kPagesPerExtent) {
    return Status::InvalidArgument("segment size " + std::to_string(npages) +
                                   " pages exceeds extent capacity");
  }
  std::lock_guard<std::mutex> guard(mutex_);
  for (uint32_t e = 0; e < extents_.size(); ++e) {
    Result<uint32_t> page = extents_[e]->Allocate(npages);
    if (page.ok()) {
      BESS_RETURN_IF_ERROR(FlushExtentMetaLocked(e));
      DiskSegment seg;
      seg.first_page = e * kPagesPerExtent + *page;
      seg.page_count = extents_[e]->BlockSize(*page);
      return seg;
    }
    if (!page.status().IsNoSpace()) return page.status();
  }
  // All extents full: expand by one extent (paper §2).
  BESS_RETURN_IF_ERROR(AddExtentLocked());
  const uint32_t e = static_cast<uint32_t>(extents_.size()) - 1;
  BESS_ASSIGN_OR_RETURN(uint32_t page, extents_[e]->Allocate(npages));
  BESS_RETURN_IF_ERROR(FlushExtentMetaLocked(e));
  DiskSegment seg;
  seg.first_page = e * kPagesPerExtent + page;
  seg.page_count = extents_[e]->BlockSize(page);
  return seg;
}

Status StorageArea::FreeSegment(PageId first_page) {
  std::lock_guard<std::mutex> guard(mutex_);
  const uint32_t e = first_page / kPagesPerExtent;
  if (e >= extents_.size()) {
    return Status::InvalidArgument("free of page beyond area end");
  }
  BESS_RETURN_IF_ERROR(extents_[e]->Free(first_page % kPagesPerExtent));
  return FlushExtentMetaLocked(e);
}

uint32_t StorageArea::SegmentPages(PageId first_page) {
  std::lock_guard<std::mutex> guard(mutex_);
  const uint32_t e = first_page / kPagesPerExtent;
  if (e >= extents_.size()) return 0;
  return extents_[e]->BlockSize(first_page % kPagesPerExtent);
}

Status StorageArea::ReadPages(PageId first_page, uint32_t page_count,
                              void* buf) {
  if (page_count == 0) return Status::OK();
  const uint32_t first_extent = first_page / kPagesPerExtent;
  const uint32_t last_extent = (first_page + page_count - 1) / kPagesPerExtent;
  if (first_extent != last_extent) {
    return Status::InvalidArgument("page run crosses extent boundary");
  }
  return file_.ReadAt(PhysicalOffset(first_page), buf,
                      static_cast<size_t>(page_count) * kPageSize);
}

Status StorageArea::WritePages(PageId first_page, uint32_t page_count,
                               const void* buf) {
  if (page_count == 0) return Status::OK();
  const uint32_t first_extent = first_page / kPagesPerExtent;
  const uint32_t last_extent = (first_page + page_count - 1) / kPagesPerExtent;
  if (first_extent != last_extent) {
    return Status::InvalidArgument("page run crosses extent boundary");
  }
  return file_.WriteAt(PhysicalOffset(first_page), buf,
                       static_cast<size_t>(page_count) * kPageSize);
}

Status StorageArea::Sync() { return file_.Sync(); }

uint64_t StorageArea::FreePages() {
  std::lock_guard<std::mutex> guard(mutex_);
  uint64_t total = 0;
  for (const auto& e : extents_) total += e->free_pages();
  return total;
}

double StorageArea::Fragmentation() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (extents_.empty()) return 0.0;
  double sum = 0;
  for (const auto& e : extents_) sum += e->Fragmentation();
  return sum / static_cast<double>(extents_.size());
}

}  // namespace bess
