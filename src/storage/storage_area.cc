#include "storage/storage_area.h"

#include <cstring>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "os/fault_injection.h"
#include "util/crc32c.h"
#include "util/slice.h"

namespace bess {
namespace {

constexpr uint32_t kAreaMagic = 0xBE550A3Au;
constexpr uint32_t kMetaMagic = 0xBE55E7E0u;

static_assert(kTrailerRegionOffset + kTrailerRegionBytes <= kPageSize,
              "allocation map + page trailer table must fit in one meta page");

/// Deterministic bit position for an injected bit_rot flip: a function of
/// the page id alone, so a test can predict (and re-injure) the same bit.
inline size_t BitRotBit(PageId page) {
  return (static_cast<uint64_t>(page) * 2654435761u + 17) % (kPageSize * 8);
}

}  // namespace

// Area header (physical page 0) layout:
//   [0]  u32 magic
//   [4]  u32 page_size
//   [8]  u32 pages_per_extent
//   [12] u32 extent_count
//   [16] u16 area_id
struct StorageArea::AreaHeader {
  uint32_t magic;
  uint32_t page_size;
  uint32_t pages_per_extent;
  uint32_t extent_count;
  uint16_t area_id;
};

uint64_t StorageArea::PhysicalOffset(PageId page) const {
  const uint64_t extent = page / kPagesPerExtent;
  const uint64_t within = page % kPagesPerExtent;
  const uint64_t physical_page =
      1 + extent * (kPagesPerExtent + 1) + 1 + within;
  return physical_page * kPageSize;
}

uint64_t StorageArea::ExtentMetaOffset(uint32_t extent) const {
  const uint64_t physical_page =
      1 + static_cast<uint64_t>(extent) * (kPagesPerExtent + 1);
  return physical_page * kPageSize;
}

Result<std::unique_ptr<StorageArea>> StorageArea::Create(
    const std::string& path, uint16_t area_id, uint32_t initial_extents) {
  if (initial_extents == 0) {
    return Status::InvalidArgument("area needs at least one extent");
  }
  if (File::Exists(path)) {
    BESS_RETURN_IF_ERROR(File::Remove(path));
  }
  BESS_ASSIGN_OR_RETURN(File file, File::Open(path));
  auto area =
      std::unique_ptr<StorageArea>(new StorageArea(std::move(file), area_id));
  std::lock_guard<std::mutex> guard(area->mutex_);
  for (uint32_t i = 0; i < initial_extents; ++i) {
    BESS_RETURN_IF_ERROR(area->AddExtentLocked());
  }
  BESS_RETURN_IF_ERROR(area->WriteHeaderLocked());
  BESS_RETURN_IF_ERROR(area->file_.Sync());
  return area;
}

Result<std::unique_ptr<StorageArea>> StorageArea::Open(
    const std::string& path) {
  BESS_ASSIGN_OR_RETURN(File file, File::Open(path, /*create=*/false));
  char header_page[kPageSize];
  BESS_RETURN_IF_ERROR(file.ReadAt(0, header_page, kPageSize));
  Decoder dec(Slice(header_page, kPageSize));
  const uint32_t magic = dec.GetFixed32();
  const uint32_t page_size = dec.GetFixed32();
  const uint32_t pages_per_extent = dec.GetFixed32();
  const uint32_t extent_count = dec.GetFixed32();
  const uint16_t area_id = dec.GetFixed16();
  if (magic != kAreaMagic) {
    return Status::Corruption("not a BeSS storage area: " + path);
  }
  if (page_size != kPageSize || pages_per_extent != kPagesPerExtent) {
    return Status::NotSupported("area geometry mismatch in " + path);
  }
  auto area =
      std::unique_ptr<StorageArea>(new StorageArea(std::move(file), area_id));
  std::lock_guard<std::mutex> guard(area->mutex_);
  for (uint32_t e = 0; e < extent_count; ++e) {
    char meta[kPageSize];
    BESS_RETURN_IF_ERROR(
        area->file_.ReadAt(area->ExtentMetaOffset(e), meta, kPageSize));
    Decoder mdec(Slice(meta, kPageSize));
    if (mdec.GetFixed32() != kMetaMagic) {
      return Status::Corruption("bad extent meta magic in " + path);
    }
    const uint32_t stored_crc = mdec.GetFixed32();
    const uint8_t* map = reinterpret_cast<const uint8_t*>(meta) + 8;
    if (crc32c::Value(map, kPagesPerExtent) != crc32c::Unmask(stored_crc)) {
      return Status::Corruption("extent meta checksum mismatch in " + path);
    }
    BESS_ASSIGN_OR_RETURN(BuddyAllocator alloc,
                          BuddyAllocator::FromMap(map, kPagesPerExtent));
    area->extents_.push_back(
        std::make_unique<BuddyAllocator>(std::move(alloc)));
    // The trailer region is checksummed separately from the map: a torn
    // trailer write (or a pre-trailer-format area) degrades this extent's
    // pages to unstamped instead of refusing to open.
    if (!area->integrity_.DecodeExtent(e, meta + kTrailerRegionOffset)) {
      BESS_COUNT("page.trailer.reset");
    }
  }
  return area;
}

Status StorageArea::AddExtentLocked() {
  const uint32_t extent = static_cast<uint32_t>(extents_.size());
  extents_.push_back(std::make_unique<BuddyAllocator>(kPagesPerExtent));
  integrity_.AddExtent();
  // Size the file to cover the new extent's last data page.
  const uint64_t end = PhysicalOffset((extent + 1) * kPagesPerExtent - 1) +
                       kPageSize;
  BESS_RETURN_IF_ERROR(file_.Truncate(end));
  BESS_RETURN_IF_ERROR(FlushExtentMetaLocked(extent));
  return WriteHeaderLocked();
}

Status StorageArea::FlushExtentMetaLocked(uint32_t extent) {
  char meta[kPageSize];
  memset(meta, 0, sizeof(meta));
  uint8_t* map = reinterpret_cast<uint8_t*>(meta) + 8;
  extents_[extent]->SaveMap(map);
  EncodeFixed32(meta, kMetaMagic);
  EncodeFixed32(meta + 4, crc32c::Mask(crc32c::Value(map, kPagesPerExtent)));
  // A full-meta rewrite must carry the current trailer table too, or it
  // would wipe every stamp in the extent.
  integrity_.EncodeExtent(extent, meta + kTrailerRegionOffset);
  return file_.WriteAt(ExtentMetaOffset(extent), meta, kPageSize);
}

Status StorageArea::WriteHeaderLocked() {
  char page[kPageSize];
  memset(page, 0, sizeof(page));
  EncodeFixed32(page, kAreaMagic);
  EncodeFixed32(page + 4, kPageSize);
  EncodeFixed32(page + 8, kPagesPerExtent);
  EncodeFixed32(page + 12, static_cast<uint32_t>(extents_.size()));
  EncodeFixed16(page + 16, area_id_);
  return file_.WriteAt(0, page, kPageSize);
}

uint32_t StorageArea::extent_count() const {
  return static_cast<uint32_t>(extents_.size());
}

Result<DiskSegment> StorageArea::AllocSegment(uint32_t npages) {
  if (npages == 0 || npages > kPagesPerExtent) {
    return Status::InvalidArgument("segment size " + std::to_string(npages) +
                                   " pages exceeds extent capacity");
  }
  std::lock_guard<std::mutex> guard(mutex_);
  for (uint32_t e = 0; e < extents_.size(); ++e) {
    Result<uint32_t> page = extents_[e]->Allocate(npages);
    if (page.ok()) {
      BESS_RETURN_IF_ERROR(FlushExtentMetaLocked(e));
      DiskSegment seg;
      seg.first_page = e * kPagesPerExtent + *page;
      seg.page_count = extents_[e]->BlockSize(*page);
      return seg;
    }
    if (!page.status().IsNoSpace()) return page.status();
  }
  // All extents full: expand by one extent (paper §2).
  BESS_RETURN_IF_ERROR(AddExtentLocked());
  const uint32_t e = static_cast<uint32_t>(extents_.size()) - 1;
  BESS_ASSIGN_OR_RETURN(uint32_t page, extents_[e]->Allocate(npages));
  BESS_RETURN_IF_ERROR(FlushExtentMetaLocked(e));
  DiskSegment seg;
  seg.first_page = e * kPagesPerExtent + page;
  seg.page_count = extents_[e]->BlockSize(page);
  return seg;
}

Status StorageArea::FreeSegment(PageId first_page) {
  std::lock_guard<std::mutex> guard(mutex_);
  const uint32_t e = first_page / kPagesPerExtent;
  if (e >= extents_.size()) {
    return Status::InvalidArgument("free of page beyond area end");
  }
  // BlockSize is only answerable while the block is still allocated.
  const uint32_t npages = extents_[e]->BlockSize(first_page % kPagesPerExtent);
  BESS_RETURN_IF_ERROR(extents_[e]->Free(first_page % kPagesPerExtent));
  // Freed pages carry no promises: drop their stamps (and any quarantine) so
  // a future reallocation starts unstamped instead of tripping over stale
  // CRCs of the previous tenant.
  for (uint32_t i = 0; i < npages; ++i) integrity_.Clear(first_page + i);
  return FlushExtentMetaLocked(e);
}

uint32_t StorageArea::SegmentPages(PageId first_page) {
  std::lock_guard<std::mutex> guard(mutex_);
  const uint32_t e = first_page / kPagesPerExtent;
  if (e >= extents_.size()) return 0;
  return extents_[e]->BlockSize(first_page % kPagesPerExtent);
}

Status StorageArea::ReadPages(PageId first_page, uint32_t page_count,
                              void* buf) {
  if (page_count == 0) return Status::OK();
  const uint32_t first_extent = first_page / kPagesPerExtent;
  const uint32_t last_extent = (first_page + page_count - 1) / kPagesPerExtent;
  if (first_extent != last_extent) {
    return Status::InvalidArgument("page run crosses extent boundary");
  }
  for (uint32_t i = 0; i < page_count; ++i) {
    if (integrity_.IsQuarantined(first_page + i)) {
      BESS_COUNT("page.quarantine.hit");
      return Status::Corruption("page " + std::to_string(first_page + i) +
                                " is quarantined in " + file_.path());
    }
  }
  BESS_RETURN_IF_ERROR(file_.ReadAt(PhysicalOffset(first_page), buf,
                                    static_cast<size_t>(page_count) *
                                        kPageSize));
  for (uint32_t i = 0; i < page_count; ++i) {
    char* page_buf = static_cast<char*>(buf) +
                     static_cast<size_t>(i) * kPageSize;
    BESS_RETURN_IF_ERROR(
        VerifyOrRecoverPage(first_page + i, page_buf, nullptr));
  }
  return Status::OK();
}

Status StorageArea::VerifyOrRecoverPage(PageId page, char* page_buf,
                                        VerifyOutcome* outcome) {
  if (outcome != nullptr) *outcome = VerifyOutcome::kClean;
  if (integrity_.Verify(page, page_buf) != PageIntegrity::Verdict::kMismatch) {
    return Status::OK();
  }
  BESS_COUNT("page.verify.fail");
  // One re-read: a transient torn view (read racing a concurrent write-back)
  // resolves here without invoking media repair.
  Status reread = file_.ReadAt(PhysicalOffset(page), page_buf, kPageSize);
  if (reread.ok() &&
      integrity_.Verify(page, page_buf) != PageIntegrity::Verdict::kMismatch) {
    BESS_COUNT("page.reread.ok");
    if (outcome != nullptr) *outcome = VerifyOutcome::kRereadOk;
    return Status::OK();
  }
  // Media repair: ask the WAL for the exact image this trailer was stamped
  // from. Anything less than a byte-exact (CRC-verified) match is rejected —
  // a plausible-but-different image is worse than an honest kCorruption.
  RepairHandler repair;
  {
    std::lock_guard<std::mutex> guard(repair_mutex_);
    repair = repair_;
  }
  const uint32_t expected = integrity_.expected_crc(page);
  if (repair) {
    std::string image;
    Status st = repair(page, expected, &image);
    if (st.ok() && image.size() == kPageSize &&
        crc32c::Mask(PageCrc(area_id_, page, image.data())) == expected) {
      // Rewrite the healthy image in place and make it durable before
      // reporting success; the trailer already matches it.
      st = file_.WriteAt(PhysicalOffset(page), image.data(), kPageSize);
      if (st.ok()) st = file_.Sync();
      if (st.ok()) {
        memcpy(page_buf, image.data(), kPageSize);
        BESS_COUNT("page.repair.ok");
        if (outcome != nullptr) *outcome = VerifyOutcome::kRepaired;
        return Status::OK();
      }
    }
  }
  // No usable image: quarantine. The database stays open; only this page
  // answers kCorruption until something rewrites it wholesale.
  integrity_.Quarantine(page);
  BESS_COUNT("page.quarantined");
  if (outcome != nullptr) *outcome = VerifyOutcome::kQuarantined;
  return Status::Corruption("page " + std::to_string(page) +
                            " failed verification and could not be repaired"
                            " in " + file_.path());
}

Status StorageArea::WriteOnePage(PageId page, const char* bytes,
                                 uint64_t lsn) {
  const uint64_t off = PhysicalOffset(page);
  if (fault::Armed()) {
    fault::FaultOutcome rot = fault::FaultRegistry::Instance().EvaluateIo(
        "page.bitrot", file_.path(), kPageSize);
    if (rot.bit_rot) {
      // The lying disk: persist a flipped bit, report success, and stamp the
      // trailer with the CRC of what the caller *intended* — exactly the
      // state a later read must detect.
      char rotten[kPageSize];
      memcpy(rotten, bytes, kPageSize);
      const size_t bit = BitRotBit(page);
      rotten[bit / 8] ^= static_cast<char>(1u << (bit % 8));
      BESS_RETURN_IF_ERROR(file_.WriteAtUnchecked(off, rotten, kPageSize));
      integrity_.Stamp(page, bytes, lsn);
      integrity_.Unquarantine(page);
      return Status::OK();
    }
    fault::FaultOutcome torn = fault::FaultRegistry::Instance().EvaluateIo(
        "page.torn", file_.path(), kPageSize);
    if (torn.bytes_allowed < kPageSize) {
      if (torn.bytes_allowed > 0) {
        BESS_RETURN_IF_ERROR(
            file_.WriteAtUnchecked(off, bytes, torn.bytes_allowed));
      }
      integrity_.Stamp(page, bytes, lsn);
      integrity_.Unquarantine(page);
      return Status::OK();
    }
  }
  BESS_RETURN_IF_ERROR(file_.WriteAt(off, bytes, kPageSize));
  // Stamp only after the write succeeded: a failed write leaves the old
  // trailer, which still describes what is actually on disk.
  integrity_.Stamp(page, bytes, lsn);
  integrity_.Unquarantine(page);
  return Status::OK();
}

Status StorageArea::WritePages(PageId first_page, uint32_t page_count,
                               const void* buf, uint64_t lsn) {
  if (page_count == 0) return Status::OK();
  const uint32_t first_extent = first_page / kPagesPerExtent;
  const uint32_t last_extent = (first_page + page_count - 1) / kPagesPerExtent;
  if (first_extent != last_extent) {
    return Status::InvalidArgument("page run crosses extent boundary");
  }
  if (!fault::Armed()) {
    BESS_RETURN_IF_ERROR(file_.WriteAt(PhysicalOffset(first_page), buf,
                                       static_cast<size_t>(page_count) *
                                           kPageSize));
    for (uint32_t i = 0; i < page_count; ++i) {
      const char* bytes = static_cast<const char*>(buf) +
                          static_cast<size_t>(i) * kPageSize;
      integrity_.Stamp(first_page + i, bytes, lsn);
      integrity_.Unquarantine(first_page + i);
    }
    return Status::OK();
  }
  // Faults armed: go page-at-a-time so bit_rot / torn_page can target
  // individual pages (and ordinary file.writeat faults keep working).
  for (uint32_t i = 0; i < page_count; ++i) {
    const char* bytes = static_cast<const char*>(buf) +
                        static_cast<size_t>(i) * kPageSize;
    BESS_RETURN_IF_ERROR(WriteOnePage(first_page + i, bytes, lsn));
  }
  return Status::OK();
}

bool StorageArea::RawRun(PageId first_page, uint32_t page_count, int* fd,
                         uint64_t* offset) {
  if (page_count == 0) return false;
  const uint32_t first_extent = first_page / kPagesPerExtent;
  const uint32_t last_extent = (first_page + page_count - 1) / kPagesPerExtent;
  if (first_extent != last_extent) return false;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (first_extent >= extents_.size()) return false;
  }
  for (uint32_t i = 0; i < page_count; ++i) {
    if (integrity_.IsQuarantined(first_page + i)) {
      BESS_COUNT("page.quarantine.hit");
      return false;
    }
  }
  *fd = file_.fd();
  *offset = PhysicalOffset(first_page);
  return true;
}

Status StorageArea::FinishRawRead(PageId first_page, uint32_t page_count,
                                  void* buf) {
  for (uint32_t i = 0; i < page_count; ++i) {
    char* page_buf =
        static_cast<char*>(buf) + static_cast<size_t>(i) * kPageSize;
    BESS_RETURN_IF_ERROR(
        VerifyOrRecoverPage(first_page + i, page_buf, nullptr));
  }
  return Status::OK();
}

Status StorageArea::FinishRawWrite(PageId first_page, uint32_t page_count,
                                   const void* buf, uint64_t lsn) {
  for (uint32_t i = 0; i < page_count; ++i) {
    const char* bytes =
        static_cast<const char*>(buf) + static_cast<size_t>(i) * kPageSize;
    integrity_.Stamp(first_page + i, bytes, lsn);
    integrity_.Unquarantine(first_page + i);
  }
  return Status::OK();
}

Status StorageArea::FlushDirtyTrailers() {
  // Trailer regions ride in the extent meta page but are flushed lazily:
  // once per Sync instead of once per page write. Written before the
  // fdatasync so a trailer never describes data that was not also synced.
  for (uint32_t extent : integrity_.DirtyExtents()) {
    char region[kTrailerRegionBytes];
    integrity_.EncodeExtent(extent, region);
    BESS_RETURN_IF_ERROR(
        file_.WriteAt(ExtentMetaOffset(extent) + kTrailerRegionOffset, region,
                      kTrailerRegionBytes));
  }
  return Status::OK();
}

Status StorageArea::Sync() {
  std::unique_lock<std::mutex> lk(sync_mutex_);
  // Any generation that *starts* after this point covers every write this
  // caller completed before calling Sync; an in-flight generation may not.
  const uint64_t need = sync_started_gen_ + 1;
  bool led = false;
  while (sync_done_gen_ < need) {
    if (!sync_in_flight_) {
      sync_in_flight_ = true;
      const uint64_t gen = ++sync_started_gen_;  // gen >= need
      led = true;
      lk.unlock();
      Status s = FlushDirtyTrailers();
      if (s.ok()) {
        BESS_SPAN("storage.sync");
        s = file_.Sync();
      }
      lk.lock();
      sync_done_gen_ = gen;
      sync_done_status_ = s;
      sync_in_flight_ = false;
      sync_cv_.notify_all();
    } else {
      sync_cv_.wait(lk);
    }
  }
  // The loop exits only once a generation started after entry finished, so
  // sync_done_status_ is from a sync that covered this caller's writes.
  if (!led) BESS_COUNT("storage.sync.coalesced");
  return sync_done_status_;
}

void StorageArea::set_repair_handler(RepairHandler handler) {
  std::lock_guard<std::mutex> guard(repair_mutex_);
  repair_ = std::move(handler);
}

Status StorageArea::Scrub(ScrubReport* report) {
  const uint32_t nextents = extent_count();
  char page_buf[kPageSize];
  for (uint32_t e = 0; e < nextents; ++e) {
    for (uint32_t i = 0; i < kPagesPerExtent; ++i) {
      const PageId page = e * kPagesPerExtent + i;
      if (integrity_.IsQuarantined(page)) {
        // Already known-bad; keep it in the report but skip the I/O.
        report->quarantined++;
        continue;
      }
      if (!integrity_.IsStamped(page)) continue;  // never written: no claim
      report->pages_scanned++;
      BESS_COUNT("scrub.pages");
      BESS_RETURN_IF_ERROR(
          file_.ReadAt(PhysicalOffset(page), page_buf, kPageSize));
      VerifyOutcome outcome = VerifyOutcome::kClean;
      Status st = VerifyOrRecoverPage(page, page_buf, &outcome);
      switch (outcome) {
        case VerifyOutcome::kClean:
          break;
        case VerifyOutcome::kRereadOk:
          report->verify_failures++;
          break;
        case VerifyOutcome::kRepaired:
          report->verify_failures++;
          report->repaired++;
          break;
        case VerifyOutcome::kQuarantined:
          report->verify_failures++;
          report->quarantined++;
          break;
      }
      // Quarantine is a per-page verdict, not a scrub failure: keep
      // sweeping. Only real I/O errors abort the pass.
      if (!st.ok() && !st.IsCorruption()) return st;
    }
  }
  return Status::OK();
}

uint64_t StorageArea::FreePages() {
  std::lock_guard<std::mutex> guard(mutex_);
  uint64_t total = 0;
  for (const auto& e : extents_) total += e->free_pages();
  return total;
}

double StorageArea::Fragmentation() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (extents_.empty()) return 0.0;
  double sum = 0;
  for (const auto& e : extents_) sum += e->Fragmentation();
  return sum / static_cast<double>(extents_.size());
}

}  // namespace bess
