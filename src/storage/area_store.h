// AreaSegmentStore: a multifile SegmentStore directly over storage areas.
//
// The paper's server-linked configuration reads pages straight from the
// storage areas; this store is that seam expressed as a SegmentStore, so the
// page cache (CachedSegmentStore) and the scan bench can run over real area
// files. It also implements aio::RawPageSource, resolving page-cache keys to
// raw (fd, offset) runs so the io_uring backend can transfer pages with the
// kernel while the storage layer's CRC/LSN trailer envelope is re-applied at
// completion (FinishRead / FinishWrite).
//
// Runs may span extents and areas at this interface; they are split into
// per-extent chunks before hitting StorageArea (whose runs cannot cross an
// extent boundary). Raw runs are stricter: RawRun only answers a run that is
// contiguous on disk, forcing the caller to the synchronous fallback at
// extent seams — which is exactly how the push scan exercises both paths.
#ifndef BESS_STORAGE_AREA_STORE_H_
#define BESS_STORAGE_AREA_STORE_H_

#include <cstdint>
#include <unordered_map>

#include "os/async_io.h"
#include "storage/storage_area.h"
#include "vm/segment_store.h"

namespace bess {

class AreaSegmentStore : public SegmentStore, public aio::RawPageSource {
 public:
  AreaSegmentStore() = default;

  /// Registers `area` to serve (db, area_id) fetches. Not thread-safe
  /// against concurrent I/O: register everything before use. `area` must
  /// outlive this store.
  void AddArea(uint16_t db, uint16_t area_id, StorageArea* area);

  /// Slotted segment images live behind the mapper's store, not at the raw
  /// area level; this store only serves page runs.
  Status FetchSlotted(SegmentId id, void* buf, uint32_t* page_count) override;

  Status FetchPages(uint16_t db, uint16_t area, PageId first,
                    uint32_t page_count, void* buf) override;
  Status WritePages(uint16_t db, uint16_t area, PageId first,
                    uint32_t page_count, const void* buf) override;

  // aio::RawPageSource
  bool RawRun(uint64_t key, uint32_t count, int* fd,
              uint64_t* offset) override;
  Status FinishRead(uint64_t key, uint32_t count, void* buf) override;
  Status FinishWrite(uint64_t key, uint32_t count, const void* buf,
                     uint64_t lsn) override;

 private:
  StorageArea* Find(uint16_t db, uint16_t area_id) const;

  /// (db << 16 | area) -> area file.
  std::unordered_map<uint32_t, StorageArea*> areas_;
};

}  // namespace bess

#endif  // BESS_STORAGE_AREA_STORE_H_
