#include "storage/buddy.h"

#include <algorithm>
#include <cassert>

namespace bess {
namespace {

constexpr uint8_t kInterior = 0x01;

bool IsPow2(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

uint32_t Log2Floor(uint32_t v) {
  uint32_t r = 0;
  while (v >>= 1) ++r;
  return r;
}

}  // namespace

BuddyAllocator::BuddyAllocator(uint32_t capacity_pages)
    : capacity_(capacity_pages),
      max_order_(Log2Floor(capacity_pages)),
      free_pages_(capacity_pages),
      map_(capacity_pages, kFree),
      free_lists_(max_order_ + 1) {
  assert(IsPow2(capacity_pages));
  free_lists_[max_order_].push_back(0);
}

uint32_t BuddyAllocator::OrderFor(uint32_t npages) {
  uint32_t order = 0;
  uint32_t size = 1;
  while (size < npages) {
    size <<= 1;
    ++order;
  }
  return order;
}

void BuddyAllocator::PushFree(uint32_t order, uint32_t page) {
  free_lists_[order].push_back(page);
}

bool BuddyAllocator::RemoveFree(uint32_t order, uint32_t page) {
  auto& list = free_lists_[order];
  auto it = std::find(list.begin(), list.end(), page);
  if (it == list.end()) return false;
  *it = list.back();
  list.pop_back();
  return true;
}

Result<uint32_t> BuddyAllocator::Allocate(uint32_t npages) {
  if (npages == 0 || npages > capacity_) {
    return Status::InvalidArgument("buddy: bad allocation size " +
                                   std::to_string(npages));
  }
  const uint32_t want = OrderFor(npages);
  // Find the smallest order >= want with a free block.
  uint32_t order = want;
  while (order <= max_order_ && free_lists_[order].empty()) ++order;
  if (order > max_order_) {
    return Status::NoSpace("buddy: no free block of " +
                           std::to_string(npages) + " pages");
  }
  uint32_t page = free_lists_[order].back();
  free_lists_[order].pop_back();
  // Split down to the wanted order, pushing upper halves as free buddies.
  while (order > want) {
    --order;
    PushFree(order, page + (1u << order));
  }
  map_[page] = static_cast<uint8_t>(kAllocatedHeadBit | want);
  const uint32_t size = 1u << want;
  for (uint32_t i = 1; i < size; ++i) map_[page + i] = kInterior;
  free_pages_ -= size;
  return page;
}

Status BuddyAllocator::Free(uint32_t page) {
  if (page >= capacity_ || (map_[page] & kAllocatedHeadBit) == 0) {
    return Status::InvalidArgument("buddy: free of non-head page " +
                                   std::to_string(page));
  }
  uint32_t order = map_[page] & 0x7F;
  uint32_t size = 1u << order;
  for (uint32_t i = 0; i < size; ++i) map_[page + i] = kFree;
  free_pages_ += size;
  // Coalesce with the buddy while it is free at the same order.
  while (order < max_order_) {
    const uint32_t buddy = page ^ (1u << order);
    if (!RemoveFree(order, buddy)) break;
    page = std::min(page, buddy);
    ++order;
  }
  PushFree(order, page);
  return Status::OK();
}

uint32_t BuddyAllocator::BlockSize(uint32_t page) const {
  if (page >= capacity_ || (map_[page] & kAllocatedHeadBit) == 0) return 0;
  return 1u << (map_[page] & 0x7F);
}

uint32_t BuddyAllocator::LargestFreeBlock() const {
  for (uint32_t order = max_order_ + 1; order-- > 0;) {
    if (!free_lists_[order].empty()) return 1u << order;
  }
  return 0;
}

double BuddyAllocator::Fragmentation() const {
  if (free_pages_ == 0) return 0.0;
  return 1.0 - static_cast<double>(LargestFreeBlock()) /
                   static_cast<double>(free_pages_);
}

void BuddyAllocator::SaveMap(uint8_t* out) const {
  for (uint32_t p = 0; p < capacity_; ++p) {
    out[p] = (map_[p] & kAllocatedHeadBit) ? map_[p] : kFree;
  }
}

Result<BuddyAllocator> BuddyAllocator::FromMap(const uint8_t* map,
                                               uint32_t capacity_pages) {
  if (!IsPow2(capacity_pages)) {
    return Status::InvalidArgument("buddy: capacity not a power of two");
  }
  BuddyAllocator alloc(capacity_pages);
  alloc.free_lists_.assign(alloc.max_order_ + 1, {});
  alloc.free_pages_ = 0;
  // Replay allocated heads.
  uint32_t p = 0;
  while (p < capacity_pages) {
    if (map[p] & kAllocatedHeadBit) {
      const uint32_t order = map[p] & 0x7F;
      const uint32_t size = 1u << order;
      if (order > alloc.max_order_ || p + size > capacity_pages ||
          (p & (size - 1)) != 0) {
        return Status::Corruption("buddy: bad allocation map entry at page " +
                                  std::to_string(p));
      }
      alloc.map_[p] = map[p];
      for (uint32_t i = 1; i < size; ++i) {
        if (map[p + i] & kAllocatedHeadBit) {
          return Status::Corruption("buddy: overlapping blocks at page " +
                                    std::to_string(p + i));
        }
        alloc.map_[p + i] = kInterior;
      }
      p += size;
    } else {
      alloc.map_[p] = kFree;
      ++p;
    }
  }
  // Rebuild free lists: canonical buddy decomposition of each free run.
  p = 0;
  while (p < capacity_pages) {
    if (alloc.map_[p] != kFree) {
      p += alloc.map_[p] & kAllocatedHeadBit ? (1u << (alloc.map_[p] & 0x7F))
                                             : 1;
      continue;
    }
    uint32_t q = p;
    while (q < capacity_pages && alloc.map_[q] == kFree) ++q;
    uint32_t run_start = p;
    uint32_t run_len = q - p;
    while (run_len > 0) {
      // Largest power-of-two block that is both aligned at run_start and
      // fits in the remaining run.
      uint32_t order = Log2Floor(run_len);
      if (run_start != 0) {
        const uint32_t align_order = Log2Floor(run_start & ~(run_start - 1));
        order = std::min(order, align_order);
      } else {
        order = std::min(order, alloc.max_order_);
      }
      alloc.PushFree(order, run_start);
      alloc.free_pages_ += 1u << order;
      run_start += 1u << order;
      run_len -= 1u << order;
    }
    p = q;
  }
  return alloc;
}

Status BuddyAllocator::CheckInvariants() const {
  std::vector<uint8_t> covered(capacity_, 0);
  uint32_t free_total = 0;
  for (uint32_t order = 0; order <= max_order_; ++order) {
    for (uint32_t page : free_lists_[order]) {
      const uint32_t size = 1u << order;
      if (page + size > capacity_ || (page & (size - 1)) != 0) {
        return Status::Corruption("buddy: misaligned free block");
      }
      for (uint32_t i = 0; i < size; ++i) {
        if (map_[page + i] != kFree) {
          return Status::Corruption("buddy: free block overlaps allocation");
        }
        if (covered[page + i]++) {
          return Status::Corruption("buddy: free blocks overlap");
        }
      }
      free_total += size;
    }
  }
  if (free_total != free_pages_) {
    return Status::Corruption("buddy: free page count mismatch");
  }
  uint32_t p = 0;
  while (p < capacity_) {
    if (map_[p] & kAllocatedHeadBit) {
      const uint32_t size = 1u << (map_[p] & 0x7F);
      for (uint32_t i = 0; i < size; ++i) {
        if (covered[p + i]) {
          return Status::Corruption("buddy: allocation overlaps free block");
        }
        covered[p + i] = 1;
      }
      p += size;
    } else if (map_[p] == kFree) {
      if (!covered[p]) {
        return Status::Corruption("buddy: free page missing from free lists");
      }
      ++p;
    } else {
      return Status::Corruption("buddy: interior page outside any block");
    }
  }
  return Status::OK();
}

}  // namespace bess
