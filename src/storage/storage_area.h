// Storage areas: the physical level of a BeSS database.
//
// "At the physical level, the database consists of a number of storage
// areas, which are UNIX files or disk raw partitions. Storage areas are
// partitioned into a number of extents, and allocation of disk segments from
// one of these extents is based on the binary buddy system. Storage areas
// that correspond to UNIX files may expand in size by one extent at a time."
// (paper §2)
//
// On-disk layout (physical pages of kPageSize bytes):
//   page 0:                      area header
//   then per extent i:           1 meta page (buddy allocation map, CRC)
//                                kPagesPerExtent data pages
//
// Logical PageIds address data pages only and are stable: extent i covers
// logical pages [i*kPagesPerExtent, (i+1)*kPagesPerExtent).
#ifndef BESS_STORAGE_STORAGE_AREA_H_
#define BESS_STORAGE_STORAGE_AREA_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "os/file.h"
#include "storage/buddy.h"
#include "util/config.h"
#include "util/status.h"

namespace bess {

/// Logical page number within one storage area.
using PageId = uint32_t;
inline constexpr PageId kInvalidPage = 0xFFFFFFFFu;

/// Globally unique page address: database + area + page. This is the
/// granule keyed by the lock manager, the WAL, and the shared cache.
struct PageAddr {
  uint16_t db = 0;
  uint16_t area = 0;
  PageId page = kInvalidPage;

  uint64_t Pack() const {
    return (static_cast<uint64_t>(db) << 48) |
           (static_cast<uint64_t>(area) << 32) | page;
  }
  static PageAddr Unpack(uint64_t v) {
    return PageAddr{static_cast<uint16_t>(v >> 48),
                    static_cast<uint16_t>((v >> 32) & 0xFFFF),
                    static_cast<PageId>(v & 0xFFFFFFFFu)};
  }
  bool operator==(const PageAddr& o) const {
    return db == o.db && area == o.area && page == o.page;
  }
};

/// A contiguous run of logical pages allocated as one unit.
struct DiskSegment {
  PageId first_page = kInvalidPage;
  uint32_t page_count = 0;
};

/// One storage area backed by a UNIX file. Thread-safe.
class StorageArea {
 public:
  /// Creates a new area file with `initial_extents` extents (>= 1).
  static Result<std::unique_ptr<StorageArea>> Create(
      const std::string& path, uint16_t area_id, uint32_t initial_extents = 1);

  /// Opens an existing area, rebuilding allocator state from meta pages.
  static Result<std::unique_ptr<StorageArea>> Open(const std::string& path);

  uint16_t area_id() const { return area_id_; }
  uint32_t extent_count() const;
  const std::string& path() const { return file_.path(); }

  /// Allocates a disk segment of at least `npages` contiguous pages,
  /// growing the area by one extent at a time when all extents are full.
  /// Segments never span extents (buddy blocks cannot).
  Result<DiskSegment> AllocSegment(uint32_t npages);

  /// Frees a segment previously returned by AllocSegment. `first_page`
  /// must be the segment head.
  Status FreeSegment(PageId first_page);

  /// Number of pages the block headed at `first_page` occupies (its rounded
  /// size); 0 if not an allocated head.
  uint32_t SegmentPages(PageId first_page);

  /// Reads `page_count` logical pages starting at `first_page` into `buf`
  /// (the run must not cross an extent boundary).
  Status ReadPages(PageId first_page, uint32_t page_count, void* buf);

  /// Writes `page_count` logical pages starting at `first_page` from `buf`.
  Status WritePages(PageId first_page, uint32_t page_count, const void* buf);

  Status Sync();

  /// Total free pages across extents (statistics / benches).
  uint64_t FreePages();
  /// Mean external fragmentation across extents.
  double Fragmentation();

 private:
  struct AreaHeader;

  StorageArea(File file, uint16_t area_id)
      : file_(std::move(file)), area_id_(area_id) {}

  Status AddExtentLocked();
  Status FlushExtentMetaLocked(uint32_t extent);
  Status WriteHeaderLocked();
  uint64_t PhysicalOffset(PageId page) const;
  uint64_t ExtentMetaOffset(uint32_t extent) const;

  File file_;
  uint16_t area_id_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<BuddyAllocator>> extents_;
};

}  // namespace bess

#endif  // BESS_STORAGE_STORAGE_AREA_H_
