// Storage areas: the physical level of a BeSS database.
//
// "At the physical level, the database consists of a number of storage
// areas, which are UNIX files or disk raw partitions. Storage areas are
// partitioned into a number of extents, and allocation of disk segments from
// one of these extents is based on the binary buddy system. Storage areas
// that correspond to UNIX files may expand in size by one extent at a time."
// (paper §2)
//
// On-disk layout (physical pages of kPageSize bytes):
//   page 0:                      area header
//   then per extent i:           1 meta page (buddy allocation map, CRC)
//                                kPagesPerExtent data pages
//
// Logical PageIds address data pages only and are stable: extent i covers
// logical pages [i*kPagesPerExtent, (i+1)*kPagesPerExtent).
#ifndef BESS_STORAGE_STORAGE_AREA_H_
#define BESS_STORAGE_STORAGE_AREA_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "os/file.h"
#include "storage/buddy.h"
#include "storage/page_io.h"
#include "util/config.h"
#include "util/status.h"

namespace bess {

/// Logical page number within one storage area.
using PageId = uint32_t;
inline constexpr PageId kInvalidPage = 0xFFFFFFFFu;

/// Globally unique page address: database + area + page. This is the
/// granule keyed by the lock manager, the WAL, and the shared cache.
struct PageAddr {
  uint16_t db = 0;
  uint16_t area = 0;
  PageId page = kInvalidPage;

  uint64_t Pack() const {
    return (static_cast<uint64_t>(db) << 48) |
           (static_cast<uint64_t>(area) << 32) | page;
  }
  static PageAddr Unpack(uint64_t v) {
    return PageAddr{static_cast<uint16_t>(v >> 48),
                    static_cast<uint16_t>((v >> 32) & 0xFFFF),
                    static_cast<PageId>(v & 0xFFFFFFFFu)};
  }
  bool operator==(const PageAddr& o) const {
    return db == o.db && area == o.area && page == o.page;
  }
};

/// A contiguous run of logical pages allocated as one unit.
struct DiskSegment {
  PageId first_page = kInvalidPage;
  uint32_t page_count = 0;
};

/// One storage area backed by a UNIX file. Thread-safe.
class StorageArea {
 public:
  /// Media-repair callback: asked for a byte-exact image of `page` whose
  /// masked trailer CRC is `expected_crc` (the WAL repair path in
  /// wal/recovery.h fits this signature). Must fill `image` with kPageSize
  /// bytes; any non-OK status means "no usable image".
  using RepairHandler =
      std::function<Status(PageId page, uint32_t expected_crc,
                           std::string* image)>;

  /// Creates a new area file with `initial_extents` extents (>= 1).
  static Result<std::unique_ptr<StorageArea>> Create(
      const std::string& path, uint16_t area_id, uint32_t initial_extents = 1);

  /// Opens an existing area, rebuilding allocator state from meta pages.
  static Result<std::unique_ptr<StorageArea>> Open(const std::string& path);

  uint16_t area_id() const { return area_id_; }
  uint32_t extent_count() const;
  const std::string& path() const { return file_.path(); }

  /// Allocates a disk segment of at least `npages` contiguous pages,
  /// growing the area by one extent at a time when all extents are full.
  /// Segments never span extents (buddy blocks cannot).
  Result<DiskSegment> AllocSegment(uint32_t npages);

  /// Frees a segment previously returned by AllocSegment. `first_page`
  /// must be the segment head.
  Status FreeSegment(PageId first_page);

  /// Number of pages the block headed at `first_page` occupies (its rounded
  /// size); 0 if not an allocated head.
  uint32_t SegmentPages(PageId first_page);

  /// Reads `page_count` logical pages starting at `first_page` into `buf`
  /// (the run must not cross an extent boundary). Each stamped page is
  /// verified against its trailer; a mismatch triggers one re-read, then the
  /// repair handler, then quarantine + kCorruption (DESIGN.md §7).
  Status ReadPages(PageId first_page, uint32_t page_count, void* buf);

  /// Writes `page_count` logical pages starting at `first_page` from `buf`,
  /// stamping each page's trailer with `lsn` (0 = non-WAL write). A full
  /// overwrite lifts any quarantine on the written pages.
  Status WritePages(PageId first_page, uint32_t page_count, const void* buf,
                    uint64_t lsn = 0);

  Status Sync();

  /// Raw async-I/O hooks (os/async_io.h RawPageSource): resolve `page_count`
  /// logical pages starting at `first_page` to one contiguous (fd, offset)
  /// byte range a kernel transfer may use directly. Returns false when the
  /// run is not raw-reachable — beyond the area end, crossing an extent
  /// boundary, or touching a quarantined page.
  bool RawRun(PageId first_page, uint32_t page_count, int* fd,
              uint64_t* offset);
  /// Applies the read-side integrity envelope after a raw transfer landed in
  /// `buf`: the same verify → reread → repair → quarantine ladder ReadPages
  /// runs, so the uring path can never leak an unverified page.
  Status FinishRawRead(PageId first_page, uint32_t page_count, void* buf);
  /// Applies the write-side envelope after a raw transfer of `buf` was
  /// completed by the kernel: stamps the out-of-band CRC/LSN trailers and
  /// lifts quarantine, exactly like the tail of WritePages.
  Status FinishRawWrite(PageId first_page, uint32_t page_count,
                        const void* buf, uint64_t lsn);

  /// Installs the WAL-backed media-repair callback (see RepairHandler).
  void set_repair_handler(RepairHandler handler);

  /// Sweeps every stamped page in every extent, verifying (and repairing or
  /// quarantining, like ReadPages) each one. Accumulates into `report`.
  Status Scrub(ScrubReport* report);

  bool IsQuarantined(PageId page) const { return integrity_.IsQuarantined(page); }
  uint64_t QuarantinedPages() const { return integrity_.quarantined_count(); }

  /// Total free pages across extents (statistics / benches).
  uint64_t FreePages();
  /// Mean external fragmentation across extents.
  double Fragmentation();

 private:
  struct AreaHeader;

  enum class VerifyOutcome { kClean, kRereadOk, kRepaired, kQuarantined };

  StorageArea(File file, uint16_t area_id)
      : file_(std::move(file)), area_id_(area_id), integrity_(area_id) {}

  Status AddExtentLocked();
  Status FlushExtentMetaLocked(uint32_t extent);
  Status WriteHeaderLocked();
  uint64_t PhysicalOffset(PageId page) const;
  uint64_t ExtentMetaOffset(uint32_t extent) const;
  /// Verify-or-recover one page already read into `page_buf`; on mismatch
  /// re-reads once, then tries the repair handler, then quarantines.
  Status VerifyOrRecoverPage(PageId page, char* page_buf,
                             VerifyOutcome* outcome);
  Status WriteOnePage(PageId page, const char* bytes, uint64_t lsn);
  /// Flushes trailer regions of extents with unflushed stamps (called from
  /// Sync, before the fdatasync, so trailers never outrun their data).
  Status FlushDirtyTrailers();

  File file_;
  uint16_t area_id_;
  std::mutex mutex_;
  /// Sync coalescing (the force path's group commit, DESIGN.md §8): one
  /// fdatasync covers every write completed before it started. Callers that
  /// arrive while a sync generation is in flight wait for the next one —
  /// which one of them leads — instead of queueing their own fsync.
  std::mutex sync_mutex_;
  std::condition_variable sync_cv_;
  bool sync_in_flight_ = false;
  uint64_t sync_started_gen_ = 0;
  uint64_t sync_done_gen_ = 0;
  Status sync_done_status_;
  std::vector<std::unique_ptr<BuddyAllocator>> extents_;
  PageIntegrity integrity_;
  std::mutex repair_mutex_;
  RepairHandler repair_;
};

}  // namespace bess

#endif  // BESS_STORAGE_STORAGE_AREA_H_
