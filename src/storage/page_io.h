// Checksummed page I/O (DESIGN.md §7): every data page carries a trailer —
// masked CRC32C over the page bytes plus its address, and the page LSN of
// the write that produced it — so torn writes, bit rot and misdirected
// writes are detected on read instead of silently poisoning swizzled
// pointers.
//
// Trailers live *out of band* in the owning extent's meta page (an in-page
// trailer would steal bytes from data segments, whose objects assume full
// kPageSize pages). Meta page layout with trailers:
//
//   [0]    u32 meta magic
//   [4]    u32 masked crc32c(buddy map)
//   [8]    buddy allocation map, kPagesPerExtent bytes
//   [264]  u32 masked crc32c(trailer entries)
//   [268]  kPagesPerExtent trailer entries of 12 bytes each:
//            u32 masked crc32c(page bytes ++ area ++ page)  (0 = unstamped)
//            u64 page LSN of the stamping write
//
// The two regions are checksummed independently: allocation-map writes are
// rare and precious, trailer writes happen on every page write-back. A torn
// trailer-region write therefore degrades that extent's pages to "unstamped"
// (verification skipped, counted in `page.trailer.reset`) instead of making
// the area unopenable.
//
// A page whose trailer is all zero has never been stamped (fresh extents,
// areas from before this format); verification is skipped for it.
#ifndef BESS_STORAGE_PAGE_IO_H_
#define BESS_STORAGE_PAGE_IO_H_

#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "util/config.h"
#include "util/status.h"

namespace bess {

/// One page's integrity trailer (in-memory form; 12 bytes on disk).
struct PageTrailer {
  uint32_t crc = 0;  ///< masked CRC32C; 0 together with lsn==0 = unstamped
  uint64_t lsn = 0;  ///< page LSN of the stamping write
};

inline constexpr size_t kPageTrailerBytes = 12;
/// Byte offset of the trailer region within an extent meta page.
inline constexpr size_t kTrailerRegionOffset = 8 + kPagesPerExtent;
/// Region = u32 masked crc over the entries + the entries themselves.
inline constexpr size_t kTrailerRegionBytes =
    4 + kPagesPerExtent * kPageTrailerBytes;

static_assert(kTrailerRegionOffset + kTrailerRegionBytes <= kPageSize,
              "buddy map + page trailer table must fit in one meta page");

/// CRC32C over a page's bytes extended with its (area, page) address, so a
/// write landing at the wrong offset (misdirected write) also fails
/// verification. Unmasked; callers mask before storing.
uint32_t PageCrc(uint16_t area_id, uint32_t page, const void* bytes);

/// Aggregate result of a Scrub() sweep (per area or whole database).
struct ScrubReport {
  uint64_t pages_scanned = 0;    ///< stamped pages read and verified
  uint64_t verify_failures = 0;  ///< pages that failed first verification
  uint64_t repaired = 0;         ///< restored byte-equal from a WAL image
  uint64_t quarantined = 0;      ///< unrepairable (includes already-known)
};

/// Per-area integrity state: the in-memory trailer tables (one per extent),
/// which extents have unflushed trailer updates, and the quarantine set of
/// pages that failed verification with no repairable image. Thread-safe;
/// never does I/O itself — StorageArea moves regions to/from disk.
class PageIntegrity {
 public:
  explicit PageIntegrity(uint16_t area_id) : area_id_(area_id) {}

  void set_area_id(uint16_t area_id) { area_id_ = area_id; }

  /// Appends a zeroed (all-unstamped) trailer table for a new extent.
  void AddExtent();
  uint32_t extent_count() const;

  /// Serializes one extent's trailer region (kTrailerRegionBytes) with its
  /// masked CRC, and clears the extent's dirty flag.
  void EncodeExtent(uint32_t extent, char* out);

  /// Restores one extent's trailer table from a serialized region. On CRC
  /// mismatch (torn trailer write, pre-trailer-format area) every entry
  /// degrades to unstamped and false is returned.
  bool DecodeExtent(uint32_t extent, const char* in);

  /// Records the trailer for freshly written page bytes. lsn==0 means the
  /// caller has no WAL LSN (recovery restamp, non-logged write): a local
  /// monotone sequence is substituted so the entry never looks unstamped.
  void Stamp(uint32_t page, const void* bytes, uint64_t lsn);

  enum class Verdict { kOk, kUnstamped, kMismatch };
  Verdict Verify(uint32_t page, const void* bytes) const;

  /// The stored masked CRC for a page (0 when unstamped/out of range).
  uint32_t expected_crc(uint32_t page) const;
  bool IsStamped(uint32_t page) const { return expected_crc(page) != 0 || lsn_of(page) != 0; }
  uint64_t lsn_of(uint32_t page) const;

  /// Forgets a page's trailer (freed segments) and lifts any quarantine.
  void Clear(uint32_t page);

  // Quarantine bookkeeping. A quarantined page short-circuits reads to
  // kCorruption; a full-page rewrite clears the flag (fresh content, fresh
  // trailer — the page is whole again).
  bool IsQuarantined(uint32_t page) const;
  void Quarantine(uint32_t page);
  void Unquarantine(uint32_t page);
  uint64_t quarantined_count() const;

  /// Extents with trailer updates not yet serialized via EncodeExtent.
  std::vector<uint32_t> DirtyExtents() const;

 private:
  mutable std::mutex mu_;
  uint16_t area_id_;
  uint64_t stamp_seq_ = 0;  // pseudo-LSN source for lsn==0 stamps
  std::vector<std::vector<PageTrailer>> extents_;
  std::vector<uint8_t> dirty_;  // per extent: trailer region needs a flush
  std::unordered_set<uint32_t> quarantined_;
};

}  // namespace bess

#endif  // BESS_STORAGE_PAGE_IO_H_
