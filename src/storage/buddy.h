// Binary buddy allocator for disk segments within one extent.
//
// "Storage areas are partitioned into a number of extents, and allocation of
// disk segments from one of these extents is based on the binary buddy
// system" (paper §2, following Biliris's EOS disk allocator [3]). Block
// sizes are powers of two pages; on free, buddies coalesce.
//
// The allocator state round-trips through a compact one-byte-per-page map so
// each extent's allocation survives in its meta page.
#ifndef BESS_STORAGE_BUDDY_H_
#define BESS_STORAGE_BUDDY_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace bess {

/// Buddy allocator over `capacity` pages (a power of two).
class BuddyAllocator {
 public:
  /// Page map entry values (persisted form).
  static constexpr uint8_t kFree = 0x00;
  static constexpr uint8_t kAllocatedHeadBit = 0x80;  // low bits = order

  explicit BuddyAllocator(uint32_t capacity_pages);

  /// Allocates a block of at least `npages` pages (rounded up to a power of
  /// two). Returns the first page index, or NoSpace.
  Result<uint32_t> Allocate(uint32_t npages);

  /// Frees the block whose head is `page`. The block size is recalled from
  /// the allocation map; freeing a non-head page is InvalidArgument.
  Status Free(uint32_t page);

  /// Pages the block starting at `page` actually occupies (its rounded
  /// power-of-two size), or 0 if `page` is not an allocated head.
  uint32_t BlockSize(uint32_t page) const;

  uint32_t capacity() const { return capacity_; }
  uint32_t free_pages() const { return free_pages_; }

  /// Largest block currently allocatable, in pages (0 when full).
  uint32_t LargestFreeBlock() const;

  /// External fragmentation in [0,1]: 1 - largest_free / total_free.
  double Fragmentation() const;

  /// Serializes the one-byte-per-page allocation map (size == capacity()).
  void SaveMap(uint8_t* out) const;

  /// Rebuilds allocator state (free lists included) from a saved map.
  static Result<BuddyAllocator> FromMap(const uint8_t* map,
                                        uint32_t capacity_pages);

  /// Verifies internal invariants (no overlap, free lists consistent);
  /// used by property tests.
  Status CheckInvariants() const;

 private:
  static uint32_t OrderFor(uint32_t npages);

  void PushFree(uint32_t order, uint32_t page);
  bool RemoveFree(uint32_t order, uint32_t page);

  uint32_t capacity_;
  uint32_t max_order_;
  uint32_t free_pages_;
  // map_[p]: kFree, kAllocatedHeadBit|order for a head, or 0x01 for interior
  // pages of an allocated block (not persisted as 0x01 — SaveMap recomputes).
  std::vector<uint8_t> map_;
  std::vector<std::vector<uint32_t>> free_lists_;  // per order, page indices
};

}  // namespace bess

#endif  // BESS_STORAGE_BUDDY_H_
