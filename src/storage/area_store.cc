#include "storage/area_store.h"

#include <algorithm>

namespace bess {

namespace {

inline uint32_t AreaKey(uint16_t db, uint16_t area_id) {
  return (static_cast<uint32_t>(db) << 16) | area_id;
}

/// Pages left in the extent containing `page` (>= 1).
inline uint32_t ExtentRemaining(PageId page) {
  return kPagesPerExtent - (page % kPagesPerExtent);
}

}  // namespace

void AreaSegmentStore::AddArea(uint16_t db, uint16_t area_id,
                               StorageArea* area) {
  areas_[AreaKey(db, area_id)] = area;
}

StorageArea* AreaSegmentStore::Find(uint16_t db, uint16_t area_id) const {
  auto it = areas_.find(AreaKey(db, area_id));
  return it == areas_.end() ? nullptr : it->second;
}

Status AreaSegmentStore::FetchSlotted(SegmentId id, void* buf,
                                      uint32_t* page_count) {
  (void)id;
  (void)buf;
  (void)page_count;
  return Status::NotSupported("slotted segments are not raw-area addressable");
}

Status AreaSegmentStore::FetchPages(uint16_t db, uint16_t area, PageId first,
                                    uint32_t page_count, void* buf) {
  StorageArea* a = Find(db, area);
  if (a == nullptr) {
    return Status::NotFound("no storage area for db " + std::to_string(db) +
                            " area " + std::to_string(area));
  }
  char* out = static_cast<char*>(buf);
  while (page_count > 0) {
    const uint32_t n = std::min(page_count, ExtentRemaining(first));
    BESS_RETURN_IF_ERROR(a->ReadPages(first, n, out));
    first += n;
    page_count -= n;
    out += static_cast<size_t>(n) * kPageSize;
  }
  return Status::OK();
}

Status AreaSegmentStore::WritePages(uint16_t db, uint16_t area, PageId first,
                                    uint32_t page_count, const void* buf) {
  StorageArea* a = Find(db, area);
  if (a == nullptr) {
    return Status::NotFound("no storage area for db " + std::to_string(db) +
                            " area " + std::to_string(area));
  }
  const char* in = static_cast<const char*>(buf);
  while (page_count > 0) {
    const uint32_t n = std::min(page_count, ExtentRemaining(first));
    BESS_RETURN_IF_ERROR(a->WritePages(first, n, in));
    first += n;
    page_count -= n;
    in += static_cast<size_t>(n) * kPageSize;
  }
  return Status::OK();
}

bool AreaSegmentStore::RawRun(uint64_t key, uint32_t count, int* fd,
                              uint64_t* offset) {
  const PageAddr addr = PageAddr::Unpack(key);
  StorageArea* a = Find(addr.db, addr.area);
  if (a == nullptr) return false;
  return a->RawRun(addr.page, count, fd, offset);
}

Status AreaSegmentStore::FinishRead(uint64_t key, uint32_t count, void* buf) {
  const PageAddr addr = PageAddr::Unpack(key);
  StorageArea* a = Find(addr.db, addr.area);
  if (a == nullptr) return Status::NotFound("no storage area for raw read");
  return a->FinishRawRead(addr.page, count, buf);
}

Status AreaSegmentStore::FinishWrite(uint64_t key, uint32_t count,
                                     const void* buf, uint64_t lsn) {
  const PageAddr addr = PageAddr::Unpack(key);
  StorageArea* a = Find(addr.db, addr.area);
  if (a == nullptr) return Status::NotFound("no storage area for raw write");
  return a->FinishRawWrite(addr.page, count, buf, lsn);
}

}  // namespace bess
