// Property test for the paper's headline flexibility (§2.1): random
// interleavings of create / update / delete / compact / relocate / evict /
// commit / reopen must always agree with an in-memory reference model, and
// held references must stay valid across every reorganization.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "object/database.h"
#include "util/random.h"

namespace bess {
namespace {

struct Obj {
  uint64_t value;
  char pad[120];
};

class ReorgPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReorgPropertyTest, RandomReorgMatchesModel) {
  auto dir = std::filesystem::temp_directory_path() /
             ("bess_reorg_" + std::to_string(::getpid()) + "_" +
              std::to_string(GetParam()));
  std::filesystem::remove_all(dir);

  Database::Options o;
  o.dir = dir.string();
  o.create = true;
  auto dbr = Database::Open(o);
  ASSERT_TRUE(dbr.ok());
  auto db = std::move(*dbr);
  auto file = db->CreateFile("f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(db->AddStorageArea().ok());  // area 1 for relocations

  Random rng(GetParam());
  // Model: oid-key -> expected value. Slots are re-resolved through OIDs so
  // the model survives reopen.
  std::map<std::string, std::pair<Oid, uint64_t>> model;
  uint64_t next_value = 1;
  int relocate_target = 1;

  auto txn = db->Begin();
  ASSERT_TRUE(txn.ok());

  for (int step = 0; step < 70; ++step) {
    const int op = static_cast<int>(rng.Uniform(10));
    if (op < 4 || model.empty()) {  // create
      Obj init{};
      init.value = next_value++;
      auto slot = db->CreateObject(*file, kRawBytesType, sizeof(Obj), &init);
      ASSERT_TRUE(slot.ok()) << slot.status().ToString();
      auto oid = db->OidOf(*slot);
      ASSERT_TRUE(oid.ok());
      model[oid->ToString()] = {*oid, init.value};
    } else if (op < 6) {  // update a random object
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      auto slot = db->Deref(it->second.first);
      ASSERT_TRUE(slot.ok());
      reinterpret_cast<Obj*>((*slot)->dp)->value = next_value;
      it->second.second = next_value++;
    } else if (op < 7) {  // delete
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      auto slot = db->Deref(it->second.first);
      ASSERT_TRUE(slot.ok());
      ASSERT_TRUE(db->DeleteObject(*slot).ok());
      model.erase(it);
    } else if (op < 8) {  // compact everything
      ASSERT_TRUE(db->CompactFile(*file).ok());
    } else if (op < 9) {  // relocate all data segments to the other area
      ASSERT_TRUE(db->MoveFileData(*file, static_cast<uint16_t>(
                                              relocate_target))
                      .ok());
      relocate_target = 1 - relocate_target;
    } else {  // commit + reopen cold every so often
      ASSERT_TRUE(db->Commit(*txn).ok());
      // Occasional checkpoint keeps the WAL (and recovery on reopen) small.
      if (rng.Bernoulli(0.5)) ASSERT_TRUE(db->Checkpoint().ok());
      if (rng.Bernoulli(0.5)) {
        db.reset();
        Database::Options ro = o;
        ro.create = false;
        auto reopened = Database::Open(ro);
        ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
        db = std::move(*reopened);
        auto f2 = db->FindFile("f");
        ASSERT_TRUE(f2.ok());
        ASSERT_EQ(*f2, *file);
      }
      txn = db->Begin();
      ASSERT_TRUE(txn.ok());
    }

    // Every few steps, verify the full model through OID dereference.
    if (step % 15 == 14) {
      for (const auto& [key, entry] : model) {
        (void)key;
        auto slot = db->Deref(entry.first);
        ASSERT_TRUE(slot.ok()) << "step " << step << ": "
                               << slot.status().ToString();
        ASSERT_EQ(reinterpret_cast<const Obj*>((*slot)->dp)->value,
                  entry.second)
            << "step " << step;
      }
      auto count = db->CountObjects(*file);
      ASSERT_TRUE(count.ok());
      ASSERT_EQ(*count, model.size()) << "step " << step;
    }
  }
  ASSERT_TRUE(db->Commit(*txn).ok());

  // Final cold verification.
  db.reset();
  Database::Options ro = o;
  ro.create = false;
  auto reopened = Database::Open(ro);
  ASSERT_TRUE(reopened.ok());
  db = std::move(*reopened);
  auto txn2 = db->Begin();
  ASSERT_TRUE(txn2.ok());
  for (const auto& [key, entry] : model) {
    (void)key;
    auto slot = db->Deref(entry.first);
    ASSERT_TRUE(slot.ok());
    EXPECT_EQ(reinterpret_cast<const Obj*>((*slot)->dp)->value,
              entry.second);
  }
  ASSERT_TRUE(db->Commit(*txn2).ok());
  db.reset();
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReorgPropertyTest,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace bess
