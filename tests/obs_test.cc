// Tests for the observability subsystem (DESIGN.md §6): lock-free metrics
// registry, shared-memory placement, histograms + quantile bounds, snapshot
// serializations, snapshot deltas under a scripted workload, and the
// compile-time disarm path.
#include <gtest/gtest.h>

#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "bess/bess.h"
#include "obs/metrics.h"
#include "obs/stats.h"

namespace bess {
namespace {

using obs::Registry;

#if BESS_METRICS_ENABLED

TEST(ObsRegistry, CountersAreExactUnderEightThreads) {
  std::vector<char> mem(Registry::BytesFor(64, 1024));
  auto reg = Registry::Create(mem.data(), mem.size(), 64, 1024);
  ASSERT_TRUE(reg.ok());

  constexpr int kThreads = 8;
  constexpr uint64_t kIncs = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Resolve inside the thread: registration must be thread-safe too.
      obs::Counter c = reg->counter("test.hits");
      obs::Histogram h = reg->histogram("test.lat");
      for (uint64_t i = 0; i < kIncs; ++i) {
        c.Inc();
        h.Record(i % 1000);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(reg->counter("test.hits").value(), kThreads * kIncs);
  EXPECT_EQ(reg->histogram("test.lat").count(), kThreads * kIncs);
}

TEST(ObsRegistry, HandlesStayDistinctAndDeduplicated) {
  std::vector<char> mem(Registry::BytesFor(16, 256));
  auto reg = Registry::Create(mem.data(), mem.size(), 16, 256);
  ASSERT_TRUE(reg.ok());

  obs::Counter a1 = reg->counter("a");
  obs::Counter a2 = reg->counter("a");  // same cell
  obs::Counter b = reg->counter("b");
  a1.Inc(3);
  a2.Inc(4);
  b.Inc(5);
  EXPECT_EQ(reg->counter("a").value(), 7u);
  EXPECT_EQ(reg->counter("b").value(), 5u);

  obs::Gauge g = reg->gauge("g");
  g.Add(10);
  g.Sub(4);
  EXPECT_EQ(g.value(), 6u);
}

TEST(ObsRegistry, FullRegistryDegradesToOverflowCells) {
  std::vector<char> mem(Registry::BytesFor(2, 8));
  auto reg = Registry::Create(mem.data(), mem.size(), 2, 8);
  ASSERT_TRUE(reg.ok());
  reg->counter("one").Inc();
  reg->counter("two").Inc();
  // Third registration exceeds max_metrics; the handle must still be safe
  // to use (it points at a shared overflow cell).
  obs::Counter spill = reg->counter("three");
  spill.Inc(42);  // must not crash or corrupt the block
  EXPECT_EQ(reg->counter("one").value(), 1u);
  EXPECT_EQ(reg->counter("two").value(), 1u);
}

TEST(ObsHistogram, QuantileBoundsArePowerOfTwoExact) {
  std::vector<char> mem(Registry::BytesFor(8, 256));
  auto reg = Registry::Create(mem.data(), mem.size(), 8, 256);
  ASSERT_TRUE(reg.ok());
  obs::Histogram h = reg->histogram("lat");

  // 100 samples at 100, then one outlier at 1e6: p50 must sit in the
  // bucket containing 100 ([64,128)), p99-ish territory for the max.
  for (int i = 0; i < 100; ++i) h.Record(100);
  h.Record(1000000);

  Stats s = SnapshotOf(*reg);
  const HistogramSnapshot* hs = s.histogram("lat");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 101u);
  EXPECT_EQ(hs->sum, 100u * 100 + 1000000);
  // Power-of-two bucketing: the p50 estimate is within the bucket
  // [64, 128) that holds the true median 100.
  EXPECT_GE(hs->p50(), 64.0);
  EXPECT_LE(hs->p50(), 128.0);
  // The outlier is > p99's rank, so p99 stays in the 100s bucket too.
  EXPECT_LE(hs->p99(), 128.0);
  // max_bound covers the outlier: smallest 2^k >= 1e6 is 2^20.
  EXPECT_GE(hs->max_bound(), 1000000u);
  EXPECT_EQ(hs->mean(), (100.0 * 100 + 1000000) / 101);
}

TEST(ObsHistogram, ZeroAndHugeValuesLandSafely) {
  std::vector<char> mem(Registry::BytesFor(8, 256));
  auto reg = Registry::Create(mem.data(), mem.size(), 8, 256);
  ASSERT_TRUE(reg.ok());
  obs::Histogram h = reg->histogram("edge");
  h.Record(0);
  h.Record(~uint64_t{0});  // caps at the last bucket
  Stats s = SnapshotOf(*reg);
  const HistogramSnapshot* hs = s.histogram("edge");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 2u);
  EXPECT_EQ(hs->buckets[0], 1u);
  EXPECT_EQ(hs->buckets[obs::kHistBuckets - 1], 1u);
}

// The shared-memory placement contract (§4.1.2): the same block, mapped by
// two processes, aggregates both sides' counts — verified with a real fork.
TEST(ObsRegistry, SharedMemoryRoundTripAcrossFork) {
  const size_t bytes = Registry::BytesFor(32, 512);
  void* mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(mem, MAP_FAILED);

  auto reg = Registry::Create(mem, bytes, 32, 512);
  ASSERT_TRUE(reg.ok());
  reg->counter("shm.parent").Inc(10);

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: attach to the inherited mapping — the magic must be found, a
    // metric the parent registered must resolve to the same cell, and a
    // new registration must become visible to the parent.
    auto child_reg = Registry::Attach(mem, bytes);
    if (!child_reg.ok()) _exit(2);
    child_reg->counter("shm.parent").Inc(5);
    child_reg->counter("shm.child").Inc(7);
    child_reg->histogram("shm.lat").Record(256);
    _exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  EXPECT_EQ(reg->counter("shm.parent").value(), 15u);
  EXPECT_EQ(reg->counter("shm.child").value(), 7u);
  EXPECT_EQ(reg->histogram("shm.lat").count(), 1u);
  ASSERT_EQ(::munmap(mem, bytes), 0);
}

TEST(ObsStats, TextJsonAndBinaryRoundTrip) {
  std::vector<char> mem(Registry::BytesFor(16, 256));
  auto reg = Registry::Create(mem.data(), mem.size(), 16, 256);
  ASSERT_TRUE(reg.ok());
  reg->counter("cache.hit").Inc(123);
  reg->gauge("srv.session.active").Add(3);
  obs::Histogram h = reg->histogram("wal.fsync");
  h.Record(1000);
  h.Record(2000);

  Stats s = SnapshotOf(*reg);
  EXPECT_EQ(s.counter("cache.hit"), 123u);
  EXPECT_EQ(s.counter("srv.session.active"), 3u);

  const std::string text = s.ToText();
  EXPECT_NE(text.find("cache.hit 123"), std::string::npos);

  const std::string json = s.ToJson();
  EXPECT_NE(json.find("\"cache.hit\":123"), std::string::npos);
  EXPECT_NE(json.find("\"wal.fsync.count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"wal.fsync.p99\":"), std::string::npos);

  // Binary round-trip is loss-free including raw buckets.
  std::string wire;
  s.EncodeTo(&wire);
  auto back = Stats::DecodeFrom(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->counters, s.counters);
  EXPECT_EQ(back->gauges, s.gauges);
  ASSERT_NE(back->histogram("wal.fsync"), nullptr);
  EXPECT_EQ(back->histogram("wal.fsync")->count, 2u);
  EXPECT_EQ(back->histogram("wal.fsync")->sum, 3000u);
  EXPECT_EQ(back->histogram("wal.fsync")->buckets,
            s.histogram("wal.fsync")->buckets);
}

TEST(ObsStats, DecodeRejectsGarbage) {
  EXPECT_FALSE(Stats::DecodeFrom("not a stats payload").ok());
  EXPECT_FALSE(Stats::DecodeFrom("").ok());
}

class ObsWorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bess_obs_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    Database::Options o;
    o.dir = dir_.string();
    o.create = true;
    auto db = Database::Open(o);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    TypeDescriptor t;
    t.name = "Obj";
    t.fixed_size = 16;
    auto tp = db_->RegisterType(t);
    ASSERT_TRUE(tp.ok());
    type_ = *tp;
    auto f = db_->CreateFile("objs");
    ASSERT_TRUE(f.ok());
    file_ = *f;
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
  std::unique_ptr<Database> db_;
  TypeIdx type_ = 0;
  uint16_t file_ = 0;
};

// A scripted workload between two Snapshot() calls: the delta must show
// exactly the transactions we ran, and gauges must stay levels.
TEST_F(ObsWorkloadTest, SnapshotDeltaAttributesTheWorkload) {
  const Stats before = Snapshot();

  constexpr int kTxns = 5;
  for (int i = 0; i < kTxns; ++i) {
    TxnGuard txn(db_.get());
    ASSERT_TRUE(txn.active());
    auto slot = db_->CreateObject(file_, type_, 16);
    ASSERT_TRUE(slot.ok());
    auto cs = txn.Commit();
    ASSERT_TRUE(cs.ok());
    EXPECT_GT(cs->duration_ns, 0u);
  }

  const Stats after = Snapshot();
  const Stats delta = StatsDelta(before, after);
  EXPECT_EQ(delta.counter("txn.begin"), static_cast<uint64_t>(kTxns));
  EXPECT_EQ(delta.counter("txn.commit"), static_cast<uint64_t>(kTxns));
  EXPECT_EQ(delta.counter("txn.abort"), 0u);
  const HistogramSnapshot* lat = delta.histogram("txn.commit.latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, static_cast<uint64_t>(kTxns));
  EXPECT_GT(lat->p50(), 0.0);
}

TEST_F(ObsWorkloadTest, CommitStatsReportLogBytesAndLocks) {
  TxnGuard txn(db_.get());
  ASSERT_TRUE(txn.active());
  auto slot = db_->CreateObject(file_, type_, 16);
  ASSERT_TRUE(slot.ok());
  auto cs = txn.Commit();
  ASSERT_TRUE(cs.ok());
  // A creating transaction forces at least one page through the log.
  EXPECT_GT(cs->log_bytes, 0u);
  EXPECT_GT(cs->pages_forced, 0u);
  EXPECT_GT(cs->duration_ns, 0u);
}

TEST_F(ObsWorkloadTest, TxnGuardAbortsWhenDropped) {
  const Stats before = Snapshot();
  {
    TxnGuard txn(db_.get());
    ASSERT_TRUE(txn.active());
    // dropped without Commit
  }
  const Stats delta = StatsDelta(before, Snapshot());
  EXPECT_EQ(delta.counter("txn.abort"), 1u);
  EXPECT_EQ(delta.counter("txn.commit"), 0u);
}

#else  // !BESS_METRICS_ENABLED

// Disarmed build: handles and macros must compile to no-ops and snapshots
// must be empty — the <1% overhead budget's degenerate case.
TEST(ObsDisabled, EverythingCompilesToNoOps) {
  BESS_COUNT("off.counter");
  BESS_HIST("off.hist", 42);
  obs::Counter c;
  c.Inc();
  EXPECT_EQ(c.value(), 0u);
  Stats s = Snapshot();
  EXPECT_TRUE(s.counters.empty());
  EXPECT_TRUE(s.histograms.empty());
}

#endif  // BESS_METRICS_ENABLED

}  // namespace
}  // namespace bess
