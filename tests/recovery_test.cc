// Tests for the always-on recovery subsystem (DESIGN.md §10): fuzzy
// checkpoints bounding restart by the dirty set, the bounded segmented log
// (roll, recycle, retention floor), ENOSPC backpressure as graceful
// degradation, parallel redo, and survivability of injected enospc/io_error
// during checkpoint append and segment recycle.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>

#include "object/database.h"
#include "obs/stats.h"
#include "os/fault_injection.h"
#include "os/file.h"
#include "wal/recovery.h"

namespace bess {
namespace {

using fault::FaultRegistry;
using fault::FaultSpec;

constexpr uint32_t kBodySize = 6000;  // spans two data pages

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Instance().DisarmAll();
    dir_ = std::filesystem::temp_directory_path() /
           ("bess_recovery_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    FaultRegistry::Instance().DisarmAll();
    db_.reset();
    std::filesystem::remove_all(dir_);
  }

  // Small segments and no background checkpointing: every trigger in these
  // tests is explicit, so assertions are deterministic.
  Database::Options Opts(bool create, const std::filesystem::path& dir) {
    Database::Options o;
    o.dir = dir.string();
    o.create = create;
    o.wal_segment_bytes = 64 << 10;
    o.checkpoint_log_bytes = 0;
    return o;
  }

  void Create() { Open(true, dir_); }
  void Reopen() { Open(false, dir_); }

  void Open(bool create, const std::filesystem::path& dir) {
    db_.reset();
    auto db = Database::Open(Opts(create, dir));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    if (create) {
      auto file = db_->CreateFile("f");
      ASSERT_TRUE(file.ok());
      auto txn = db_->Begin();
      ASSERT_TRUE(txn.ok());
      std::string body(kBodySize, 'A');
      auto slot = db_->CreateObject(*file, kRawBytesType, kBodySize,
                                    body.data());
      ASSERT_TRUE(slot.ok());
      ASSERT_TRUE(db_->SetRoot("x", *slot).ok());
      ASSERT_TRUE(db_->Commit(*txn).ok());
    }
  }

  // One commit: stamp `value` into the object (counter word + fill).
  Status CommitValue(uint64_t value) {
    auto txn = db_->Begin();
    if (!txn.ok()) return txn.status();
    auto slot = db_->GetRoot("x");
    if (!slot.ok()) return slot.status();
    std::string body(kBodySize, static_cast<char>('A' + value % 26));
    memcpy(body.data(), &value, sizeof(value));
    memcpy(reinterpret_cast<void*>((*slot)->dp), body.data(), body.size());
    return db_->Commit(*txn);
  }

  uint64_t ReadValue() {
    auto slot = db_->GetRoot("x");
    EXPECT_TRUE(slot.ok());
    if (!slot.ok()) return ~0ull;
    return *reinterpret_cast<const uint64_t*>((*slot)->dp);
  }

  std::filesystem::path dir_;
  std::unique_ptr<Database> db_;
};

// ---- fuzzy checkpoints bound restart ----------------------------------------

// The same workload run twice: with a checkpoint before close, restart
// analysis scans a small suffix; without one, it re-reads the whole retained
// log. This is the paper's restart bound: dirty set + checkpoint distance,
// not log length.
TEST_F(RecoveryTest, CheckpointBoundsRestartScanByDirtySet) {
  const auto dir_cp = dir_ / "with_cp";
  const auto dir_no = dir_ / "without_cp";
  uint64_t scanned_cp = 0, scanned_no = 0;
  for (int variant = 0; variant < 2; ++variant) {
    const auto& d = variant == 0 ? dir_cp : dir_no;
    std::filesystem::create_directories(d);
    Open(true, d);
    for (uint64_t v = 1; v <= 40; ++v) ASSERT_TRUE(CommitValue(v).ok());
    if (variant == 0) ASSERT_TRUE(db_->Checkpoint().ok());
    for (uint64_t v = 41; v <= 43; ++v) ASSERT_TRUE(CommitValue(v).ok());
    Open(false, d);
    EXPECT_EQ(ReadValue(), 43u);
    if (variant == 0) {
      scanned_cp = db_->last_recovery_stats().records_scanned;
    } else {
      scanned_no = db_->last_recovery_stats().records_scanned;
    }
  }
  EXPECT_GT(scanned_no, 0u);
  EXPECT_LT(scanned_cp, scanned_no / 4)
      << "checkpointed restart scanned " << scanned_cp << " records vs "
      << scanned_no << " for the full-log baseline";
}

// The checkpoint advances the retention floor so whole segments recycle: the
// log is a bounded ring, not an ever-growing file.
TEST_F(RecoveryTest, CheckpointRecyclesSegments) {
  Create();
  for (uint64_t v = 1; v <= 40; ++v) ASSERT_TRUE(CommitValue(v).ok());
  const size_t before = db_->wal()->segment_count();
  const Stats stats_before = Snapshot();
  ASSERT_TRUE(db_->Checkpoint().ok());
  const size_t after = db_->wal()->segment_count();
  EXPECT_GT(before, 2u) << "workload never rolled a segment";
  EXPECT_LT(after, before);
  EXPECT_GT(db_->wal()->oldest_lsn(), 0u);
#if BESS_METRICS_ENABLED
  EXPECT_GT(StatsDelta(stats_before, Snapshot())
                .counter("wal.segment.recycled"),
            0u);
#endif
  // LSNs survive recycling: the tail is monotone and the retained suffix is
  // still scannable from the new floor.
  int count = 0;
  ASSERT_TRUE(db_->wal()
                  ->Scan(kNullLsn,
                         [&](Lsn, const LogRecord&) {
                           ++count;
                           return Status::OK();
                         })
                  .ok());
  EXPECT_GT(count, 0);
}

// ---- injected enospc / io_error on the checkpoint paths ---------------------

// ENOSPC while appending the checkpoint record itself: the checkpoint fails,
// nothing is lost, commits continue, and the next checkpoint succeeds.
TEST_F(RecoveryTest, EnospcDuringCheckpointAppendIsSurvivable) {
  Create();
  for (uint64_t v = 1; v <= 10; ++v) ASSERT_TRUE(CommitValue(v).ok());
  // The record's own segment write fails with ENOSPC (the flush path).
  FaultRegistry::Instance().Arm("file.writeat",
                                [] {
                                  FaultSpec s = FaultSpec::NoSpaceAtNth(1, 1);
                                  s.detail_filter = "wal-";
                                  return s;
                                }());
  EXPECT_FALSE(db_->Checkpoint().ok());
  FaultRegistry::Instance().DisarmAll();
  EXPECT_TRUE(db_->wal()->wedged().ok()) << "ENOSPC must not wedge the log";
  ASSERT_TRUE(CommitValue(11).ok());
  ASSERT_TRUE(db_->Checkpoint().ok());
  Reopen();
  EXPECT_EQ(ReadValue(), 11u);
}

// io_error on the master-record swing: the master keeps pointing at the
// previous checkpoint, which still bounds a correct (if longer) restart.
TEST_F(RecoveryTest, IoErrorDuringMasterSwingIsSurvivable) {
  Create();
  for (uint64_t v = 1; v <= 10; ++v) ASSERT_TRUE(CommitValue(v).ok());
  FaultRegistry::Instance().Arm("wal.checkpoint.master", FaultSpec::FailNth(1));
  EXPECT_FALSE(db_->Checkpoint().ok());
  FaultRegistry::Instance().DisarmAll();
  ASSERT_TRUE(CommitValue(11).ok());
  Reopen();
  EXPECT_EQ(ReadValue(), 11u);
}

// io_error while recycling a segment: the master's oldest floor is already
// durable, so the unlink is retried by the next checkpoint and the stragglers
// are pruned by the next open; no records below the floor are ever needed.
TEST_F(RecoveryTest, IoErrorDuringSegmentRecycleIsSurvivable) {
  Create();
  for (uint64_t v = 1; v <= 40; ++v) ASSERT_TRUE(CommitValue(v).ok());
  ASSERT_GT(db_->wal()->segment_count(), 2u);
  FaultRegistry::Instance().Arm("wal.recycle.unlink", FaultSpec::FailNth(1));
  EXPECT_FALSE(db_->Checkpoint().ok());
  FaultRegistry::Instance().DisarmAll();
  EXPECT_EQ(FaultRegistry::Instance().hits("wal.recycle.unlink"), 1u);
  ASSERT_TRUE(CommitValue(41).ok());
  ASSERT_TRUE(db_->Checkpoint().ok());  // retries the unlink
  Reopen();
  EXPECT_EQ(ReadValue(), 41u);
}

// ---- ENOSPC backpressure (log-full is degradation, not a wedge) -------------

TEST_F(RecoveryTest, LogFullThrottlesAndRecoversWithoutWedging) {
  LogManager::Options o;
  o.segment_bytes = 16 << 10;
  o.soft_limit_bytes = 48 << 10;
  o.throttle_timeout_ms = 50;
  auto log = LogManager::Open((dir_ / "wal").string(), o);
  ASSERT_TRUE(log.ok());

  int kicks = 0;
  (*log)->SetLogFullCallback([&] { ++kicks; });

  LogRecord rec;
  rec.type = LogRecordType::kPageWrite;
  rec.txn = 1;
  rec.page = PageAddr{1, 0, 1};
  rec.after = std::string(kPageSize, 'z');

  // Fill past the soft limit: appends start failing with NoSpace after the
  // throttle timeout — the log itself stays healthy and unwedged.
  Status st;
  Lsn last_ok = kNullLsn;
  for (int i = 0; i < 64; ++i) {
    auto lsn = (*log)->Append(rec);
    if (!lsn.ok()) {
      st = lsn.status();
      break;
    }
    last_ok = *lsn;
    ASSERT_TRUE((*log)->Flush(last_ok).ok());
  }
  ASSERT_TRUE(st.IsNoSpace()) << st.ToString();
  EXPECT_GT(kicks, 0) << "log-full callback never fired";
  EXPECT_TRUE((*log)->wedged().ok());
#if BESS_METRICS_ENABLED
  const Stats s = Snapshot();
  EXPECT_GT(s.counter("wal.throttle.waits"), 0u);
  EXPECT_GT(s.counter("wal.throttle.timeouts"), 0u);
#endif

  // Unthrottled appends (checkpoints, recovery records) still go through on
  // the full log — they are how it shrinks.
  LogRecord cp;
  cp.type = LogRecordType::kCheckpoint;
  cp.redo_floor = last_ok;
  auto cp_lsn = (*log)->AppendUnthrottled(cp);
  ASSERT_TRUE(cp_lsn.ok());
  ASSERT_TRUE((*log)->Flush(*cp_lsn).ok());
  ASSERT_TRUE((*log)->SetCheckpointLsn(*cp_lsn).ok());
  ASSERT_TRUE((*log)->ReleaseSegments(last_ok).ok());

  // Space freed: throttled appends flow again, and nothing acked was lost.
  auto lsn = (*log)->Append(rec);
  ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
  ASSERT_TRUE((*log)->Flush(*lsn).ok());
  bool saw_checkpoint = false;
  ASSERT_TRUE((*log)
                  ->Scan(kNullLsn,
                         [&](Lsn, const LogRecord& r) {
                           if (r.type == LogRecordType::kCheckpoint) {
                             saw_checkpoint = true;
                           }
                           return Status::OK();
                         })
                  .ok());
  EXPECT_TRUE(saw_checkpoint);
}

// Real ENOSPC from the disk during a flush: the batch is restored, the log
// is not wedged, and a retry after space returns persists every record.
TEST_F(RecoveryTest, EnospcDuringFlushRestoresBatch) {
  auto log = LogManager::Open((dir_ / "wal").string());
  ASSERT_TRUE(log.ok());
  LogRecord rec;
  rec.type = LogRecordType::kBegin;
  rec.txn = 7;
  auto lsn = (*log)->Append(rec);
  ASSERT_TRUE(lsn.ok());

  FaultSpec s = FaultSpec::NoSpaceAtNth(1, 1);
  s.detail_filter = "wal-";
  FaultRegistry::Instance().Arm("file.writeat", s);
  Status flushed = (*log)->Flush(*lsn);
  FaultRegistry::Instance().DisarmAll();
  ASSERT_TRUE(flushed.IsNoSpace()) << flushed.ToString();
  EXPECT_TRUE((*log)->wedged().ok()) << "ENOSPC is transient, not a wedge";
#if BESS_METRICS_ENABLED
  EXPECT_GT(Snapshot().counter("wal.flush.write_failed"), 0u);
#endif

  ASSERT_TRUE((*log)->Flush(*lsn).ok());  // space is back: same batch lands
  int count = 0;
  ASSERT_TRUE((*log)
                  ->Scan(kNullLsn,
                         [&](Lsn, const LogRecord&) {
                           ++count;
                           return Status::OK();
                         })
                  .ok());
  EXPECT_EQ(count, 1);
}

// With backpressure wired to a live checkpoint thread, a commit storm over a
// tiny soft limit degrades gracefully: every commit succeeds (throttled at
// worst) and the log stays bounded by recycling behind the floor.
TEST_F(RecoveryTest, BackpressureForcesCheckpointsUnderCommitStorm) {
  Database::Options o;
  o.dir = (dir_ / "db").string();
  o.create = true;
  o.wal_segment_bytes = 32 << 10;
  o.wal_soft_limit_bytes = 192 << 10;
  o.wal_throttle_timeout_ms = 5000;
  o.checkpoint_log_bytes = 96 << 10;
  auto dbr = Database::Open(o);
  ASSERT_TRUE(dbr.ok()) << dbr.status().ToString();
  db_ = std::move(*dbr);
  auto file = db_->CreateFile("f");
  ASSERT_TRUE(file.ok());
  {
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    std::string body(kBodySize, 'A');
    auto slot = db_->CreateObject(*file, kRawBytesType, kBodySize,
                                  body.data());
    ASSERT_TRUE(slot.ok());
    ASSERT_TRUE(db_->SetRoot("x", *slot).ok());
    Status seed = db_->Commit(*txn);
    ASSERT_TRUE(seed.ok()) << seed.ToString();
  }
  for (uint64_t v = 1; v <= 120; ++v) {
    ASSERT_TRUE(CommitValue(v).ok()) << "commit " << v << " failed under "
                                     << "backpressure";
  }
  // The log was recycled behind the commits — bounded, not 120 commits long.
  EXPECT_GT(db_->wal()->oldest_lsn(), 0u);
  EXPECT_LT(db_->wal()->retained_bytes(), 2 * o.wal_soft_limit_bytes);
  db_.reset();
  o.create = false;
  dbr = Database::Open(o);
  ASSERT_TRUE(dbr.ok());
  db_ = std::move(*dbr);
  EXPECT_EQ(ReadValue(), 120u);
}

// ---- parallel redo ----------------------------------------------------------

class ConcurrentMemSink : public PageSink {
 public:
  Status WritePage(PageAddr addr, const void* bytes, Lsn lsn) override {
    (void)lsn;
    std::lock_guard<std::mutex> guard(mu_);
    pages_[addr.Pack()] =
        std::string(static_cast<const char*>(bytes), kPageSize);
    return Status::OK();
  }
  Status Sync() override { return Status::OK(); }
  std::map<uint64_t, std::string> pages_;
  std::mutex mu_;
};

// Partitioned redo must produce byte-identical state to the serial replay:
// per-page LSN order is total within a worker, and pages are independent.
TEST_F(RecoveryTest, ParallelRedoMatchesSerialReplay) {
  auto log = LogManager::Open((dir_ / "wal").string());
  ASSERT_TRUE(log.ok());
  constexpr int kPages = 37;
  constexpr int kRounds = 3;
  TxnId txn = 1;
  for (int r = 0; r < kRounds; ++r) {
    LogRecord b;
    b.type = LogRecordType::kBegin;
    b.txn = txn;
    auto prev = (*log)->Append(b);
    ASSERT_TRUE(prev.ok());
    Lsn p = *prev;
    for (int i = 0; i < kPages; ++i) {
      LogRecord w;
      w.type = LogRecordType::kPageWrite;
      w.txn = txn;
      w.prev_lsn = p;
      w.page = PageAddr{1, 0, static_cast<PageId>(100 + i)};
      w.before = std::string(kPageSize, static_cast<char>('a' + r));
      w.after = std::string(kPageSize, static_cast<char>('a' + r + 1));
      // A page-distinct stamp so a cross-page mixup can't go unnoticed.
      w.after[7] = static_cast<char>(i);
      auto lsn = (*log)->Append(w);
      ASSERT_TRUE(lsn.ok());
      p = *lsn;
    }
    LogRecord c;
    c.type = LogRecordType::kCommit;
    c.txn = txn;
    c.prev_lsn = p;
    auto commit = (*log)->AppendAndFlush(c);
    ASSERT_TRUE(commit.ok());
    txn++;
  }

  ConcurrentMemSink serial, parallel;
  {
    RecoveryOptions ro;
    ro.redo_workers = 1;
    RecoveryManager rec(log->get(), &serial, ro);
    ASSERT_TRUE(rec.Run().ok());
    EXPECT_EQ(rec.stats().redo_workers, 1);
    EXPECT_EQ(rec.stats().redo_pages, uint64_t{kPages * kRounds});
  }
  {
    RecoveryOptions ro;
    ro.redo_workers = 4;
    RecoveryManager rec(log->get(), &parallel, ro);
    ASSERT_TRUE(rec.Run().ok());
    EXPECT_EQ(rec.stats().redo_workers, 4);
    EXPECT_EQ(rec.stats().redo_pages, uint64_t{kPages * kRounds});
    EXPECT_EQ(rec.stats().loser_txns, 0u);
  }
  ASSERT_EQ(serial.pages_.size(), parallel.pages_.size());
  EXPECT_TRUE(serial.pages_ == parallel.pages_);
  for (int i = 0; i < kPages; ++i) {
    const auto it = parallel.pages_.find(
        PageAddr{1, 0, static_cast<PageId>(100 + i)}.Pack());
    ASSERT_NE(it, parallel.pages_.end());
    EXPECT_EQ(it->second[0], 'a' + kRounds);  // last round's image won
    EXPECT_EQ(it->second[7], static_cast<char>(i));
  }
}

// A worker failure surfaces as the recovery error (first error wins) rather
// than hanging the producer or the pool.
TEST_F(RecoveryTest, ParallelRedoPropagatesSinkFailure) {
  auto log = LogManager::Open((dir_ / "wal").string());
  ASSERT_TRUE(log.ok());
  LogRecord b;
  b.type = LogRecordType::kBegin;
  b.txn = 1;
  auto prev = (*log)->Append(b);
  ASSERT_TRUE(prev.ok());
  Lsn p = *prev;
  for (int i = 0; i < 16; ++i) {
    LogRecord w;
    w.type = LogRecordType::kPageWrite;
    w.txn = 1;
    w.prev_lsn = p;
    w.page = PageAddr{1, 0, static_cast<PageId>(200 + i)};
    w.before = std::string(kPageSize, '0');
    w.after = std::string(kPageSize, '1');
    auto lsn = (*log)->Append(w);
    ASSERT_TRUE(lsn.ok());
    p = *lsn;
  }
  LogRecord c;
  c.type = LogRecordType::kCommit;
  c.txn = 1;
  c.prev_lsn = p;
  ASSERT_TRUE((*log)->AppendAndFlush(c).ok());

  class FailingSink : public PageSink {
   public:
    Status WritePage(PageAddr, const void*, Lsn) override {
      return Status::IOError("sink full");
    }
    Status Sync() override { return Status::OK(); }
  } sink;
  RecoveryOptions ro;
  ro.redo_workers = 4;
  RecoveryManager rec(log->get(), &sink, ro);
  Status st = rec.Run();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
}

// ---- failed commits must not orphan their log chains ------------------------

// A commit that fails after appending records (here: an area read error while
// collecting a before-image) closes its chain with CLRs + End. If it merely
// unregistered, the orphaned records would stop pinning the retention floor;
// a later checkpoint could recycle the chain's early segments while a suffix
// survives, and restart undo walking prev_lsn below the oldest retained LSN
// would fail on every subsequent open — a bricked database.
TEST_F(RecoveryTest, FailedCommitClosesItsLogChain) {
  Create();
  ASSERT_TRUE(CommitValue(1).ok());

  const Stats before = Snapshot();
  // Second before-image read of the commit's page loop fails: the chain
  // already holds kBegin + the first kPageWrite when the commit dies.
  FaultRegistry::Instance().Arm("file.readat",
                                [] {
                                  FaultSpec s = FaultSpec::FailNth(2);
                                  s.detail_filter = "area_";
                                  return s;
                                }());
  EXPECT_FALSE(CommitValue(2).ok());
  FaultRegistry::Instance().DisarmAll();
#if BESS_METRICS_ENABLED
  EXPECT_GT(StatsDelta(before, Snapshot()).counter("wal.abort.clrs"), 0u)
      << "failed commit did not compensate its appended records";
#endif

  // Commit far enough to roll segments, then checkpoint: if the dead chain
  // were still open it would either pin the floor forever or (unregistered)
  // be partially recycled.
  for (uint64_t v = 3; v <= 40; ++v) ASSERT_TRUE(CommitValue(v).ok());
  ASSERT_TRUE(db_->Checkpoint().ok());

  Reopen();
  EXPECT_EQ(ReadValue(), 40u);
  EXPECT_EQ(db_->last_recovery_stats().loser_txns, 0u)
      << "the closed chain must restart as a winner (ended), not a loser";
  // And the database keeps working after restart.
  ASSERT_TRUE(CommitValue(41).ok());
  Reopen();
  EXPECT_EQ(ReadValue(), 41u);
}

// ---- legacy single-file WAL is refused, never silently ignored --------------

// Databases from before the segmented log kept their WAL at <dir>/wal.log. A
// leftover one may hold unrecovered commits; opening must refuse with a
// migration error instead of starting an empty segmented log over it.
TEST_F(RecoveryTest, LegacySingleFileWalRefusesOpen) {
  Create();
  ASSERT_TRUE(CommitValue(7).ok());
  db_.reset();

  const std::string legacy = (dir_ / "wal.log").string();
  {
    auto f = File::Open(legacy, /*create=*/true);
    ASSERT_TRUE(f.ok()) << f.status().ToString();
  }
  auto refused = Database::Open(Opts(false, dir_));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kNotSupported)
      << refused.status().ToString();

  ASSERT_TRUE(File::Remove(legacy).ok());
  Reopen();
  EXPECT_EQ(ReadValue(), 7u);
}

}  // namespace
}  // namespace bess
