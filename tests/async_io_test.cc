// Tests for the batched async I/O pipeline (os/async_io.h,
// cache/async_page_io.h, FrameTable::ScanRange): backend parity between the
// io_uring engine and the worker-pool fallback, the fault matrix (io_error
// mid-batch, short completions, completion reordering), and the push-based
// scan path over both the in-memory store and real storage-area files.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cache/async_page_io.h"
#include "cache/cached_store.h"
#include "cache/frame_table.h"
#include "os/async_io.h"
#include "os/fault_injection.h"
#include "os/file.h"
#include "storage/area_store.h"
#include "storage/storage_area.h"
#include "vm/mem_store.h"

namespace bess {
namespace {

class AsyncIoTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultRegistry::Instance().DisarmAll(); }
  void TearDown() override { fault::FaultRegistry::Instance().DisarmAll(); }
};

std::string TmpPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string PatternPage(uint32_t p) {
  std::string bytes(kPageSize, '\0');
  for (size_t i = 0; i < kPageSize; ++i) {
    bytes[i] = static_cast<char>((p * 131 + i) & 0xFF);
  }
  return bytes;
}

/// Reaps until `want` completions arrive (engines may deliver in dribbles).
template <typename Engine>
std::vector<aio::AioCompletion> ReapAll(Engine* eng, uint32_t want) {
  std::vector<aio::AioCompletion> got;
  aio::AioCompletion buf[64];
  int idle = 0;
  while (got.size() < want && idle < 100) {
    uint32_t n = eng->Reap(buf, 64, 50);
    if (n == 0) {
      ++idle;
      continue;
    }
    idle = 0;
    for (uint32_t i = 0; i < n; ++i) got.push_back(buf[i]);
  }
  return got;
}

void RunEngineReadWriteBatch(const std::string& backend) {
  const std::string path = TmpPath("aio_rw_" + backend);
  auto file = File::Open(path);
  ASSERT_TRUE(file.ok());
  const uint32_t kPages = 16;
  ASSERT_TRUE(file->Truncate(kPages * kPageSize).ok());

  aio::AsyncFileEngine::Options eo;
  eo.backend = backend;
  eo.queue_depth = 8;
  auto eng = aio::AsyncFileEngine::Create(eo);
  ASSERT_TRUE(eng.ok());
  if (backend == "uring") {
    ASSERT_STREQ((*eng)->backend(), "uring") << "kernel lost io_uring?";
  }

  // One batched write of every page.
  std::vector<std::string> images;
  std::vector<aio::AioRequest> reqs;
  for (uint32_t p = 0; p < kPages; ++p) images.push_back(PatternPage(p));
  for (uint32_t p = 0; p < kPages; ++p) {
    aio::AioRequest r;
    r.op = aio::Op::kWrite;
    r.fd = file->fd();
    r.offset = static_cast<uint64_t>(p) * kPageSize;
    r.buf = images[p].data();
    r.len = kPageSize;
    r.user_data = p;
    reqs.push_back(r);
  }
  ASSERT_TRUE((*eng)->Submit(reqs.data(), kPages).ok());
  auto wr = ReapAll(eng->get(), kPages);
  ASSERT_EQ(wr.size(), kPages);
  for (const auto& c : wr) {
    EXPECT_TRUE(c.status.ok()) << c.status.message();
    EXPECT_EQ(c.bytes, kPageSize);
  }

  // One batched read back; every page must match, every token exactly once.
  std::vector<std::string> out(kPages, std::string(kPageSize, 'x'));
  for (uint32_t p = 0; p < kPages; ++p) {
    reqs[p].op = aio::Op::kRead;
    reqs[p].buf = out[p].data();
  }
  ASSERT_TRUE((*eng)->Submit(reqs.data(), kPages).ok());
  auto rd = ReapAll(eng->get(), kPages);
  ASSERT_EQ(rd.size(), kPages);
  std::set<uint64_t> seen;
  for (const auto& c : rd) {
    EXPECT_TRUE(c.status.ok()) << c.status.message();
    EXPECT_TRUE(seen.insert(c.user_data).second)
        << "duplicate completion for " << c.user_data;
  }
  for (uint32_t p = 0; p < kPages; ++p) EXPECT_EQ(out[p], images[p]);

  auto stats = (*eng)->stats();
  EXPECT_EQ(stats.reads, kPages);
  EXPECT_EQ(stats.writes, kPages);
  EXPECT_EQ(stats.errors, 0u);
  (*eng)->Shutdown();
  (void)File::Remove(path);
}

TEST_F(AsyncIoTest, PoolEngineReadWriteBatch) { RunEngineReadWriteBatch("pool"); }

TEST_F(AsyncIoTest, UringEngineReadWriteBatch) {
  if (!aio::AsyncFileEngine::UringSupported()) {
    GTEST_SKIP() << "kernel has no io_uring";
  }
  RunEngineReadWriteBatch("uring");
}

// The same fault schedule must play out identically on both backends: the
// parity contract that lets sanitizer runs pin bugs on the deterministic
// pool while production runs uring.
void RunIoErrorMidBatch(const std::string& backend) {
  const std::string path = TmpPath("aio_err_" + backend);
  auto file = File::Open(path);
  ASSERT_TRUE(file.ok());
  const uint32_t kPages = 6;
  ASSERT_TRUE(file->Truncate(kPages * kPageSize).ok());

  aio::AsyncFileEngine::Options eo;
  eo.backend = backend;
  auto eng = aio::AsyncFileEngine::Create(eo);
  ASSERT_TRUE(eng.ok());

  // Fail exactly one read in the middle of the batch.
  fault::FaultRegistry::Instance().Arm("aio.read",
                                       fault::FaultSpec::FailNth(3));
  std::vector<std::string> out(kPages, std::string(kPageSize, 'x'));
  std::vector<aio::AioRequest> reqs(kPages);
  for (uint32_t p = 0; p < kPages; ++p) {
    reqs[p].op = aio::Op::kRead;
    reqs[p].fd = file->fd();
    reqs[p].offset = static_cast<uint64_t>(p) * kPageSize;
    reqs[p].buf = out[p].data();
    reqs[p].len = kPageSize;
    reqs[p].user_data = p;
  }
  ASSERT_TRUE((*eng)->Submit(reqs.data(), kPages).ok());
  auto cs = ReapAll(eng->get(), kPages);
  ASSERT_EQ(cs.size(), kPages);
  uint32_t failed = 0;
  for (const auto& c : cs) {
    if (!c.status.ok()) ++failed;
  }
  EXPECT_EQ(failed, 1u) << "exactly the scheduled request fails";
  EXPECT_EQ((*eng)->stats().errors, 1u);
  (*eng)->Shutdown();
  (void)File::Remove(path);
}

TEST_F(AsyncIoTest, PoolIoErrorMidBatchFailsOnlyThatRequest) {
  RunIoErrorMidBatch("pool");
}

TEST_F(AsyncIoTest, UringIoErrorMidBatchFailsOnlyThatRequest) {
  if (!aio::AsyncFileEngine::UringSupported()) {
    GTEST_SKIP() << "kernel has no io_uring";
  }
  RunIoErrorMidBatch("uring");
}

void RunShortCompletionLoopsWhole(const std::string& backend) {
  const std::string path = TmpPath("aio_short_" + backend);
  auto file = File::Open(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->Truncate(4 * kPageSize).ok());
  const std::string image = PatternPage(7);
  ASSERT_TRUE(file->WriteAt(2 * kPageSize, image.data(), kPageSize).ok());

  aio::AsyncFileEngine::Options eo;
  eo.backend = backend;
  auto eng = aio::AsyncFileEngine::Create(eo);
  ASSERT_TRUE(eng.ok());

  // Every aio read completes short (100 bytes) until disarmed; the engine
  // must loop each one to full length and still report one completion.
  fault::FaultSpec shortread;
  shortread.action = fault::FaultAction::kShortWrite;
  shortread.max_bytes = 100;
  fault::FaultRegistry::Instance().Arm("aio.read", shortread);

  std::string out(kPageSize, 'x');
  aio::AioRequest r;
  r.op = aio::Op::kRead;
  r.fd = file->fd();
  r.offset = 2 * kPageSize;
  r.buf = out.data();
  r.len = kPageSize;
  r.user_data = 42;
  ASSERT_TRUE((*eng)->Submit(&r, 1).ok());
  auto cs = ReapAll(eng->get(), 1);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_TRUE(cs[0].status.ok()) << cs[0].status.message();
  EXPECT_EQ(cs[0].bytes, kPageSize) << "caller never sees a prefix";
  EXPECT_EQ(out, image);
  EXPECT_GE((*eng)->stats().short_fixups, 1u);
  (*eng)->Shutdown();
  (void)File::Remove(path);
}

TEST_F(AsyncIoTest, PoolShortCompletionLoopsToFullLength) {
  RunShortCompletionLoopsWhole("pool");
}

TEST_F(AsyncIoTest, UringShortCompletionLoopsToFullLength) {
  if (!aio::AsyncFileEngine::UringSupported()) {
    GTEST_SKIP() << "kernel has no io_uring";
  }
  RunShortCompletionLoopsWhole("uring");
}

TEST_F(AsyncIoTest, ReorderedCompletionsDeliveredExactlyOnce) {
  const std::string path = TmpPath("aio_reorder");
  auto file = File::Open(path);
  ASSERT_TRUE(file.ok());
  const uint32_t kPages = 12;
  ASSERT_TRUE(file->Truncate(kPages * kPageSize).ok());

  aio::AsyncFileEngine::Options eo;
  eo.backend = "pool";
  auto eng = aio::AsyncFileEngine::Create(eo);
  ASSERT_TRUE(eng.ok());

  // Defer every third completion: CQEs arrive out of submission order.
  fault::FaultSpec reorder;
  reorder.probability = 1.0;
  reorder.skip = 0;
  reorder.count = -1;
  fault::FaultSpec every3 = reorder;
  every3.probability = 0.34;
  fault::FaultRegistry::Instance().Arm("aio.reorder", every3);

  std::vector<std::string> out(kPages, std::string(kPageSize, 'x'));
  std::vector<aio::AioRequest> reqs(kPages);
  for (uint32_t p = 0; p < kPages; ++p) {
    reqs[p].op = aio::Op::kRead;
    reqs[p].fd = file->fd();
    reqs[p].offset = static_cast<uint64_t>(p) * kPageSize;
    reqs[p].buf = out[p].data();
    reqs[p].len = kPageSize;
    reqs[p].user_data = 1000 + p;
  }
  ASSERT_TRUE((*eng)->Submit(reqs.data(), kPages).ok());
  auto cs = ReapAll(eng->get(), kPages);
  ASSERT_EQ(cs.size(), kPages) << "a deferred completion must never be lost";
  std::set<uint64_t> seen;
  for (const auto& c : cs) {
    EXPECT_TRUE(seen.insert(c.user_data).second)
        << "duplicate delivery of " << c.user_data;
  }
  (*eng)->Shutdown();
  (void)File::Remove(path);
}

// ---- AsyncPageIo over stores ------------------------------------------------

void SeedStore(InMemoryStore* store, uint32_t pages) {
  for (uint32_t p = 0; p < pages; ++p) {
    ASSERT_TRUE(store->WritePages(1, 0, p, 1, PatternPage(p).data()).ok());
  }
}

uint64_t Key(uint32_t p) { return PageAddr{1, 0, p}.Pack(); }

TEST_F(AsyncIoTest, WorkerPoolPageIoReadsThroughSyncStore) {
  InMemoryStore store;
  SeedStore(&store, 8);
  StorePageIo sync_io(&store);
  AsyncPageIoOptions opts;
  opts.backend = "pool";
  auto io = MakeAsyncPageIo(opts, &sync_io, nullptr);
  ASSERT_TRUE(io.ok());
  EXPECT_STREQ((*io)->backend(), "pool");

  std::vector<std::string> out(8, std::string(kPageSize, 'x'));
  std::vector<AsyncPageIo::Request> reqs(8);
  for (uint32_t p = 0; p < 8; ++p) {
    reqs[p].write = false;
    reqs[p].key = Key(p);
    reqs[p].buf = out[p].data();
    reqs[p].user_data = p;
  }
  ASSERT_TRUE((*io)->Submit(reqs.data(), 8).ok());
  auto cs = ReapAll(io->get(), 8);
  ASSERT_EQ(cs.size(), 8u);
  for (const auto& c : cs) {
    ASSERT_TRUE(c.status.ok()) << c.status.message();
    EXPECT_EQ(out[c.user_data], PatternPage(static_cast<uint32_t>(c.user_data)));
  }
  (*io)->Shutdown();
}

// The uring page path over a real storage area must keep the integrity
// envelope: raw writes stamp trailers at completion, raw reads verify — and
// a quarantined page is not raw-reachable, forcing the sync fallback.
TEST_F(AsyncIoTest, FileEnginePageIoKeepsIntegrityEnvelope) {
  const std::string path = TmpPath("aio_area.bess");
  auto area = StorageArea::Create(path, /*area_id=*/3, /*initial_extents=*/1);
  ASSERT_TRUE(area.ok());
  AreaSegmentStore raw;
  raw.AddArea(1, 3, area->get());
  StorePageIo sync_io(&raw);

  AsyncPageIoOptions opts;
  opts.backend = aio::AsyncFileEngine::UringSupported() ? "auto" : "pool";
  auto io = MakeAsyncPageIo(opts, &sync_io, &raw);
  ASSERT_TRUE(io.ok());

  // Async-write four pages, then async-read them back.
  const uint32_t kPages = 4;
  std::vector<std::string> images;
  for (uint32_t p = 0; p < kPages; ++p) images.push_back(PatternPage(p));
  std::vector<AsyncPageIo::Request> reqs(kPages);
  for (uint32_t p = 0; p < kPages; ++p) {
    reqs[p].write = true;
    reqs[p].key = PageAddr{1, 3, p}.Pack();
    reqs[p].buf = images[p].data();
    reqs[p].lsn = 100 + p;
    reqs[p].user_data = p;
  }
  ASSERT_TRUE((*io)->Submit(reqs.data(), kPages).ok());
  auto ws = ReapAll(io->get(), kPages);
  ASSERT_EQ(ws.size(), kPages);
  for (const auto& c : ws) ASSERT_TRUE(c.status.ok()) << c.status.message();
  ASSERT_TRUE((*area)->Sync().ok());

  std::vector<std::string> out(kPages, std::string(kPageSize, 'x'));
  for (uint32_t p = 0; p < kPages; ++p) {
    reqs[p].write = false;
    reqs[p].buf = out[p].data();
  }
  ASSERT_TRUE((*io)->Submit(reqs.data(), kPages).ok());
  auto rs = ReapAll(io->get(), kPages);
  ASSERT_EQ(rs.size(), kPages);
  for (const auto& c : rs) ASSERT_TRUE(c.status.ok()) << c.status.message();
  for (uint32_t p = 0; p < kPages; ++p) EXPECT_EQ(out[p], images[p]);

  // The trailers really were stamped: the synchronous verified read agrees.
  std::string verify(kPageSize, 'x');
  ASSERT_TRUE((*area)->ReadPages(0, 1, verify.data()).ok());
  EXPECT_EQ(verify, images[0]);

  // Raw-run resolution: a stamped page resolves; a run crossing the extent
  // boundary or addressing an unknown area does not.
  int fd = -1;
  uint64_t off = 0;
  EXPECT_TRUE(raw.RawRun(PageAddr{1, 3, 1}.Pack(), 1, &fd, &off));
  EXPECT_FALSE(raw.RawRun(PageAddr{1, 3, kPagesPerExtent - 1}.Pack(), 2, &fd,
                          &off))
      << "extent-crossing run must fall back to the sync path";
  EXPECT_FALSE(raw.RawRun(PageAddr{9, 9, 0}.Pack(), 1, &fd, &off));
  (*io)->Shutdown();
  (void)File::Remove(path);
}

// ---- push-based scan --------------------------------------------------------

TEST_F(AsyncIoTest, ScanRangeDeliversInOrderAndCountsPrefetchHits) {
  InMemoryStore store;
  SeedStore(&store, 64);
  StorePageIo sync_io(&store);
  AsyncPageIoOptions aopts;
  aopts.backend = "pool";
  auto aio_io = MakeAsyncPageIo(aopts, &sync_io, nullptr);
  ASSERT_TRUE(aio_io.ok());

  HeapPlacement placement(16);
  StorePageIo io(&store);
  FrameTable::Options opts;
  opts.frame_count = 16;
  opts.async_io = aio_io->get();
  opts.async_queue_depth = 8;
  FrameTable table(opts, &placement, &io);
  ASSERT_TRUE(table.Init().ok());

  std::vector<uint32_t> order;
  Status st = table.ScanRange(Key(0), 48, [&](uint64_t key, const void* page) {
    const PageAddr addr = PageAddr::Unpack(key);
    order.push_back(addr.page);
    EXPECT_EQ(0, memcmp(page, PatternPage(addr.page).data(), kPageSize));
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.message();
  ASSERT_EQ(order.size(), 48u);
  for (uint32_t i = 0; i < 48; ++i) EXPECT_EQ(order[i], i);

  auto stats = table.stats();
  EXPECT_EQ(stats.scan_pages, 48u);
  EXPECT_GT(stats.scan_staged, 0u) << "push path never staged a read";
  table.Stop();
}

TEST_F(AsyncIoTest, ScanRangeSurvivesIoErrorAndReorderSchedules) {
  InMemoryStore store;
  SeedStore(&store, 64);
  StorePageIo sync_io(&store);
  AsyncPageIoOptions aopts;
  aopts.backend = "pool";
  auto aio_io = MakeAsyncPageIo(aopts, &sync_io, nullptr);
  ASSERT_TRUE(aio_io.ok());

  HeapPlacement placement(16);
  StorePageIo io(&store);
  FrameTable::Options opts;
  opts.frame_count = 16;
  opts.async_io = aio_io->get();
  opts.async_queue_depth = 8;
  FrameTable table(opts, &placement, &io);
  ASSERT_TRUE(table.Init().ok());

  // Staged reads fail sporadically and complete out of order; the scan must
  // still deliver every page, in order, falling back to demand fixes for
  // the staged frames that failed.
  fault::FaultSpec flaky;
  flaky.probability = 0.3;
  flaky.count = -1;
  flaky.seed = 0xC0FFEE;
  fault::FaultRegistry::Instance().Arm("aio.read", flaky);
  fault::FaultSpec reorder;
  reorder.probability = 0.3;
  reorder.count = -1;
  reorder.seed = 0xBEEF;
  fault::FaultRegistry::Instance().Arm("aio.reorder", reorder);

  std::vector<uint32_t> order;
  Status st = table.ScanRange(Key(0), 64, [&](uint64_t key, const void* page) {
    const PageAddr addr = PageAddr::Unpack(key);
    order.push_back(addr.page);
    EXPECT_EQ(0, memcmp(page, PatternPage(addr.page).data(), kPageSize));
    return Status::OK();
  });
  fault::FaultRegistry::Instance().DisarmAll();
  ASSERT_TRUE(st.ok()) << st.message();
  ASSERT_EQ(order.size(), 64u);
  for (uint32_t i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
  table.Stop();
}

TEST_F(AsyncIoTest, CachedStoreScanPagesPushesOverAreaFiles) {
  const std::string path = TmpPath("aio_scan_area.bess");
  auto area = StorageArea::Create(path, /*area_id=*/0, /*initial_extents=*/2);
  ASSERT_TRUE(area.ok());
  AreaSegmentStore inner;
  inner.AddArea(1, 0, area->get());
  const uint32_t kPages = 96;  // crosses an extent seam
  for (uint32_t p = 0; p < kPages; ++p) {
    ASSERT_TRUE(inner.WritePages(1, 0, p, 1, PatternPage(p).data()).ok());
  }

  CachedSegmentStore::Options copts;
  copts.frame_count = 24;
  copts.async_backend = "auto";
  copts.async_queue_depth = 8;
  copts.raw_source = &inner;
  CachedSegmentStore cache(&inner, copts);
  ASSERT_TRUE(cache.Init().ok());
  EXPECT_STRNE(cache.async_backend(), "off");

  std::vector<uint32_t> order;
  Status st = cache.ScanPages(1, 0, 0, kPages,
                              [&](PageId page, const void* bytes) {
                                order.push_back(page);
                                EXPECT_EQ(0, memcmp(bytes,
                                                    PatternPage(page).data(),
                                                    kPageSize));
                                return Status::OK();
                              });
  ASSERT_TRUE(st.ok()) << st.message();
  ASSERT_EQ(order.size(), kPages);
  for (uint32_t i = 0; i < kPages; ++i) EXPECT_EQ(order[i], i);
  cache.Stop();
  (void)File::Remove(path);
}

}  // namespace
}  // namespace bess
