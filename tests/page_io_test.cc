// End-to-end page integrity tests (DESIGN.md §7): checksum round trips
// through reopen, torn-write and bit-rot detection, single-page media repair
// from WAL full-page images, quarantine semantics, and multi-extent scrubs.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "obs/stats.h"
#include "os/fault_injection.h"
#include "storage/storage_area.h"
#include "util/crc32c.h"
#include "util/random.h"
#include "wal/recovery.h"

namespace bess {
namespace {

class PageIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bess_page_io_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    fault::FaultRegistry::Instance().DisarmAll();
  }
  void TearDown() override {
    fault::FaultRegistry::Instance().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  /// Physical byte offset of a logical page (mirrors StorageArea's layout:
  /// header page, then per extent one meta page + kPagesPerExtent data pages).
  static uint64_t PhysicalOffset(PageId page) {
    const uint64_t extent = page / kPagesPerExtent;
    const uint64_t within = page % kPagesPerExtent;
    return (1 + extent * (kPagesPerExtent + 1) + 1 + within) * kPageSize;
  }

  /// Flips one byte of a page directly in the area file, bypassing the
  /// integrity layer — the simulated media decay.
  void CorruptOnDisk(const std::string& path, PageId page,
                     uint64_t byte = 100) {
    auto f = File::Open(path, /*create=*/false);
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    const uint64_t off = PhysicalOffset(page) + byte;
    char b;
    ASSERT_TRUE(f->ReadAt(off, &b, 1).ok());
    b = static_cast<char>(b ^ 0x5A);
    ASSERT_TRUE(f->WriteAt(off, &b, 1).ok());
  }

  std::string FilledPage(char fill) { return std::string(kPageSize, fill); }

  std::filesystem::path dir_;
};

TEST_F(PageIoTest, ChecksumRoundTripSurvivesReopen) {
  DiskSegment seg;
  std::string data(4 * kPageSize, '\0');
  Random rng(7);
  for (auto& c : data) c = static_cast<char>(rng.Next());
  {
    auto area = StorageArea::Create(Path("a1"), 5);
    ASSERT_TRUE(area.ok());
    auto s = (*area)->AllocSegment(4);
    ASSERT_TRUE(s.ok());
    seg = *s;
    ASSERT_TRUE((*area)->WritePages(seg.first_page, 4, data.data(), 42).ok());
    ASSERT_TRUE((*area)->Sync().ok());
  }
  // Trailers persisted with the extent meta page: the reopened area still
  // verifies every page.
  auto area = StorageArea::Open(Path("a1"));
  ASSERT_TRUE(area.ok()) << area.status().ToString();
  std::string back(4 * kPageSize, '\0');
  const uint64_t fails_before = Snapshot().counter("page.verify.fail");
  ASSERT_TRUE((*area)->ReadPages(seg.first_page, 4, back.data()).ok());
  EXPECT_EQ(data, back);
  EXPECT_EQ(Snapshot().counter("page.verify.fail"), fails_before);
}

TEST_F(PageIoTest, BitFlipOnDiskIsDetectedAndQuarantined) {
  auto area = StorageArea::Create(Path("a2"), 5);
  ASSERT_TRUE(area.ok());
  auto seg = (*area)->AllocSegment(1);
  ASSERT_TRUE(seg.ok());
  const std::string data = FilledPage('x');
  ASSERT_TRUE((*area)->WritePages(seg->first_page, 1, data.data(), 1).ok());
  ASSERT_TRUE((*area)->Sync().ok());

  CorruptOnDisk(Path("a2"), seg->first_page);

  const uint64_t fails_before = Snapshot().counter("page.verify.fail");
  const uint64_t quarantines_before = Snapshot().counter("page.quarantined");
  std::string back(kPageSize, '\0');
  Status s = (*area)->ReadPages(seg->first_page, 1, back.data());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_TRUE((*area)->IsQuarantined(seg->first_page));
  EXPECT_EQ((*area)->QuarantinedPages(), 1u);
#if BESS_METRICS_ENABLED
  EXPECT_EQ(Snapshot().counter("page.verify.fail"), fails_before + 1);
  EXPECT_EQ(Snapshot().counter("page.quarantined"), quarantines_before + 1);
#endif

  // Further reads short-circuit on the quarantine flag (no I/O, no repair).
  const uint64_t hits_before = Snapshot().counter("page.quarantine.hit");
  s = (*area)->ReadPages(seg->first_page, 1, back.data());
  EXPECT_TRUE(s.IsCorruption());
#if BESS_METRICS_ENABLED
  EXPECT_EQ(Snapshot().counter("page.quarantine.hit"), hits_before + 1);
#endif

  // A full-page rewrite makes the page whole again and lifts the quarantine.
  const std::string fresh = FilledPage('y');
  ASSERT_TRUE((*area)->WritePages(seg->first_page, 1, fresh.data(), 2).ok());
  EXPECT_FALSE((*area)->IsQuarantined(seg->first_page));
  ASSERT_TRUE((*area)->ReadPages(seg->first_page, 1, back.data()).ok());
  EXPECT_EQ(back, fresh);
}

TEST_F(PageIoTest, TornWriteIsDetected) {
  auto area = StorageArea::Create(Path("a3"), 5);
  ASSERT_TRUE(area.ok());
  auto seg = (*area)->AllocSegment(1);
  ASSERT_TRUE(seg.ok());
  // Establish known content so the torn write leaves a mixed page.
  const std::string old_data = FilledPage('o');
  ASSERT_TRUE((*area)->WritePages(seg->first_page, 1, old_data.data(), 1).ok());

  // The next page write silently persists only the first 512 bytes but
  // reports success — the classic torn page.
  fault::FaultSpec spec;
  spec.action = fault::FaultAction::kTornPage;
  spec.max_bytes = 512;
  spec.count = 1;
  fault::FaultRegistry::Instance().Arm("page.torn", spec);
  const std::string new_data = FilledPage('n');
  ASSERT_TRUE(
      (*area)->WritePages(seg->first_page, 1, new_data.data(), 2).ok());
  fault::FaultRegistry::Instance().DisarmAll();

  std::string back(kPageSize, '\0');
  Status s = (*area)->ReadPages(seg->first_page, 1, back.data());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_TRUE((*area)->IsQuarantined(seg->first_page));
}

TEST_F(PageIoTest, RepairFromWalFullPageImage) {
  auto area = StorageArea::Create(Path("a4"), 5);
  ASSERT_TRUE(area.ok());
  auto seg = (*area)->AllocSegment(1);
  ASSERT_TRUE(seg.ok());
  std::string data(kPageSize, '\0');
  Random rng(11);
  for (auto& c : data) c = static_cast<char>(rng.Next());
  ASSERT_TRUE((*area)->WritePages(seg->first_page, 1, data.data(), 9).ok());
  ASSERT_TRUE((*area)->Sync().ok());

  // A WAL holding a full-page image of exactly the bytes on disk.
  auto log = LogManager::Open(Path("wal"));
  ASSERT_TRUE(log.ok());
  LogRecord fpi;
  fpi.type = LogRecordType::kFullPageImage;
  fpi.txn = 1;
  fpi.page = PageAddr{1, 5, seg->first_page};
  fpi.after = data;
  auto lsn = (*log)->Append(fpi);
  ASSERT_TRUE(lsn.ok());
  ASSERT_TRUE((*log)->Flush((*log)->tail_lsn() - 1).ok());

  (*area)->set_repair_handler(
      [&](PageId page, uint32_t expected_crc, std::string* image) {
        return RepairPageFromLog(log->get(), /*db=*/1, /*area=*/5, page,
                                 expected_crc, image);
      });

  CorruptOnDisk(Path("a4"), seg->first_page);

  const uint64_t repairs_before = Snapshot().counter("page.repair.ok");
  std::string back(kPageSize, '\0');
  ASSERT_TRUE((*area)->ReadPages(seg->first_page, 1, back.data()).ok());
  EXPECT_EQ(back, data);  // restored byte-equal from the image
  EXPECT_FALSE((*area)->IsQuarantined(seg->first_page));
#if BESS_METRICS_ENABLED
  EXPECT_EQ(Snapshot().counter("page.repair.ok"), repairs_before + 1);
#endif

  // The repair rewrote the page through the checked path: reads keep working.
  ASSERT_TRUE((*area)->ReadPages(seg->first_page, 1, back.data()).ok());
  EXPECT_EQ(back, data);
}

TEST_F(PageIoTest, QuarantineWhenNoUsableImage) {
  auto area = StorageArea::Create(Path("a5"), 5);
  ASSERT_TRUE(area.ok());
  auto seg = (*area)->AllocSegment(1);
  ASSERT_TRUE(seg.ok());
  const std::string data = FilledPage('q');
  ASSERT_TRUE((*area)->WritePages(seg->first_page, 1, data.data(), 3).ok());
  ASSERT_TRUE((*area)->Sync().ok());

  // A WAL with an image of *different* bytes: byte-exactness must reject it
  // (a stale image would silently roll the page back in time).
  auto log = LogManager::Open(Path("wal"));
  ASSERT_TRUE(log.ok());
  LogRecord fpi;
  fpi.type = LogRecordType::kFullPageImage;
  fpi.txn = 1;
  fpi.page = PageAddr{1, 5, seg->first_page};
  fpi.after = FilledPage('Z');
  ASSERT_TRUE((*log)->Append(fpi).ok());
  ASSERT_TRUE((*log)->Flush((*log)->tail_lsn() - 1).ok());
  (*area)->set_repair_handler(
      [&](PageId page, uint32_t expected_crc, std::string* image) {
        return RepairPageFromLog(log->get(), 1, 5, page, expected_crc, image);
      });

  CorruptOnDisk(Path("a5"), seg->first_page);

  std::string back(kPageSize, '\0');
  Status s = (*area)->ReadPages(seg->first_page, 1, back.data());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_TRUE((*area)->IsQuarantined(seg->first_page));

  // The database stays open: other pages read fine, and the damaged page
  // heals on the next full rewrite.
  ASSERT_TRUE((*area)->WritePages(seg->first_page, 1, data.data(), 4).ok());
  ASSERT_TRUE((*area)->ReadPages(seg->first_page, 1, back.data()).ok());
  EXPECT_EQ(back, data);
}

TEST_F(PageIoTest, ScrubSweepsMultipleExtents) {
  auto area = StorageArea::Create(Path("a6"), 5, /*initial_extents=*/3);
  ASSERT_TRUE(area.ok());
  // Fill extent 0 (4 × 64 pages), then allocate into extent 1.
  std::vector<DiskSegment> segs;
  for (int i = 0; i < 5; ++i) {
    auto s = (*area)->AllocSegment(64);
    ASSERT_TRUE(s.ok());
    segs.push_back(*s);
  }
  ASSERT_GE(segs.back().first_page, kPagesPerExtent);  // reached extent 1

  // Stamp one page per segment (the rest of each segment stays unstamped and
  // must be skipped, not counted, by the scrub).
  const std::string data = FilledPage('s');
  for (const DiskSegment& s : segs) {
    ASSERT_TRUE((*area)->WritePages(s.first_page, 1, data.data(), 1).ok());
  }
  ASSERT_TRUE((*area)->Sync().ok());

  const uint64_t scrubbed_before = Snapshot().counter("scrub.pages");
  ScrubReport clean;
  ASSERT_TRUE((*area)->Scrub(&clean).ok());
  EXPECT_EQ(clean.pages_scanned, segs.size());
  EXPECT_EQ(clean.verify_failures, 0u);
  EXPECT_EQ(clean.repaired, 0u);
  EXPECT_EQ(clean.quarantined, 0u);
#if BESS_METRICS_ENABLED
  EXPECT_EQ(Snapshot().counter("scrub.pages"), scrubbed_before + segs.size());
#endif

  // Damage one page in each extent; the scrub finds both, and with no repair
  // handler both end up quarantined (the sweep itself never fails).
  CorruptOnDisk(Path("a6"), segs.front().first_page);
  CorruptOnDisk(Path("a6"), segs.back().first_page);
  ScrubReport dirty;
  ASSERT_TRUE((*area)->Scrub(&dirty).ok());
  EXPECT_EQ(dirty.pages_scanned, segs.size());
  EXPECT_EQ(dirty.verify_failures, 2u);
  EXPECT_EQ(dirty.quarantined, 2u);
  EXPECT_TRUE((*area)->IsQuarantined(segs.front().first_page));
  EXPECT_TRUE((*area)->IsQuarantined(segs.back().first_page));
}

// File::ReadAt must loop a partial pread count to completion instead of
// surfacing a prefix. A regular file can't produce a short pread on demand,
// so the kShortWrite schedule on "file.readat" caps the first pread — the
// resume-mid-buffer path this regression pins. kFail must keep failing.
TEST_F(PageIoTest, ShortReadCountLoopsToFullLength) {
  const std::string path = Path("short_read.dat");
  auto f = File::Open(path);
  ASSERT_TRUE(f.ok());
  std::string image(kPageSize, '\0');
  for (size_t i = 0; i < kPageSize; ++i) {
    image[i] = static_cast<char>((i * 7 + 3) & 0xFF);
  }
  ASSERT_TRUE(f->WriteAt(0, image.data(), kPageSize).ok());

  // Every read completes short (512 bytes first) until disarmed.
  fault::FaultSpec shortread;
  shortread.action = fault::FaultAction::kShortWrite;
  shortread.max_bytes = 512;
  shortread.count = -1;
  fault::FaultRegistry::Instance().Arm("file.readat", shortread);

  std::string out(kPageSize, 'x');
  Status st = f->ReadAt(0, out.data(), kPageSize);
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(out, image) << "resumed read reassembled the wrong bytes";
  EXPECT_GE(fault::FaultRegistry::Instance().hits("file.readat"), 1u);
  fault::FaultRegistry::Instance().DisarmAll();

  // The storage layer's verified read path rides the same loop: a short
  // count under a page read must still verify clean, not quarantine.
  const std::string area_path = Path("short_read.bess");
  auto area = StorageArea::Create(area_path, /*area_id=*/1);
  ASSERT_TRUE(area.ok());
  ASSERT_TRUE((*area)->WritePages(0, 1, image.data(), /*lsn=*/5).ok());
  fault::FaultRegistry::Instance().Arm("file.readat", shortread);
  std::string got(kPageSize, 'x');
  st = (*area)->ReadPages(0, 1, got.data());
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(got, image);
  EXPECT_EQ((*area)->QuarantinedPages(), 0u);
  fault::FaultRegistry::Instance().DisarmAll();

  // Plain kFail on the same point still surfaces as the injected error.
  fault::FaultRegistry::Instance().Arm("file.readat",
                                       fault::FaultSpec::FailNth(1));
  st = f->ReadAt(0, out.data(), kPageSize);
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
}

TEST_F(PageIoTest, MisdirectedWriteFailsVerification) {
  // Two pages with identical bytes still stamp different CRCs, because the
  // page address is folded into the checksum: content copied to the wrong
  // slot cannot masquerade as the right page.
  const std::string data = FilledPage('m');
  const uint32_t crc_p0 = PageCrc(5, 0, data.data());
  const uint32_t crc_p1 = PageCrc(5, 1, data.data());
  EXPECT_NE(crc_p0, crc_p1);
  EXPECT_NE(crc32c::Mask(crc_p0), crc32c::Mask(crc_p1));
}

}  // namespace
}  // namespace bess
