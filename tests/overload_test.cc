// Overload-protection tests (DESIGN.md §12): request deadlines shed expired
// queued work before dispatch, admission control refuses work past the
// in-flight caps with kRetryLater, accept-time admission closes connections
// past the cap, the reactor's slow-consumer policy throttles and then
// disconnects a peer that won't drain replies, the lazy timer wheel probes
// and reaps idle/half-open connections, the worker watchdog flags stuck
// tasks, the client's circuit breaker fails fast and heals through the
// half-open ping probe, and 500 connect/disconnect cycles leak neither fds
// nor sessions.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "object/database.h"
#include "obs/stats.h"
#include "os/fault_injection.h"
#include "os/socket.h"
#include "server/bess_server.h"
#include "server/protocol.h"
#include "server/remote_client.h"
#include "util/slice.h"

namespace bess {
namespace {

class OverloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    base_ = std::filesystem::temp_directory_path() /
            ("bess_ovld_" + std::to_string(::getpid()) + "_" + info->name());
    std::filesystem::remove_all(base_);
    std::filesystem::create_directories(base_);
    sock_path_ = (base_ / "server.sock").string();
  }
  void TearDown() override {
    fault::FaultRegistry::Instance().DisarmAll();
    fault::FaultRegistry::Instance().ResetCounters();
    server_.reset();
    db_.reset();
    std::filesystem::remove_all(base_);
  }

  // Most of these tests exercise pure transport/session machinery with
  // kMsgPing, so the server usually runs bare (no database).
  void StartServer(BessServer::Options o) {
    o.socket_path = sock_path_;
    server_ = std::make_unique<BessServer>(o);
    ASSERT_TRUE(server_->Start().ok());
  }

  MsgSocket ConnectRaw() {
    auto sock = MsgSocket::Connect(sock_path_);
    EXPECT_TRUE(sock.ok()) << sock.status().ToString();
    EXPECT_TRUE(sock->Send(kMsgHello, "").ok());
    auto hello = sock->Recv();
    EXPECT_TRUE(hello.ok()) << hello.status().ToString();
    EXPECT_EQ(hello->type, kMsgOk);
    return std::move(*sock);
  }

  static bool WaitFor(const std::function<bool()>& cond, int timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (cond()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return cond();
  }

  static size_t OpenFdCount() {
    size_t n = 0;
    for (auto it = std::filesystem::directory_iterator("/proc/self/fd");
         it != std::filesystem::directory_iterator(); ++it) {
      ++n;
    }
    return n;
  }

  std::filesystem::path base_;
  std::string sock_path_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<BessServer> server_;
};

// A pipeline of slow requests with a tight per-request budget: the first
// request(s) execute, and everything whose budget expires while queued is
// refused with kDeadlineExceeded *before* dispatch — but every single
// request gets a reply (sheds are answers, not drops).
TEST_F(OverloadTest, ExpiredDeadlinesShedBeforeDispatchEveryRequestAnswered) {
  BessServer::Options o;
  o.simulated_latency_us = 50000;  // 50ms per reply: the worker is the choke
  o.worker_threads = 1;
  StartServer(o);

  MsgSocket c = ConnectRaw();
  constexpr int kBurst = 10;
  for (int i = 0; i < kBurst; ++i) {
    // 120ms budget against a 50ms-per-request pipeline: the tail of the
    // burst cannot make it.
    ASSERT_TRUE(c.Send(kMsgPing, "p", static_cast<uint64_t>(i) + 1,
                       /*deadline_ms=*/120)
                    .ok());
  }
  int ok = 0, shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto reply = c.Recv();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->req_id, static_cast<uint64_t>(i) + 1);  // FIFO order
    if (reply->type == kMsgOk) {
      ++ok;
    } else {
      Status s = DecodeStatusReply(*reply);
      EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GE(ok, 1) << "head of the burst was inside its budget";
  EXPECT_GE(shed, 1) << "tail of the burst should have expired";
  EXPECT_EQ(server_->stats().shed_deadline, static_cast<uint64_t>(shed));
  (void)c.Send(kMsgGoodbye, "");
}

// The global in-flight cap: a flood past capacity gets kRetryLater for the
// overflow, OK for the admitted — and again, one reply per request.
TEST_F(OverloadTest, GlobalInflightCapShedsOverflowWithRetryLater) {
  BessServer::Options o;
  o.simulated_latency_us = 10000;
  o.worker_threads = 1;
  o.max_inflight_global = 4;
  StartServer(o);

  MsgSocket c = ConnectRaw();
  constexpr int kBurst = 40;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(c.Send(kMsgPing, "q", static_cast<uint64_t>(i) + 1).ok());
  }
  int ok = 0, shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto reply = c.Recv();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    if (reply->type == kMsgOk) {
      ++ok;
    } else {
      Status s = DecodeStatusReply(*reply);
      EXPECT_TRUE(s.IsRetryLater()) << s.ToString();
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GE(ok, 1);
  EXPECT_GE(shed, 1) << "burst of 40 against a cap of 4 must shed";
  EXPECT_EQ(server_->stats().shed_admission, static_cast<uint64_t>(shed));
  (void)c.Send(kMsgGoodbye, "");
}

// The per-session pipelining cap sheds independently of the global budget.
TEST_F(OverloadTest, PerSessionPipelineCapSheds) {
  BessServer::Options o;
  o.simulated_latency_us = 10000;
  o.worker_threads = 1;
  o.max_inflight_per_session = 2;
  StartServer(o);

  MsgSocket c = ConnectRaw();
  constexpr int kBurst = 20;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(c.Send(kMsgPing, "s", static_cast<uint64_t>(i) + 1).ok());
  }
  int shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    auto reply = c.Recv();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    if (reply->type == kMsgError) {
      EXPECT_TRUE(DecodeStatusReply(*reply).IsRetryLater());
      ++shed;
    }
  }
  EXPECT_GE(shed, 1);
  (void)c.Send(kMsgGoodbye, "");
}

// Accept-time admission: connections beyond max_connections are closed
// before any session exists. The refused client sees its connect succeed
// and the socket drop — a clean retryable transport failure.
TEST_F(OverloadTest, MaxConnectionsClosesExcessAtAccept) {
  BessServer::Options o;
  o.max_connections = 3;
  StartServer(o);

  std::vector<MsgSocket> kept;
  for (int i = 0; i < 3; ++i) kept.push_back(ConnectRaw());

  auto extra = MsgSocket::Connect(sock_path_);
  ASSERT_TRUE(extra.ok());  // the kernel accepts; the reactor refuses
  (void)extra->Send(kMsgHello, "");
  auto reply = extra->Recv();
  EXPECT_FALSE(reply.ok()) << "connection past the cap must be closed";
  EXPECT_TRUE(WaitFor([&] { return server_->stats().conns_rejected >= 1; },
                      2000));

  // Room opens up when a connection leaves.
  kept[0].Close();
  EXPECT_TRUE(WaitFor(
      [&] {
        auto probe = MsgSocket::Connect(sock_path_);
        if (!probe.ok()) return false;
        if (!probe->Send(kMsgHello, "").ok()) return false;
        auto h = probe->RecvTimeout(200);
        if (h.ok() && h->type == kMsgOk) {
          (void)probe->Send(kMsgGoodbye, "");
          return true;
        }
        return false;
      },
      3000));
  for (auto& k : kept) (void)k.Send(kMsgGoodbye, "");
}

// A slow consumer that pipelines requests but never drains replies: once
// the connection's outbound queue blows the hard cap the server disconnects
// it and the session unwinds through presumed-abort cleanup — the server
// does not buffer without bound for a peer that won't read.
TEST_F(OverloadTest, SlowConsumerIsThrottledThenDisconnected) {
  BessServer::Options o;
  o.worker_threads = 2;
  o.send_soft_cap_bytes = 16 << 10;
  o.send_hard_cap_bytes = 64 << 10;
  StartServer(o);

#if BESS_METRICS_ENABLED
  const ::bess::Stats before = Snapshot();
#endif
  MsgSocket c = ConnectRaw();
  const std::string big(8 << 10, 'z');  // 8KB echoes, never read back
  std::atomic<int> sent{0};
  // The sender blocks once every buffer in the chain fills; the hard-cap
  // disconnect resets the connection and unblocks it with a send error.
  std::thread sender([&] {
    for (int i = 0; i < 400; ++i) {
      if (!c.Send(kMsgPing, big, static_cast<uint64_t>(i) + 1).ok()) break;
      sent.fetch_add(1);
    }
  });
  sender.join();
  EXPECT_TRUE(WaitFor([&] { return server_->live_sessions() == 0; }, 10000))
      << "slow consumer's session not reaped (sent " << sent.load() << ")";
  EXPECT_GE(server_->stats().sessions_reaped, 1u);
#if BESS_METRICS_ENABLED
  const ::bess::Stats delta = StatsDelta(before, Snapshot());
  EXPECT_GE(delta.counter("server.overload.slow_consumer.throttle"), 1u);
  EXPECT_GE(delta.counter("server.overload.slow_consumer.disconnect"), 1u);
#endif
  c.Close();
}

// Idle reaping: a session that answers the server's ping probe survives;
// one that goes silent is probed once and then closed; a connection that
// never even says Hello (half-open) is reaped the same way.
TEST_F(OverloadTest, IdleProbeKeepsResponsiveReapsSilentAndHalfOpen) {
  BessServer::Options o;
  o.idle_timeout_ms = 100;
  StartServer(o);

  // Half-open: connect, say nothing, never read. No session ever exists,
  // and the reactor still reclaims the connection.
  auto half_open = MsgSocket::Connect(sock_path_);
  ASSERT_TRUE(half_open.ok());

  MsgSocket quiet = ConnectRaw();
  // Answer probes for ~4 periods: the session must survive well past the
  // idle timeout because the probe answers count as activity.
  const auto keep_until = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(400);
  while (std::chrono::steady_clock::now() < keep_until) {
    auto probe = quiet.RecvTimeout(50);
    if (probe.ok() && probe->type == kMsgPing) {
      ASSERT_TRUE(quiet.Send(kMsgOk, "", probe->req_id).ok());
    }
  }
  EXPECT_EQ(server_->live_sessions(), 1u)
      << "session reaped despite answering every probe";

  // Now fall silent: one probe, one more silent period, then the reap.
  EXPECT_TRUE(WaitFor([&] { return server_->live_sessions() == 0; }, 3000));
  auto r = quiet.RecvTimeout(1000);
  // Whatever is still buffered (a probe) drains first; the close follows.
  while (r.ok()) r = quiet.RecvTimeout(1000);
  EXPECT_FALSE(r.status().IsBusy()) << "silent session's socket never closed";

  auto ho = half_open->RecvTimeout(2000);
  while (ho.ok()) ho = half_open->RecvTimeout(2000);
  EXPECT_FALSE(ho.status().IsBusy()) << "half-open connection never reaped";
}

// The worker watchdog: a task occupying a worker past watchdog_ms is
// flagged while it runs and cleared once it finishes.
TEST_F(OverloadTest, WatchdogFlagsStuckWorkerAndClears) {
  BessServer::Options o;
  o.worker_threads = 1;
  o.simulated_latency_us = 300000;  // each reply parks the worker 300ms
  o.watchdog_ms = 50;
  StartServer(o);

  MsgSocket c = ConnectRaw();
  ASSERT_TRUE(c.Send(kMsgPing, "slow", 1).ok());
  EXPECT_TRUE(WaitFor([&] { return server_->stuck_workers() >= 1; }, 2000))
      << "watchdog never flagged the stuck worker";
  auto reply = c.Recv();
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(WaitFor([&] { return server_->stuck_workers() == 0; }, 2000))
      << "watchdog did not clear after the task finished";
  (void)c.Send(kMsgGoodbye, "");
}

// WAL backpressure reaches admission control: while the retained log sits
// over its soft limit, new commits are refused with kRetryLater (and the
// client's shed-retry budget rides through transient backpressure).
TEST_F(OverloadTest, LogFullShedsCommitsWithRetryLater) {
  Database::Options dbo;
  dbo.dir = (base_ / "db").string();
  dbo.db_id = 1;
  dbo.create = true;
  // A soft limit far below one log segment: once the head segment holds
  // more than 16KB, no checkpoint can release it (release is segment-
  // granular), so the backpressure signal is sticky — deterministic sheds.
  dbo.wal_soft_limit_bytes = 16 << 10;
  dbo.wal_throttle_timeout_ms = 50;
  auto db = Database::Open(dbo);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  db_ = std::move(*db);

  BessServer::Options o;
  o.socket_path = sock_path_;
  server_ = std::make_unique<BessServer>(o);
  ASSERT_TRUE(server_->AddDatabase(db_.get()).ok());
  ASSERT_TRUE(server_->Start().ok());

  RemoteClient::Options co;
  co.server_path = sock_path_;
  co.db_id = 1;
  co.retry_later_max = 2;  // surface the shed quickly once saturated
  co.retry_later_backoff_ms = 1;
  auto client = RemoteClient::Connect(co);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto file = [&] {
    (void)(*client)->Begin();
    auto f = (*client)->CreateFile("f");
    EXPECT_TRUE(f.ok());
    (void)(*client)->Commit();
    return *f;
  }();

  // Commit objects until the retained log crosses the soft limit and the
  // server starts refusing; the refusal must surface as kRetryLater.
  Status refused;
  for (int i = 0; i < 64 && refused.ok(); ++i) {
    ASSERT_TRUE((*client)->Begin().ok());
    std::string blob(2048, static_cast<char>('a' + (i % 26)));
    auto slot = (*client)->CreateObject(file, kRawBytesType,
                                        static_cast<uint32_t>(blob.size()),
                                        blob.data());
    ASSERT_TRUE(slot.ok()) << slot.status().ToString();
    Status s = (*client)->Commit();
    if (!s.ok()) refused = s;
  }
  EXPECT_TRUE(refused.IsRetryLater()) << refused.ToString();
  EXPECT_GE(server_->stats().shed_log_full, 1u);
  EXPECT_GE((*client)->stats().retry_later_backoffs, 1u);
}

// The circuit breaker: consecutive transport failures open it, calls then
// fail fast with kRetryLater (no per-call timeout burn), and once the
// server is back the half-open ping probe closes it again — layered under
// the reconnect machinery, which the probe itself drives.
TEST_F(OverloadTest, BreakerOpensFailsFastAndHealsViaProbe) {
  Database::Options dbo;
  dbo.dir = (base_ / "db").string();
  dbo.db_id = 1;
  dbo.create = true;
  auto db = Database::Open(dbo);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  db_ = std::move(*db);

  BessServer::Options o;
  o.socket_path = sock_path_;
  server_ = std::make_unique<BessServer>(o);
  ASSERT_TRUE(server_->AddDatabase(db_.get()).ok());
  ASSERT_TRUE(server_->Start().ok());

  RemoteClient::Options co;
  co.server_path = sock_path_;
  co.db_id = 1;
  co.max_rpc_retries = 0;  // isolate breaker behaviour from retry loops
  co.breaker_failure_threshold = 2;
  co.breaker_cooldown_ms = 500;
  auto client = RemoteClient::Connect(co);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  server_->Stop();
  server_.reset();

  // Two consecutive transport failures open the breaker...
  EXPECT_FALSE((*client)->ServerStats().ok());
  EXPECT_FALSE((*client)->ServerStats().ok());
  auto cs = (*client)->stats();
  EXPECT_EQ(cs.breaker_opens, 1u);
  // ...and the next call inside the cooldown short-circuits without
  // touching the socket.
  auto r = (*client)->ServerStats();
  EXPECT_TRUE(r.status().IsRetryLater()) << r.status().ToString();
  EXPECT_GE((*client)->stats().breaker_short_circuits, 1u);

  // Server returns; after the cooldown the next caller runs the half-open
  // ping probe (reconnecting under the hood) and the call goes through.
  BessServer::Options o2;
  o2.socket_path = sock_path_;
  server_ = std::make_unique<BessServer>(o2);
  ASSERT_TRUE(server_->AddDatabase(db_.get()).ok());
  ASSERT_TRUE(server_->Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  EXPECT_TRUE(WaitFor([&] { return (*client)->ServerStats().ok(); }, 5000))
      << "breaker never healed after the server came back";
  cs = (*client)->stats();
  EXPECT_GE(cs.breaker_probes, 1u);
  EXPECT_GE(cs.reconnects, 1u);
}

// A client with a per-RPC deadline gives up waiting locally when the
// server wedges — here an injected EAGAIN storm on the reactor's receive
// path means the request is never even read — and the caller gets
// kDeadlineExceeded in bounded time instead of hanging.
TEST_F(OverloadTest, ClientLocalDeadlineBoundsWaitOnWedgedServer) {
  Database::Options dbo;
  dbo.dir = (base_ / "db").string();
  dbo.db_id = 1;
  dbo.create = true;
  auto db = Database::Open(dbo);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  db_ = std::move(*db);

  BessServer::Options o;
  o.socket_path = sock_path_;
  server_ = std::make_unique<BessServer>(o);
  ASSERT_TRUE(server_->AddDatabase(db_.get()).ok());
  ASSERT_TRUE(server_->Start().ok());

  RemoteClient::Options co;
  co.server_path = sock_path_;
  co.db_id = 1;
  co.max_rpc_retries = 0;
  co.rpc_deadline_ms = 100;  // local backstop ≈ 250ms
  auto client = RemoteClient::Connect(co);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Wedge the server's inbound path: every TryRecv reports EAGAIN, so the
  // request sits unread in the socket buffer and no reply ever forms.
  fault::FaultSpec storm;
  storm.action = fault::FaultAction::kFail;
  storm.code = StatusCode::kWouldBlock;
  fault::FaultRegistry::Instance().Arm("sock.tryrecv", storm);

  const auto t0 = std::chrono::steady_clock::now();
  auto r = (*client)->ServerStats();
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  fault::FaultRegistry::Instance().DisarmAll();
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status().ToString();
  EXPECT_LT(waited.count(), 1500) << "local deadline did not bound the wait";
  EXPECT_GE((*client)->stats().deadline_timeouts, 1u);
}

// 500 connect/disconnect cycles (mixed clean goodbyes and abrupt closes):
// live-session count and the process's open-fd count both return to
// baseline — no leaked sessions, no leaked descriptors.
TEST_F(OverloadTest, ConnectionChurnLeaksNoFdsOrSessions) {
  BessServer::Options o;
  StartServer(o);

  // Let the listener/reactor reach steady state before baselining fds.
  { MsgSocket warm = ConnectRaw(); (void)warm.Send(kMsgGoodbye, ""); }
  ASSERT_TRUE(WaitFor([&] { return server_->live_sessions() == 0; }, 2000));
  const size_t fd_baseline = OpenFdCount();

  for (int i = 0; i < 500; ++i) {
    MsgSocket c = ConnectRaw();
    if (i % 3 == 0) {
      c.Close();  // abrupt: reaped via on_close teardown
    } else {
      ASSERT_TRUE(c.Send(kMsgPing, "x", 1).ok());
      auto r = c.Recv();
      ASSERT_TRUE(r.ok());
      (void)c.Send(kMsgGoodbye, "");
    }
  }
  EXPECT_TRUE(WaitFor([&] { return server_->live_sessions() == 0; }, 10000))
      << server_->live_sessions() << " sessions leaked";
  EXPECT_TRUE(WaitFor([&] { return OpenFdCount() <= fd_baseline; }, 10000))
      << "fd count " << OpenFdCount() << " never returned to baseline "
      << fd_baseline;
  EXPECT_GE(server_->stats().sessions_reaped, 500u);
}

}  // namespace
}  // namespace bess
