// Tests for the slotted segment layout and view operations (Figure 1).
#include <gtest/gtest.h>

#include <vector>

#include "segment/slotted_view.h"

namespace bess {
namespace {

constexpr SegmentId kSelf{1, 0, 100};

class SlottedViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    buf_.assign(2 * kPageSize, 0);
    auto v = SlottedView::Format(buf_.data(), buf_.size(), kSelf,
                                 /*file_id=*/5, /*slot_capacity=*/64,
                                 /*outbound_capacity=*/8);
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    view_ = std::make_unique<SlottedView>(*v);
    SlottedHeader* h = view_->header();
    h->data_area = 0;
    h->data_first_page = 500;
    h->data_page_count = 4;
  }

  std::vector<char> buf_;
  std::unique_ptr<SlottedView> view_;
};

TEST_F(SlottedViewTest, FormatProducesValidSegment) {
  EXPECT_TRUE(view_->Validate().ok());
  const SlottedHeader* h = view_->header();
  EXPECT_EQ(h->self(), kSelf);
  EXPECT_EQ(h->file_id, 5);
  EXPECT_EQ(h->slot_capacity, 64u);
  EXPECT_EQ(h->slot_count, 0u);
  EXPECT_EQ(h->page_count, 2u);
}

TEST_F(SlottedViewTest, SlotLayoutIsStable) {
  // Slots are persisted: their offsets and size must not drift.
  EXPECT_EQ(sizeof(Slot), 32u);
  EXPECT_EQ(SlotOffset(1) - SlotOffset(0), sizeof(Slot));
  EXPECT_EQ(SlotOffset(0) % 8, 0u);
  // A slot address has its low bit clear — the swizzle tag relies on it.
  EXPECT_EQ(SlotOffset(3) % 2, 0u);
}

TEST_F(SlottedViewTest, AllocAndFreeSlots) {
  auto s0 = view_->AllocSlot();
  auto s1 = view_->AllocSlot();
  ASSERT_TRUE(s0.ok() && s1.ok());
  EXPECT_EQ(*s0, 0);
  EXPECT_EQ(*s1, 1);
  EXPECT_TRUE(view_->slot(0)->in_use());
  EXPECT_EQ(view_->header()->live_objects, 2u);

  ASSERT_TRUE(view_->FreeSlot(0).ok());
  EXPECT_FALSE(view_->slot(0)->in_use());
  EXPECT_EQ(view_->header()->live_objects, 1u);
  // Freed slot is reused first.
  auto s2 = view_->AllocSlot();
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, 0);
}

TEST_F(SlottedViewTest, UniquifierBumpsOnReuse) {
  auto s0 = view_->AllocSlot();
  ASSERT_TRUE(s0.ok());
  const uint32_t uniq0 = view_->slot(*s0)->uniquifier;
  ASSERT_TRUE(view_->FreeSlot(*s0).ok());
  auto s1 = view_->AllocSlot();
  ASSERT_TRUE(s1.ok());
  ASSERT_EQ(*s1, *s0);
  EXPECT_GT(view_->slot(*s1)->uniquifier, uniq0);
}

TEST_F(SlottedViewTest, FreeRejectsBadSlots) {
  EXPECT_TRUE(view_->FreeSlot(0).IsInvalidArgument());  // never allocated
  auto s = view_->AllocSlot();
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(view_->FreeSlot(*s).ok());
  EXPECT_TRUE(view_->FreeSlot(*s).IsInvalidArgument());  // double free
}

TEST_F(SlottedViewTest, SlotExhaustion) {
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(view_->AllocSlot().ok());
  }
  EXPECT_TRUE(view_->AllocSlot().status().IsNoSpace());
}

TEST_F(SlottedViewTest, OutboundInterning) {
  const SegmentId other{1, 0, 200};
  const SegmentId third{2, 1, 300};
  auto self_idx = view_->InternOutbound(kSelf);
  ASSERT_TRUE(self_idx.ok());
  EXPECT_EQ(*self_idx, kOutboundSelf);

  auto i1 = view_->InternOutbound(other);
  auto i2 = view_->InternOutbound(third);
  auto i1_again = view_->InternOutbound(other);
  ASSERT_TRUE(i1.ok() && i2.ok() && i1_again.ok());
  EXPECT_EQ(*i1, *i1_again);
  EXPECT_NE(*i1, *i2);

  auto r1 = view_->ResolveOutbound(*i1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, other);
  auto rs = view_->ResolveOutbound(kOutboundSelf);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(*rs, kSelf);
  EXPECT_TRUE(view_->ResolveOutbound(7).status().IsCorruption());
}

TEST_F(SlottedViewTest, OutboundTableFull) {
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(view_->InternOutbound(SegmentId{1, 0, 1000 + i}).ok());
  }
  EXPECT_TRUE(
      view_->InternOutbound(SegmentId{1, 0, 9999}).status().IsNoSpace());
}

TEST_F(SlottedViewTest, DataBumpAllocationAligns) {
  auto o1 = view_->AllocData(10);
  auto o2 = view_->AllocData(1);
  ASSERT_TRUE(o1.ok() && o2.ok());
  EXPECT_EQ(*o1, 0u);
  EXPECT_EQ(*o2, 16u);  // 10 rounds to 16
  EXPECT_EQ(view_->header()->data_used, 24u);

  // Exhaust: 4 pages of data space.
  auto big = view_->AllocData(4 * kPageSize);
  EXPECT_TRUE(big.status().IsNoSpace());
  auto fits = view_->AllocData(4 * kPageSize - 24);
  EXPECT_TRUE(fits.ok());
}

TEST_F(SlottedViewTest, SlotNumberOf) {
  auto s = view_->AllocSlot();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(view_->SlotNumberOf(view_->slot(*s)), *s);
  EXPECT_EQ(view_->SlotNumberOf(view_->base()), kNoSlot);
  EXPECT_EQ(view_->SlotNumberOf(reinterpret_cast<char*>(view_->slot(0)) + 1),
            kNoSlot);
}

TEST_F(SlottedViewTest, ValidateCatchesCorruption) {
  view_->header()->magic = 0x12345678;
  EXPECT_TRUE(view_->Validate().IsCorruption());
  view_->header()->magic = SlottedHeader::kMagic;
  view_->header()->slot_count = 65;  // > capacity
  EXPECT_TRUE(view_->Validate().IsCorruption());
}

TEST_F(SlottedViewTest, DiskRefPacking) {
  uint64_t v = DiskRef::Pack(3, 17);
  EXPECT_TRUE(DiskRef::IsUnswizzled(v));
  EXPECT_EQ(DiskRef::OutboundIdx(v), 3);
  EXPECT_EQ(DiskRef::SlotNo(v), 17);
  EXPECT_FALSE(DiskRef::IsUnswizzled(0x1000));  // aligned pointer
}

TEST_F(SlottedViewTest, SlotDiskAddrPacking) {
  uint64_t v = Slot::PackDiskAddr(9, 123456, 77);
  uint16_t area, pages;
  PageId page;
  Slot::UnpackDiskAddr(v, &area, &page, &pages);
  EXPECT_EQ(area, 9);
  EXPECT_EQ(page, 123456u);
  EXPECT_EQ(pages, 77);
}

}  // namespace
}  // namespace bess
