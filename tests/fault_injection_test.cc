// Tests for the central fault-injection layer: registry schedules (fail-nth,
// probability, latency, short write), the wiring into File / MsgSocket /
// InMemoryStore, sticky WAL sync failure (fsyncgate semantics), and the
// listener's live-server probe.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#include "os/fault_injection.h"
#include "os/file.h"
#include "os/socket.h"
#include "vm/mem_store.h"
#include "wal/log_manager.h"

namespace bess {
namespace {

using fault::FaultAction;
using fault::FaultRegistry;
using fault::FaultSpec;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Instance().DisarmAll();
    FaultRegistry::Instance().ResetCounters();
    dir_ = std::filesystem::temp_directory_path() /
           ("bess_fault_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    FaultRegistry::Instance().DisarmAll();
    std::filesystem::remove_all(dir_);
  }
  std::string Path(const std::string& n) { return (dir_ / n).string(); }
  std::filesystem::path dir_;
};

// ---- registry semantics -----------------------------------------------------

TEST_F(FaultInjectionTest, DisarmedIsFree) {
  EXPECT_FALSE(fault::Armed());
  EXPECT_TRUE(fault::Check("file.readat", "x").ok());
  FaultRegistry::Instance().Arm("p", FaultSpec{});
  EXPECT_TRUE(fault::Armed());
  FaultRegistry::Instance().Disarm("p");
  EXPECT_FALSE(fault::Armed());
}

TEST_F(FaultInjectionTest, FailNthFiresExactlyOnce) {
  FaultRegistry::Instance().Arm("p", FaultSpec::FailNth(3));
  EXPECT_TRUE(fault::Check("p").ok());
  EXPECT_TRUE(fault::Check("p").ok());
  EXPECT_TRUE(fault::Check("p").IsIOError());
  EXPECT_TRUE(fault::Check("p").ok());  // count=1: fired, now exhausted
  EXPECT_EQ(FaultRegistry::Instance().hits("p"), 1u);
}

TEST_F(FaultInjectionTest, HitsSurviveDisarm) {
  FaultRegistry::Instance().Arm("p", FaultSpec::FailNth(1));
  EXPECT_FALSE(fault::Check("p").ok());
  FaultRegistry::Instance().Disarm("p");
  EXPECT_EQ(FaultRegistry::Instance().hits("p"), 1u);
  FaultRegistry::Instance().ResetCounters();
  EXPECT_EQ(FaultRegistry::Instance().hits("p"), 0u);
}

TEST_F(FaultInjectionTest, CustomStatusCode) {
  FaultSpec spec;
  spec.code = StatusCode::kBusy;
  spec.message = "simulated contention";
  FaultRegistry::Instance().Arm("p", spec);
  Status s = fault::Check("p");
  EXPECT_TRUE(s.IsBusy());
  EXPECT_NE(s.message().find("simulated contention"), std::string::npos);
}

TEST_F(FaultInjectionTest, ProbabilityIsSeedDeterministic) {
  auto run = [](uint64_t seed) {
    FaultSpec spec;
    spec.probability = 0.5;
    spec.seed = seed;
    FaultRegistry::Instance().Arm("p", spec);
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern.push_back(fault::Check("p").ok() ? '.' : 'X');
    }
    FaultRegistry::Instance().Disarm("p");
    return pattern;
  };
  const std::string a = run(42), b = run(42), c = run(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // astronomically unlikely to collide
  EXPECT_NE(a.find('X'), std::string::npos);
  EXPECT_NE(a.find('.'), std::string::npos);
}

TEST_F(FaultInjectionTest, DetailFilterTargetsOperations) {
  FaultSpec spec;
  spec.detail_filter = "wal";
  FaultRegistry::Instance().Arm("p", spec);
  EXPECT_TRUE(fault::Check("p", "/tmp/data/area0").ok());
  EXPECT_FALSE(fault::Check("p", "/tmp/data/wal").ok());
}

TEST_F(FaultInjectionTest, LatencyDelaysButSucceeds) {
  FaultSpec spec;
  spec.action = FaultAction::kLatency;
  spec.latency_us = 20000;
  spec.count = 1;
  FaultRegistry::Instance().Arm("p", spec);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(fault::Check("p").ok());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            15000);  // allow scheduler slop below the nominal 20ms
}

// ---- File wiring ------------------------------------------------------------

TEST_F(FaultInjectionTest, FileReadAtInjection) {
  auto f = File::Open(Path("f"));
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->WriteAt(0, "abcd", 4).ok());
  FaultRegistry::Instance().Arm("file.readat", FaultSpec::FailNth(1));
  char buf[4];
  EXPECT_TRUE(f->ReadAt(0, buf, 4).IsIOError());
  EXPECT_TRUE(f->ReadAt(0, buf, 4).ok());
}

TEST_F(FaultInjectionTest, FileTornWritePersistsPrefixOnly) {
  auto f = File::Open(Path("f"));
  ASSERT_TRUE(f.ok());
  FaultSpec spec;
  spec.action = FaultAction::kShortWrite;
  spec.max_bytes = 3;
  spec.count = 1;
  FaultRegistry::Instance().Arm("file.writeat", spec);
  EXPECT_FALSE(f->WriteAt(0, "ABCDEFGH", 8).ok());
  auto size = f->Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 3u);  // only the torn prefix reached the file
  char buf[3];
  ASSERT_TRUE(f->ReadAt(0, buf, 3).ok());
  EXPECT_EQ(std::string(buf, 3), "ABC");
}

TEST_F(FaultInjectionTest, FileSyncAndAppendInjection) {
  auto f = File::Open(Path("f"));
  ASSERT_TRUE(f.ok());
  FaultRegistry::Instance().Arm("file.sync", FaultSpec::FailNth(1));
  EXPECT_TRUE(f->Sync().IsIOError());
  EXPECT_TRUE(f->Sync().ok());
  FaultRegistry::Instance().Arm("file.append", FaultSpec::FailNth(1));
  EXPECT_TRUE(f->Append("x", 1).IsIOError());
  EXPECT_TRUE(f->Append("x", 1).ok());
}

TEST_F(FaultInjectionTest, CrashpointKillsProcessWithoutUnwind) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    FaultRegistry::Instance().Arm("file.writeat", FaultSpec::CrashAtNth(2));
    auto f = File::Open(Path("f"));
    if (!f.ok()) ::_exit(1);
    (void)f->WriteAt(0, "first", 5);
    (void)f->WriteAt(5, "second", 6);  // dies here
    ::_exit(0);                        // not reached
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
  // The first write survived; the second never happened.
  auto f = File::Open(Path("f"));
  ASSERT_TRUE(f.ok());
  auto size = f->Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 5u);
}

// ---- socket wiring ----------------------------------------------------------

TEST_F(FaultInjectionTest, SocketSendRecvInjection) {
  MsgSocket a, b;
  ASSERT_TRUE(MsgSocket::Pair(&a, &b).ok());
  a.set_name("client.sock");
  FaultSpec send_spec = FaultSpec::FailNth(1);
  send_spec.detail_filter = "client";
  FaultRegistry::Instance().Arm("sock.send", send_spec);
  EXPECT_TRUE(a.Send(1, "x").IsIOError());  // injected: never hits the wire
  EXPECT_TRUE(b.Send(2, "y").ok());         // name empty: filter skips it
  FaultRegistry::Instance().Arm("sock.recv", FaultSpec::FailNth(1));
  EXPECT_TRUE(a.Recv().status().IsIOError());
  auto msg = a.Recv();
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg->type, 2);
}

TEST_F(FaultInjectionTest, ConnectNamesSocketAfterPeerPath) {
  auto listener = MsgListener::Listen(Path("srv.sock"));
  ASSERT_TRUE(listener.ok());
  auto client = MsgSocket::Connect(Path("srv.sock"));
  ASSERT_TRUE(client.ok());
  EXPECT_EQ(client->name(), Path("srv.sock"));
}

// ---- listener busy probe ----------------------------------------------------

TEST_F(FaultInjectionTest, ListenRefusesLiveServerAndClaimsStaleFile) {
  auto first = MsgListener::Listen(Path("srv.sock"));
  ASSERT_TRUE(first.ok());
  // A live listener answers the probe: the second Listen must not steal the
  // socket out from under it.
  auto second = MsgListener::Listen(Path("srv.sock"));
  EXPECT_TRUE(second.status().IsBusy());
  // The refused attempt left the live listener fully functional.
  std::thread connector([&] {
    auto c = MsgSocket::Connect(Path("srv.sock"));
    if (c.ok()) (void)c->Send(7, "ping");
  });
  // The probe from the refused Listen left a dead connection in the accept
  // queue; drain until the real client's message arrives.
  Result<Message> msg = Status::Protocol("no connection yet");
  for (int i = 0; i < 3 && !msg.ok(); ++i) {
    auto accepted = first->Accept();
    ASSERT_TRUE(accepted.ok());
    msg = accepted->Recv();
  }
  connector.join();
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg->type, 7);
  first->Close();  // also unlinks the socket file

  // A *stale* socket file — left behind by a crashed server — must be
  // reclaimed: bind a raw socket and close its fd without unlinking (exactly
  // the state kill -9 leaves).
  const std::string stale = Path("srv.sock");
  sockaddr_un addr;
  memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  memcpy(addr.sun_path, stale.c_str(), stale.size());
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ::close(fd);
  ASSERT_TRUE(File::Exists(stale));
  auto reclaimed = MsgListener::Listen(stale);
  ASSERT_TRUE(reclaimed.ok());
}

// ---- InMemoryStore ----------------------------------------------------------

TEST_F(FaultInjectionTest, MemStoreFetchAndWriteInjection) {
  InMemoryStore store;
  std::string page(kPageSize, 'a');
  ASSERT_TRUE(store.WritePages(1, 0, 10, 1, page.data()).ok());

  store.FailNextFetches(2);
  std::string buf(kPageSize, '\0');
  EXPECT_TRUE(store.FetchPages(1, 0, 10, 1, buf.data()).IsIOError());
  EXPECT_TRUE(store.FetchPages(1, 0, 10, 1, buf.data()).IsIOError());
  EXPECT_TRUE(store.FetchPages(1, 0, 10, 1, buf.data()).ok());
  EXPECT_EQ(buf, page);
  EXPECT_EQ(FaultRegistry::Instance().hits("memstore.fetch"), 2u);

  store.FailNextWrites(1);
  EXPECT_TRUE(store.WritePages(1, 0, 11, 1, page.data()).IsIOError());
  EXPECT_TRUE(store.WritePages(1, 0, 11, 1, page.data()).ok());
  EXPECT_EQ(FaultRegistry::Instance().hits("memstore.write"), 1u);
}

// ---- WAL sticky sync (fsyncgate) -------------------------------------------

TEST_F(FaultInjectionTest, LogSyncFailureIsSticky) {
  auto log = LogManager::Open(Path("wal"));
  ASSERT_TRUE(log.ok());
  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.txn = 1;
  ASSERT_TRUE((*log)->AppendAndFlush(rec).ok());

  FaultRegistry::Instance().Arm("file.sync", FaultSpec::FailNth(1));
  EXPECT_TRUE((*log)->AppendAndFlush(rec).status().IsIOError());
  FaultRegistry::Instance().DisarmAll();

  // The failure is sticky: even with the fault gone, the log refuses to
  // accept or flush anything (the kernel may have dropped the dirty pages;
  // pretending the retry succeeded would silently lose records).
  EXPECT_TRUE((*log)->wedged().IsIOError());
  EXPECT_TRUE((*log)->Append(rec).status().IsIOError());
  EXPECT_TRUE((*log)->Flush((*log)->tail_lsn()).IsIOError());
  EXPECT_TRUE((*log)->SetCheckpointLsn(kNullLsn).IsIOError());
  EXPECT_TRUE((*log)->Reset().IsIOError());

  // Reopening re-reads the true on-disk state and starts clean.
  log->reset();
  auto reopened = LogManager::Open(Path("wal"));
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->wedged().ok());
  EXPECT_TRUE((*reopened)->AppendAndFlush(rec).ok());
}

// ---- stale master record clamp ---------------------------------------------

TEST_F(FaultInjectionTest, StaleCheckpointLsnIsClamped) {
  Lsn ckpt = kNullLsn;
  {
    auto log = LogManager::Open(Path("wal"));
    ASSERT_TRUE(log.ok());
    LogRecord rec;
    rec.type = LogRecordType::kCommit;
    rec.txn = 1;
    for (int i = 0; i < 4; ++i) ASSERT_TRUE((*log)->AppendAndFlush(rec).ok());
    auto lsn = (*log)->AppendAndFlush(rec);
    ASSERT_TRUE(lsn.ok());
    ASSERT_TRUE((*log)->SetCheckpointLsn(*lsn).ok());
    ckpt = *lsn;
  }
  {
    // Simulate a crash window inside Reset(): the segment lost its records
    // (truncated back to its header) but the master record still points at
    // the old checkpoint — now at/beyond the rescanned tail.
    std::string seg;
    for (const auto& e : std::filesystem::directory_iterator(Path("wal"))) {
      const std::string name = e.path().filename().string();
      if (name.rfind("wal-", 0) == 0) seg = e.path().string();
    }
    ASSERT_FALSE(seg.empty());
    auto f = File::Open(seg, /*create=*/false);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f->Truncate(kPageSize).ok());
  }
  auto reopened = LogManager::Open(Path("wal"));
  ASSERT_TRUE(reopened.ok());
  auto clamped = (*reopened)->GetCheckpointLsn();
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ(*clamped, kNullLsn);  // dangling master record ignored
  (void)ckpt;
}

TEST_F(FaultInjectionTest, CrashInsideResetLeavesReopenableLog) {
  // Reset() swings to a fresh segment, commits the swing in the master
  // record, and only then unlinks the old segments. Fail the unlink: the
  // process is left with the superseded segment still on disk (exactly the
  // state a crash between the master write and the unlink leaves behind).
  Lsn tail = kNullLsn;
  {
    auto log = LogManager::Open(Path("wal"));
    ASSERT_TRUE(log.ok());
    LogRecord rec;
    rec.type = LogRecordType::kCommit;
    rec.txn = 1;
    for (int i = 0; i < 4; ++i) ASSERT_TRUE((*log)->AppendAndFlush(rec).ok());
    tail = (*log)->tail_lsn();
    FaultRegistry::Instance().Arm("wal.recycle.unlink", FaultSpec::FailNth(1));
    // The master already swung to the new epoch, so a failed unlink is
    // benign — Reset still succeeds; the stale file is garbage on disk.
    EXPECT_TRUE((*log)->Reset().ok());
    FaultRegistry::Instance().DisarmAll();
  }
  // The superseded segment really was left behind (the crash window is
  // exercised), and the next Open prunes it via the master's oldest floor.
  int files = 0;
  for (const auto& e : std::filesystem::directory_iterator(Path("wal"))) {
    if (e.path().filename().string().rfind("wal-", 0) == 0) ++files;
  }
  EXPECT_EQ(files, 2);
  // Reopen prunes the stale segment via the master's oldest-LSN floor: the
  // log is empty, un-checkpointed, and appendable again, and LSNs continue
  // monotonically from the pre-Reset tail (they never restart at zero).
  auto log = LogManager::Open(Path("wal"));
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->segment_count(), 1u);
  int count = 0;
  ASSERT_TRUE((*log)
                  ->Scan(kNullLsn,
                         [&](Lsn, const LogRecord&) {
                           ++count;
                           return Status::OK();
                         })
                  .ok());
  EXPECT_EQ(count, 0);
  auto cp = (*log)->GetCheckpointLsn();
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(*cp, kNullLsn);
  LogRecord rec;
  rec.type = LogRecordType::kBegin;
  rec.txn = 2;
  auto lsn = (*log)->AppendAndFlush(rec);
  ASSERT_TRUE(lsn.ok());
  EXPECT_GE(*lsn, tail);
}

}  // namespace
}  // namespace bess
