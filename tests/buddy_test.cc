// Unit + property tests for the binary buddy allocator (paper §2, ref [3]).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "storage/buddy.h"
#include "util/random.h"

namespace bess {
namespace {

TEST(BuddyTest, AllocatesRoundedPowerOfTwo) {
  BuddyAllocator alloc(256);
  auto p = alloc.Allocate(3);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(alloc.BlockSize(*p), 4u);  // 3 rounds to 4
  EXPECT_EQ(alloc.free_pages(), 252u);
}

TEST(BuddyTest, AllocationsDoNotOverlap) {
  BuddyAllocator alloc(256);
  std::set<uint32_t> used;
  for (int i = 0; i < 32; ++i) {
    auto p = alloc.Allocate(8);
    ASSERT_TRUE(p.ok());
    for (uint32_t q = *p; q < *p + 8; ++q) {
      EXPECT_TRUE(used.insert(q).second) << "page " << q << " double-allocated";
    }
  }
  EXPECT_EQ(alloc.free_pages(), 0u);
  EXPECT_TRUE(alloc.Allocate(1).status().IsNoSpace());
}

TEST(BuddyTest, FreeCoalescesBuddies) {
  BuddyAllocator alloc(256);
  auto a = alloc.Allocate(128);
  auto b = alloc.Allocate(128);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(alloc.LargestFreeBlock(), 0u);
  ASSERT_TRUE(alloc.Free(*a).ok());
  EXPECT_EQ(alloc.LargestFreeBlock(), 128u);
  ASSERT_TRUE(alloc.Free(*b).ok());
  // Full coalesce back to one max block.
  EXPECT_EQ(alloc.LargestFreeBlock(), 256u);
  EXPECT_TRUE(alloc.CheckInvariants().ok());
}

TEST(BuddyTest, FreeOfNonHeadRejected) {
  BuddyAllocator alloc(64);
  auto a = alloc.Allocate(4);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(alloc.Free(*a + 1).IsInvalidArgument());
  EXPECT_TRUE(alloc.Free(63).IsInvalidArgument());
  EXPECT_TRUE(alloc.Free(9999).IsInvalidArgument());
}

TEST(BuddyTest, RejectsBadSizes) {
  BuddyAllocator alloc(64);
  EXPECT_TRUE(alloc.Allocate(0).status().IsInvalidArgument());
  EXPECT_TRUE(alloc.Allocate(65).status().IsInvalidArgument());
  EXPECT_TRUE(alloc.Allocate(64).ok());
}

TEST(BuddyTest, MapRoundTripPreservesState) {
  BuddyAllocator alloc(256);
  auto a = alloc.Allocate(16);
  auto b = alloc.Allocate(1);
  auto c = alloc.Allocate(32);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(alloc.Free(*b).ok());

  std::vector<uint8_t> map(256);
  alloc.SaveMap(map.data());
  auto restored = BuddyAllocator::FromMap(map.data(), 256);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->free_pages(), alloc.free_pages());
  EXPECT_EQ(restored->BlockSize(*a), 16u);
  EXPECT_EQ(restored->BlockSize(*c), 32u);
  EXPECT_TRUE(restored->CheckInvariants().ok());
  // The restored allocator must still be able to free and coalesce.
  EXPECT_TRUE(restored->Free(*a).ok());
  EXPECT_TRUE(restored->Free(*c).ok());
  EXPECT_EQ(restored->LargestFreeBlock(), 256u);
}

TEST(BuddyTest, FromMapRejectsCorruption) {
  std::vector<uint8_t> map(64, 0);
  map[1] = 0x80 | 2;  // order-2 block at misaligned page 1
  EXPECT_TRUE(BuddyAllocator::FromMap(map.data(), 64).status().IsCorruption());

  std::vector<uint8_t> map2(64, 0);
  map2[0] = 0x80 | 7;  // 128 pages in a 64-page extent
  EXPECT_TRUE(BuddyAllocator::FromMap(map2.data(), 64).status().IsCorruption());

  std::vector<uint8_t> map3(64, 0);
  map3[0] = 0x80 | 2;
  map3[2] = 0x80 | 0;  // overlaps the order-2 block at 0
  EXPECT_TRUE(BuddyAllocator::FromMap(map3.data(), 64).status().IsCorruption());
}

// Property test: random alloc/free interleavings keep every invariant, and
// a save/restore at any point reproduces the same reachable behaviour.
class BuddyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BuddyPropertyTest, RandomOpsPreserveInvariants) {
  Random rng(GetParam());
  BuddyAllocator alloc(256);
  std::map<uint32_t, uint32_t> allocated;  // head -> requested size
  uint64_t expected_free = 256;

  for (int step = 0; step < 600; ++step) {
    if (allocated.empty() || rng.Bernoulli(0.6)) {
      const uint32_t want = static_cast<uint32_t>(rng.Range(1, 40));
      auto p = alloc.Allocate(want);
      if (p.ok()) {
        const uint32_t got = alloc.BlockSize(*p);
        EXPECT_GE(got, want);
        allocated[*p] = got;
        expected_free -= got;
      } else {
        EXPECT_TRUE(p.status().IsNoSpace());
      }
    } else {
      auto it = allocated.begin();
      std::advance(it, rng.Uniform(allocated.size()));
      ASSERT_TRUE(alloc.Free(it->first).ok());
      expected_free += it->second;
      allocated.erase(it);
    }
    ASSERT_EQ(alloc.free_pages(), expected_free);
    if (step % 50 == 0) {
      ASSERT_TRUE(alloc.CheckInvariants().ok()) << "step " << step;
      std::vector<uint8_t> map(256);
      alloc.SaveMap(map.data());
      auto restored = BuddyAllocator::FromMap(map.data(), 256);
      ASSERT_TRUE(restored.ok());
      ASSERT_EQ(restored->free_pages(), alloc.free_pages());
      ASSERT_TRUE(restored->CheckInvariants().ok());
    }
  }
  // Free everything: allocator must coalesce back to a single block.
  for (const auto& [head, size] : allocated) {
    (void)size;
    ASSERT_TRUE(alloc.Free(head).ok());
  }
  EXPECT_EQ(alloc.free_pages(), 256u);
  EXPECT_EQ(alloc.LargestFreeBlock(), 256u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace bess
