// Tests for the strict-2PL lock manager: compatibility, upgrades, blocking,
// timeout-as-deadlock-detection, and hierarchical keys.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "segment/layout.h"
#include "txn/lock_manager.h"

namespace bess {
namespace {

TEST(LockModeTest, CompatibilityMatrix) {
  using M = LockMode;
  // S-S compatible, S-X not, IS with everything but X, IX with IS/IX only.
  EXPECT_TRUE(LockCompatible(M::kS, M::kS));
  EXPECT_FALSE(LockCompatible(M::kS, M::kX));
  EXPECT_FALSE(LockCompatible(M::kX, M::kS));
  EXPECT_FALSE(LockCompatible(M::kX, M::kX));
  EXPECT_TRUE(LockCompatible(M::kIS, M::kIX));
  EXPECT_TRUE(LockCompatible(M::kIX, M::kIX));
  EXPECT_FALSE(LockCompatible(M::kIX, M::kS));
  EXPECT_TRUE(LockCompatible(M::kSIX, M::kIS));
  EXPECT_FALSE(LockCompatible(M::kSIX, M::kIX));
  EXPECT_FALSE(LockCompatible(M::kSIX, M::kSIX));
  EXPECT_FALSE(LockCompatible(M::kIS, M::kX));
}

TEST(LockModeTest, JoinLattice) {
  using M = LockMode;
  EXPECT_EQ(LockJoin(M::kS, M::kIX), M::kSIX);
  EXPECT_EQ(LockJoin(M::kIX, M::kS), M::kSIX);
  EXPECT_EQ(LockJoin(M::kS, M::kX), M::kX);
  EXPECT_EQ(LockJoin(M::kIS, M::kIX), M::kIX);
  EXPECT_EQ(LockJoin(M::kIS, M::kS), M::kS);
  EXPECT_EQ(LockJoin(M::kSIX, M::kS), M::kSIX);
  EXPECT_EQ(LockJoin(M::kS, M::kS), M::kS);
}

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  const uint64_t key = LockKey::Page(1, 0, 7);
  EXPECT_TRUE(lm.Acquire(1, key, LockMode::kS).ok());
  EXPECT_TRUE(lm.Acquire(2, key, LockMode::kS).ok());
  EXPECT_TRUE(lm.Holds(1, key));
  EXPECT_TRUE(lm.Holds(2, key));
}

TEST(LockManagerTest, ExclusiveConflictTimesOutAsDeadlock) {
  LockManager lm(/*default_timeout_ms=*/50);
  const uint64_t key = LockKey::Page(1, 0, 7);
  ASSERT_TRUE(lm.Acquire(1, key, LockMode::kX).ok());
  Status s = lm.Acquire(2, key, LockMode::kX);
  EXPECT_TRUE(s.IsDeadlock()) << s.ToString();
  EXPECT_EQ(lm.stats().timeouts, 1u);
}

TEST(LockManagerTest, ReacquireIsIdempotentUpgradeIsNot) {
  LockManager lm;
  const uint64_t key = LockKey::Page(1, 0, 1);
  ASSERT_TRUE(lm.Acquire(1, key, LockMode::kS).ok());
  ASSERT_TRUE(lm.Acquire(1, key, LockMode::kS).ok());
  LockMode m;
  ASSERT_TRUE(lm.Holds(1, key, &m));
  EXPECT_EQ(m, LockMode::kS);
  // Upgrade S -> X succeeds when alone.
  ASSERT_TRUE(lm.Acquire(1, key, LockMode::kX).ok());
  ASSERT_TRUE(lm.Holds(1, key, &m));
  EXPECT_EQ(m, LockMode::kX);
  EXPECT_GE(lm.stats().upgrades, 1u);
  // Downgrade request is a no-op (join keeps X).
  ASSERT_TRUE(lm.Acquire(1, key, LockMode::kS).ok());
  ASSERT_TRUE(lm.Holds(1, key, &m));
  EXPECT_EQ(m, LockMode::kX);
}

TEST(LockManagerTest, UpgradeBlocksOnOtherReader) {
  LockManager lm(50);
  const uint64_t key = LockKey::Page(1, 0, 1);
  ASSERT_TRUE(lm.Acquire(1, key, LockMode::kS).ok());
  ASSERT_TRUE(lm.Acquire(2, key, LockMode::kS).ok());
  EXPECT_TRUE(lm.Acquire(1, key, LockMode::kX).IsDeadlock());
  // After the other reader leaves, the upgrade goes through.
  lm.ReleaseAll(2);
  EXPECT_TRUE(lm.Acquire(1, key, LockMode::kX).ok());
}

TEST(LockManagerTest, WaiterWakesOnRelease) {
  LockManager lm(5000);
  const uint64_t key = LockKey::Page(1, 0, 9);
  ASSERT_TRUE(lm.Acquire(1, key, LockMode::kX).ok());

  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    Status s = lm.Acquire(2, key, LockMode::kX);
    EXPECT_TRUE(s.ok()) << s.ToString();
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(acquired);
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(acquired);
  EXPECT_GE(lm.stats().waits, 1u);
}

TEST(LockManagerTest, TryAcquireNeverBlocks) {
  LockManager lm;
  const uint64_t key = LockKey::Page(1, 0, 3);
  ASSERT_TRUE(lm.TryAcquire(1, key, LockMode::kX).ok());
  EXPECT_TRUE(lm.TryAcquire(2, key, LockMode::kS).IsBusy());
}

TEST(LockManagerTest, ReleaseAllDropsEverything) {
  LockManager lm;
  for (uint32_t p = 0; p < 10; ++p) {
    ASSERT_TRUE(lm.Acquire(5, LockKey::Page(1, 0, p), LockMode::kX).ok());
  }
  EXPECT_EQ(lm.HeldKeys(5).size(), 10u);
  lm.ReleaseAll(5);
  EXPECT_TRUE(lm.HeldKeys(5).empty());
  // Another txn can now take them all.
  for (uint32_t p = 0; p < 10; ++p) {
    EXPECT_TRUE(lm.TryAcquire(6, LockKey::Page(1, 0, p), LockMode::kX).ok());
  }
}

TEST(LockManagerTest, ConflictsReflectsOtherHolders) {
  LockManager lm;
  const uint64_t key = LockKey::Page(1, 0, 4);
  ASSERT_TRUE(lm.Acquire(1, key, LockMode::kS).ok());
  EXPECT_FALSE(lm.Conflicts(1, key, LockMode::kX));  // own lock ignored
  EXPECT_TRUE(lm.Conflicts(2, key, LockMode::kX));
  EXPECT_FALSE(lm.Conflicts(2, key, LockMode::kS));
}

TEST(LockManagerTest, KeyNamespacesAreDisjoint) {
  LockManager lm;
  // Same numeric ids in different namespaces must not collide.
  ASSERT_TRUE(lm.Acquire(1, LockKey::Page(1, 0, 42), LockMode::kX).ok());
  EXPECT_TRUE(lm.TryAcquire(2, LockKey::File(1, 42), LockMode::kX).ok());
  EXPECT_TRUE(
      lm.TryAcquire(3, LockKey::Segment(SegmentId{1, 0, 42}.Pack()),
                    LockMode::kX)
          .ok());
}

TEST(LockManagerTest, ManyTxnsStressFifo) {
  LockManager lm(5000);
  const uint64_t key = LockKey::Page(1, 0, 0);
  std::atomic<int> in_cs{0};
  std::atomic<int> max_in_cs{0};
  std::vector<std::thread> threads;
  for (int t = 1; t <= 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(lm.Acquire(static_cast<TxnId>(t), key, LockMode::kX).ok());
        int now = ++in_cs;
        int prev = max_in_cs.load();
        while (now > prev && !max_in_cs.compare_exchange_weak(prev, now)) {
        }
        --in_cs;
        lm.ReleaseAll(static_cast<TxnId>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(max_in_cs.load(), 1);  // X is truly exclusive
}

}  // namespace
}  // namespace bess
