// Tests for the public API facade (§2.5): ref<T>, global_ref<T>,
// Transaction guard, typed helpers, and transparent forward-object
// resolution through the ODMG-style interface.
#include <gtest/gtest.h>

#include <filesystem>

#include "bess/bess.h"

namespace bess {
namespace {

struct Node {
  uint64_t next;  // ref at 0
  uint64_t value;
};

class ApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bess_api_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    Database::Options o;
    o.dir = dir_.string();
    o.create = true;
    auto db = Database::Open(o);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    TypeDescriptor t;
    t.name = "Node";
    t.fixed_size = sizeof(Node);
    t.ref_offsets = {0};
    auto tp = db_->RegisterType(t);
    ASSERT_TRUE(tp.ok());
    type_ = *tp;
    auto f = db_->CreateFile("nodes");
    ASSERT_TRUE(f.ok());
    file_ = *f;
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
  std::unique_ptr<Database> db_;
  TypeIdx type_ = 0;
  uint16_t file_ = 0;
};

TEST_F(ApiTest, RefBehavesLikePointer) {
  Transaction txn(db_.get());
  ASSERT_TRUE(txn.active());
  auto a = CreateObject<Node>(db_.get(), file_, type_);
  auto b = CreateObject<Node>(db_.get(), file_, type_);
  ASSERT_TRUE(a.ok() && b.ok());
  (*a)->value = 10;
  (*b)->value = 20;
  (*a)->next = b->AsField();

  ref<Node> r = *a;
  EXPECT_TRUE(r);
  EXPECT_EQ(r->value, 10u);
  EXPECT_EQ((*r).value, 10u);
  Node* raw = r;  // implicit conversion, pass-as-T* (§2.5)
  EXPECT_EQ(raw->value, 10u);
  ref<Node> next = ref<Node>::FromField(r->next);
  EXPECT_EQ(next->value, 20u);
  EXPECT_EQ(next, *b);
  EXPECT_NE(next, r);
  EXPECT_FALSE(ref<Node>());
  ASSERT_TRUE(txn.Commit().ok());
}

TEST_F(ApiTest, TransactionGuardAbortsByDefault) {
  ref<Node> created;
  {
    Transaction txn(db_.get());
    auto a = CreateObject<Node>(db_.get(), file_, type_);
    ASSERT_TRUE(a.ok());
    created = *a;
    ASSERT_TRUE(db_->SetRoot("leak", created.slot()).ok());
    // No Commit: the guard aborts on scope exit.
  }
  auto count = db_->CountObjects(file_);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST_F(ApiTest, TransactionGuardDoubleCommitFails) {
  Transaction txn(db_.get());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_TRUE(txn.Commit().IsInvalidArgument());
  EXPECT_TRUE(txn.Abort().IsInvalidArgument());
  EXPECT_FALSE(txn.active());
}

TEST_F(ApiTest, NestedTransactionOnThreadRejected) {
  Transaction txn(db_.get());
  ASSERT_TRUE(txn.active());
  Transaction inner(db_.get());
  EXPECT_FALSE(inner.active());
  EXPECT_TRUE(inner.begin_status().IsInvalidArgument());
  ASSERT_TRUE(txn.Commit().ok());
}

TEST_F(ApiTest, GlobalRefResolvesAndStales) {
  Transaction txn(db_.get());
  auto a = CreateObject<Node>(db_.get(), file_, type_);
  ASSERT_TRUE(a.ok());
  (*a)->value = 77;
  auto oid = db_->OidOf(a->slot());
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(txn.Commit().ok());

  global_ref<Node> gref(*oid);
  auto resolved = gref.Resolve();
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ((*resolved)->value, 77u);

  Transaction txn2(db_.get());
  ASSERT_TRUE(db_->DeleteObject(resolved->slot()).ok());
  ASSERT_TRUE(txn2.Commit().ok());
  EXPECT_TRUE(gref.Resolve().status().IsNotFound());
}

TEST_F(ApiTest, RefFollowsForwardObjectsTransparently) {
  // Second database holding the real object.
  auto dir2 = dir_;
  dir2 += "_two";
  Database::Options o2;
  o2.dir = dir2.string();
  o2.db_id = 2;
  o2.create = true;
  auto db2r = Database::Open(o2);
  ASSERT_TRUE(db2r.ok());
  auto db2 = std::move(*db2r);
  TypeDescriptor t;
  t.name = "Node";
  t.fixed_size = sizeof(Node);
  t.ref_offsets = {0};
  ASSERT_TRUE(db2->RegisterType(t).ok());
  auto f2 = db2->CreateFile("remote");
  ASSERT_TRUE(f2.ok());

  Oid target_oid;
  {
    auto txn = db2->Begin();
    ASSERT_TRUE(txn.ok());
    auto target = db2->CreateObject(*f2, 1, sizeof(Node));
    ASSERT_TRUE(target.ok());
    reinterpret_cast<Node*>((*target)->dp)->value = 4242;
    auto oid = db2->OidOf(*target);
    ASSERT_TRUE(oid.ok());
    target_oid = *oid;
    ASSERT_TRUE(db2->Commit(*txn).ok());
  }
  {
    Transaction txn(db_.get());
    auto fwd = db_->CreateForward(file_, target_oid);
    ASSERT_TRUE(fwd.ok());
    ASSERT_TRUE(txn.Commit().ok());
    // The typed ref resolves the forward object on dereference (§2.1).
    ref<Node> r(*fwd);
    EXPECT_EQ(r->value, 4242u);
  }
  db2.reset();
  std::filesystem::remove_all(dir2);
}

TEST_F(ApiTest, TypedRootHelpers) {
  {
    Transaction txn(db_.get());
    auto a = CreateObject<Node>(db_.get(), file_, type_);
    ASSERT_TRUE(a.ok());
    (*a)->value = 5;
    ASSERT_TRUE(db_->SetRoot("head", a->slot()).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  Transaction txn(db_.get());
  auto head = GetRoot<Node>(db_.get(), "head");
  ASSERT_TRUE(head.ok());
  EXPECT_EQ((*head)->value, 5u);
  EXPECT_TRUE(GetRoot<Node>(db_.get(), "nope").status().IsNotFound());
  ASSERT_TRUE(txn.Commit().ok());
}

}  // namespace
}  // namespace bess
