// Tests for the SegmentMapper: the paper's three-wave faulting, swizzling,
// update detection, corruption prevention, reorganization, and large objects.
#include <gtest/gtest.h>

#include <cstring>

#include "vm/mapper.h"
#include "vm/mem_store.h"

namespace bess {
namespace {

constexpr SegmentId kSegA{1, 0, 0};
constexpr SegmentId kSegB{1, 0, 16};

// A test object shape: two reference fields then a payload word.
struct Node {
  uint64_t next;   // reference at offset 0
  uint64_t other;  // reference at offset 8
  uint64_t value;
};

class RecordingObserver : public AccessObserver {
 public:
  Status OnSegmentRead(SegmentId id) override {
    reads.push_back(id);
    return Status::OK();
  }
  Status OnPageWrite(SegmentId id, PageAddr page) override {
    (void)id;
    writes.push_back(page);
    return Status::OK();
  }
  std::vector<SegmentId> reads;
  std::vector<PageAddr> writes;
};

class MapperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TypeDescriptor node;
    node.name = "Node";
    node.fixed_size = sizeof(Node);
    node.ref_offsets = {0, 8};
    auto idx = types_.Register(node);
    ASSERT_TRUE(idx.ok());
    node_type_ = *idx;
    ResetMapper(SegmentMapper::Options());
  }

  void ResetMapper(SegmentMapper::Options opts) {
    mapper_ = std::make_unique<SegmentMapper>(&store_, &types_, opts);
  }

  // Installs a fresh segment with an 8-page data segment.
  SlottedView Install(SegmentId id, PageId data_first) {
    auto v = mapper_->InstallNewSegment(id, /*file_id=*/0,
                                        /*slotted_page_count=*/2,
                                        /*slot_capacity=*/64,
                                        /*outbound_capacity=*/16,
                                        /*data_area=*/0, data_first,
                                        /*data_page_count=*/8);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return *v;
  }

  InMemoryStore store_;
  TypeTable types_;
  TypeIdx node_type_ = 0;
  std::unique_ptr<SegmentMapper> mapper_;
};

TEST_F(MapperTest, CreateWriteBackRefetch) {
  Install(kSegA, 1000);
  const char payload[] = "the quick brown fox";
  auto slot = mapper_->CreateObject(kSegA, kRawBytesType, sizeof(payload),
                                    payload);
  ASSERT_TRUE(slot.ok()) << slot.status().ToString();
  EXPECT_TRUE((*slot)->in_use());
  EXPECT_EQ((*slot)->size, sizeof(payload));

  ASSERT_TRUE(mapper_->WriteBackAll().ok());
  EXPECT_GT(store_.pages_written(), 0u);

  // Drop all mappings; refetch through the fault path.
  ASSERT_TRUE(mapper_->Reset().ok());
  auto addr = mapper_->SlotAddress(kSegA, 0);
  ASSERT_TRUE(addr.ok());
  Slot* s = *addr;
  // Touching the slot faults the slotted segment in (wave 2)...
  ASSERT_TRUE(s->in_use());
  EXPECT_EQ(s->size, sizeof(payload));
  // ...and touching the data faults the data segment in (wave 3).
  EXPECT_STREQ(reinterpret_cast<const char*>(s->dp), payload);

  auto stats = mapper_->stats();
  EXPECT_EQ(stats.slotted_faults, 1u);
  EXPECT_EQ(stats.data_faults, 1u);
}

TEST_F(MapperTest, FreshSegmentReadableWithoutWriteBack) {
  Install(kSegA, 1000);
  uint64_t v = 0xABCDEF;
  auto slot = mapper_->CreateObject(kSegA, kRawBytesType, 8, &v);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(*reinterpret_cast<uint64_t*>((*slot)->dp), 0xABCDEFull);
}

TEST_F(MapperTest, SwizzleRoundTrip) {
  Install(kSegA, 1000);
  Install(kSegB, 2000);

  // a0 -> b0 (cross segment), a0 -> a1 (intra segment).
  auto a0 = mapper_->CreateObject(kSegA, node_type_, sizeof(Node));
  auto a1 = mapper_->CreateObject(kSegA, node_type_, sizeof(Node));
  auto b0 = mapper_->CreateObject(kSegB, node_type_, sizeof(Node));
  ASSERT_TRUE(a0.ok() && a1.ok() && b0.ok());

  Node* na0 = reinterpret_cast<Node*>((*a0)->dp);
  na0->next = reinterpret_cast<uint64_t>(*b0);
  na0->other = reinterpret_cast<uint64_t>(*a1);
  na0->value = 111;
  reinterpret_cast<Node*>((*a1)->dp)->value = 222;
  reinterpret_cast<Node*>((*b0)->dp)->value = 333;

  ASSERT_TRUE(mapper_->WriteBackAll().ok());
  ASSERT_TRUE(mapper_->Reset().ok());

  // Refetch A and follow the swizzled pointers.
  auto addr = mapper_->SlotAddress(kSegA, 0);
  ASSERT_TRUE(addr.ok());
  Node* n = reinterpret_cast<Node*>((*addr)->dp);
  EXPECT_EQ(n->value, 111u);

  Slot* sb0 = reinterpret_cast<Slot*>(n->next);
  SegmentId owner;
  uint16_t slot_no;
  ASSERT_TRUE(mapper_->ResolveSlotAddress(sb0, &owner, &slot_no).ok());
  EXPECT_EQ(owner, kSegB);
  EXPECT_EQ(slot_no, 0);
  // Following the reference faults B in transparently.
  EXPECT_EQ(reinterpret_cast<Node*>(sb0->dp)->value, 333u);

  Slot* sa1 = reinterpret_cast<Slot*>(n->other);
  EXPECT_EQ(reinterpret_cast<Node*>(sa1->dp)->value, 222u);

  auto stats = mapper_->stats();
  EXPECT_GT(stats.swizzled_refs, 0u);
}

TEST_F(MapperTest, LazyVsGreedyReservation) {
  // Build the two-segment graph and persist it.
  Install(kSegA, 1000);
  Install(kSegB, 2000);
  auto a0 = mapper_->CreateObject(kSegA, node_type_, sizeof(Node));
  auto b0 = mapper_->CreateObject(kSegB, node_type_, sizeof(Node));
  ASSERT_TRUE(a0.ok() && b0.ok());
  reinterpret_cast<Node*>((*a0)->dp)->next = reinterpret_cast<uint64_t>(*b0);
  ASSERT_TRUE(mapper_->WriteBackAll().ok());

  // Lazy (default): reading A's data reserves B but does not fetch it.
  ResetMapper(SegmentMapper::Options());
  {
    auto addr = mapper_->SlotAddress(kSegA, 0);
    ASSERT_TRUE(addr.ok());
    volatile uint64_t sink = reinterpret_cast<Node*>((*addr)->dp)->value;
    (void)sink;
    auto stats = mapper_->stats();
    EXPECT_EQ(stats.slotted_faults, 1u);  // only A
    EXPECT_TRUE(mapper_->IsKnown(kSegB));
    EXPECT_FALSE(mapper_->IsMapped(kSegB));
  }

  // Greedy baseline: the same access also fetches B's slotted segment
  // (and reserves its data range) immediately.
  SegmentMapper::Options greedy;
  greedy.greedy = true;
  ResetMapper(greedy);
  {
    auto addr = mapper_->SlotAddress(kSegA, 0);
    ASSERT_TRUE(addr.ok());
    volatile uint64_t sink = reinterpret_cast<Node*>((*addr)->dp)->value;
    (void)sink;
    EXPECT_TRUE(mapper_->IsMapped(kSegB));
    auto stats = mapper_->stats();
    EXPECT_EQ(stats.slotted_faults, 2u);  // A and B
  }
}

TEST_F(MapperTest, UpdateDetectionRecordsWriteSet) {
  Install(kSegA, 1000);
  auto slot = mapper_->CreateObject(kSegA, kRawBytesType, 16);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(mapper_->WriteBackAll().ok());

  RecordingObserver obs;
  mapper_->set_observer(&obs);

  // Pages are clean and read-protected now; this store must fault exactly
  // once, acquire the "lock", and resume.
  char* obj = reinterpret_cast<char*>((*slot)->dp);
  obj[0] = 'Z';
  obj[1] = 'Q';  // same page: no second fault

  ASSERT_EQ(obs.writes.size(), 1u);
  EXPECT_EQ(obs.writes[0].page, 1000u);
  auto stats = mapper_->stats();
  EXPECT_EQ(stats.write_faults, 1u);

  std::vector<PageImage> dirty;
  ASSERT_TRUE(mapper_->CollectDirty(&dirty).ok());
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0].page, 1000u);
  EXPECT_EQ(dirty[0].bytes[0], 'Z');
  mapper_->set_observer(nullptr);
}

TEST_F(MapperTest, CleanPagesProduceNoDirtyImages) {
  Install(kSegA, 1000);
  auto slot = mapper_->CreateObject(kSegA, kRawBytesType, 16);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(mapper_->WriteBackAll().ok());
  // Reads alone must not dirty anything.
  volatile char c = reinterpret_cast<char*>((*slot)->dp)[3];
  (void)c;
  std::vector<PageImage> dirty;
  ASSERT_TRUE(mapper_->CollectDirty(&dirty).ok());
  EXPECT_TRUE(dirty.empty());
}

TEST_F(MapperTest, CorruptionPreventionKillsStrayWrites) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Install(kSegA, 1000);
  auto slot = mapper_->CreateObject(kSegA, kRawBytesType, 16);
  ASSERT_TRUE(slot.ok());
  // A stray application write into a write-protected control structure is
  // detected by the hardware at the instruction, before corruption spreads.
  EXPECT_DEATH({ (*slot)->size = 0xBAD; }, "");
}

TEST_F(MapperTest, RelocateDataPreservesReferences) {
  Install(kSegA, 1000);
  auto a0 = mapper_->CreateObject(kSegA, node_type_, sizeof(Node));
  auto a1 = mapper_->CreateObject(kSegA, node_type_, sizeof(Node));
  ASSERT_TRUE(a0.ok() && a1.ok());
  Node* n0 = reinterpret_cast<Node*>((*a0)->dp);
  n0->next = reinterpret_cast<uint64_t>(*a1);
  n0->value = 42;
  reinterpret_cast<Node*>((*a1)->dp)->value = 43;
  ASSERT_TRUE(mapper_->WriteBackAll().ok());

  // Hold a raw reference (as user code would, via ref<T>).
  Slot* held = *a0;

  // Move the data segment to a different disk location and size.
  ASSERT_TRUE(mapper_->RelocateData(kSegA, /*area=*/0, /*first=*/3000,
                                    /*pages=*/16)
                  .ok());
  ASSERT_TRUE(mapper_->WriteBackAll().ok());

  // The held reference still works without any fixup.
  Node* n = reinterpret_cast<Node*>(held->dp);
  EXPECT_EQ(n->value, 42u);
  EXPECT_EQ(reinterpret_cast<Node*>(reinterpret_cast<Slot*>(n->next)->dp)
                ->value,
            43u);

  // After a full refetch, data comes from the new location.
  ASSERT_TRUE(mapper_->Reset().ok());
  auto addr = mapper_->SlotAddress(kSegA, 0);
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(reinterpret_cast<Node*>((*addr)->dp)->value, 42u);
  auto view = mapper_->View(kSegA);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->header()->data_first_page, 3000u);
  EXPECT_EQ(view->header()->data_page_count, 16u);
}

TEST_F(MapperTest, CompactDataSqueezesHoles) {
  Install(kSegA, 1000);
  std::string big(600, 'a');
  auto a0 = mapper_->CreateObject(kSegA, kRawBytesType, 600, big.data());
  auto a1 = mapper_->CreateObject(kSegA, kRawBytesType, 600, big.data());
  auto a2 = mapper_->CreateObject(kSegA, kRawBytesType, 600, big.data());
  ASSERT_TRUE(a0.ok() && a1.ok() && a2.ok());
  memset(reinterpret_cast<void*>((*a2)->dp), 'c', 600);

  SegmentId id;
  uint16_t a1_no;
  ASSERT_TRUE(mapper_->ResolveSlotAddress(*a1, &id, &a1_no).ok());
  ASSERT_TRUE(mapper_->DeleteObject(kSegA, a1_no).ok());

  auto view = mapper_->View(kSegA);
  ASSERT_TRUE(view.ok());
  const uint32_t used_before = view->header()->data_used;
  EXPECT_GT(view->header()->data_dead, 0u);

  ASSERT_TRUE(mapper_->CompactData(kSegA).ok());
  EXPECT_LT(view->header()->data_used, used_before);
  EXPECT_EQ(view->header()->data_dead, 0u);

  // Objects intact, references (slots) unaffected.
  EXPECT_EQ(reinterpret_cast<char*>((*a0)->dp)[0], 'a');
  EXPECT_EQ(reinterpret_cast<char*>((*a2)->dp)[0], 'c');

  // Round-trips through disk.
  ASSERT_TRUE(mapper_->WriteBackAll().ok());
  ASSERT_TRUE(mapper_->Reset().ok());
  auto addr = mapper_->SlotAddress(kSegA, 2);
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(reinterpret_cast<char*>((*addr)->dp)[599], 'c');
}

TEST_F(MapperTest, TransparentLargeObject) {
  Install(kSegA, 1000);
  // A 3-page (12 KiB) object in its own disk segment at page 5000.
  const uint32_t size = 3 * kPageSize;
  auto slot = mapper_->CreateLargeObject(kSegA, kRawBytesType, size,
                                         /*area=*/0, /*first=*/5000,
                                         /*pages=*/3);
  ASSERT_TRUE(slot.ok()) << slot.status().ToString();
  EXPECT_TRUE((*slot)->flags & kSlotLargeObject);

  char* data = reinterpret_cast<char*>((*slot)->dp);
  for (uint32_t i = 0; i < size; ++i) data[i] = static_cast<char>(i % 251);
  ASSERT_TRUE(mapper_->WriteBackAll().ok());
  ASSERT_TRUE(mapper_->Reset().ok());

  auto addr = mapper_->SlotAddress(kSegA, 0);
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ((*addr)->size, size);
  // Access transparently, as if it were a small object.
  char* back = reinterpret_cast<char*>((*addr)->dp);
  for (uint32_t i = 0; i < size; i += 997) {
    ASSERT_EQ(back[i], static_cast<char>(i % 251)) << "offset " << i;
  }

  // Page-granular dirtying: touch one page, expect one dirty image.
  back[kPageSize + 7] = 'X';
  std::vector<PageImage> dirty;
  ASSERT_TRUE(mapper_->CollectDirty(&dirty).ok());
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0].page, 5001u);
}

TEST_F(MapperTest, DeleteObjectReusesSlotWithFreshUniquifier) {
  Install(kSegA, 1000);
  auto a0 = mapper_->CreateObject(kSegA, kRawBytesType, 32);
  ASSERT_TRUE(a0.ok());
  const uint32_t uniq = (*a0)->uniquifier;
  ASSERT_TRUE(mapper_->DeleteObject(kSegA, 0).ok());
  auto a1 = mapper_->CreateObject(kSegA, kRawBytesType, 32);
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(*a0, *a1);  // same slot address
  EXPECT_GT((*a1)->uniquifier, uniq);
}

TEST_F(MapperTest, DiscardDirtyDropsUncommittedChanges) {
  Install(kSegA, 1000);
  auto slot = mapper_->CreateObject(kSegA, kRawBytesType, 16);
  ASSERT_TRUE(slot.ok());
  char* obj = reinterpret_cast<char*>((*slot)->dp);
  obj[0] = 'A';
  ASSERT_TRUE(mapper_->WriteBackAll().ok());

  // Uncommitted change...
  obj[0] = 'B';
  // ...rolled back by dropping dirty segments.
  ASSERT_TRUE(mapper_->DiscardDirty().ok());
  auto addr = mapper_->SlotAddress(kSegA, 0);
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(reinterpret_cast<char*>((*addr)->dp)[0], 'A');
}

TEST_F(MapperTest, EvictKeepsPointersValidViaRefault) {
  Install(kSegA, 1000);
  auto slot = mapper_->CreateObject(kSegA, kRawBytesType, 16);
  ASSERT_TRUE(slot.ok());
  char* obj = reinterpret_cast<char*>((*slot)->dp);
  obj[0] = 'A';
  ASSERT_TRUE(mapper_->WriteBackAll().ok());

  Slot* held = *slot;
  ASSERT_TRUE(mapper_->Evict(kSegA).ok());
  EXPECT_FALSE(mapper_->IsMapped(kSegA));
  // The held pointer refaults transparently.
  EXPECT_EQ(reinterpret_cast<char*>(held->dp)[0], 'A');
  EXPECT_TRUE(mapper_->IsMapped(kSegA));
}

TEST_F(MapperTest, EvictRefusesDirtySegments) {
  Install(kSegA, 1000);
  ASSERT_TRUE(mapper_->CreateObject(kSegA, kRawBytesType, 16).ok());
  EXPECT_TRUE(mapper_->Evict(kSegA).IsBusy());
  EXPECT_TRUE(mapper_->Evict(kSegA, /*drop_dirty=*/true).ok());
}

TEST_F(MapperTest, SoftwareModeRequiresExplicitMarkDirty) {
  SegmentMapper::Options opts;
  opts.detect_writes = false;  // the Exodus/early-EOS software approach
  ResetMapper(opts);
  Install(kSegA, 1000);
  auto slot = mapper_->CreateObject(kSegA, kRawBytesType, 16);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(mapper_->WriteBackAll().ok());

  char* obj = reinterpret_cast<char*>((*slot)->dp);
  obj[0] = 'W';  // no fault, no record: the classic lost-update hazard
  std::vector<PageImage> dirty;
  ASSERT_TRUE(mapper_->CollectDirty(&dirty).ok());
  EXPECT_TRUE(dirty.empty());  // update would be LOST without the call

  ASSERT_TRUE(mapper_->MarkDirty(obj, 1).ok());
  dirty.clear();
  ASSERT_TRUE(mapper_->CollectDirty(&dirty).ok());
  EXPECT_EQ(dirty.size(), 1u);
}

TEST_F(MapperTest, StoreFailureSurfacesAtExplicitFetch) {
  Install(kSegA, 1000);
  ASSERT_TRUE(mapper_->CreateObject(kSegA, kRawBytesType, 16).ok());
  ASSERT_TRUE(mapper_->WriteBackAll().ok());
  ASSERT_TRUE(mapper_->Reset().ok());

  store_.FailNextFetches(1);
  auto view = mapper_->FetchSlottedNow(kSegA);
  EXPECT_FALSE(view.ok());
  // The failure is transient: the next fetch succeeds.
  auto view2 = mapper_->FetchSlottedNow(kSegA);
  EXPECT_TRUE(view2.ok()) << view2.status().ToString();
}

}  // namespace
}  // namespace bess
