// Secondary-index integration tests (DESIGN.md §14): lifecycle through the
// Database catalog, put/get/delete/scan correctness across node splits,
// durability across reopen, transactional atomicity (commit/abort of mixed
// object+index transactions), structural validation of large workloads, and
// the fault-schedule paths — bit-rot on lazily written index pages repaired
// byte-exact from WAL images, and injected read errors surfacing cleanly.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bess/bess.h"
#include "index/index.h"
#include "object/database.h"
#include "obs/stats.h"
#include "os/async_io.h"
#include "os/fault_injection.h"
#include "storage/storage_area.h"
#include "util/random.h"

namespace bess {
namespace {

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%05d", i);
  return buf;
}

// A value long enough that a few hundred entries overflow one leaf — splits
// and root growth happen at small populations.
std::string Value(int i, size_t fill = 120) {
  std::string v = "v" + std::to_string(i) + "|";
  v.append(fill, static_cast<char>('a' + i % 26));
  return v;
}

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bess_index_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    db_.reset();
    fault::FaultRegistry::Instance().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  Database::Options Opts(bool create) {
    Database::Options o;
    o.dir = dir_.string();
    o.create = create;
    return o;
  }

  void Create() {
    auto db = Database::Open(Opts(true));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  void Reopen() {
    db_.reset();
    auto db = Database::Open(Opts(false));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  // Collects [lo, hi] into a map via the handle's scan.
  std::map<std::string, std::string> ScanAll(const Index& ix,
                                             const std::string& lo = "",
                                             const std::string& hi = "") {
    std::map<std::string, std::string> out;
    Status s = ix.Scan(lo, hi, [&](Slice k, Slice v) {
      out[k.ToString()] = v.ToString();
      return Status::OK();
    });
    EXPECT_TRUE(s.ok()) << s.ToString();
    return out;
  }

  std::filesystem::path dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(IndexTest, CreateOpenDropLifecycle) {
  Create();
  auto ix = db_->CreateIndex("by_name");
  ASSERT_TRUE(ix.ok()) << ix.status().ToString();
  EXPECT_TRUE(ix->valid());
  EXPECT_EQ(ix->name(), "by_name");

  // Duplicate names are rejected; unknown names do not open.
  EXPECT_FALSE(db_->CreateIndex("by_name").ok());
  EXPECT_FALSE(db_->OpenIndex("nope").ok());

  auto ix2 = db_->CreateIndex("by_age");
  ASSERT_TRUE(ix2.ok());
  auto names = db_->ListIndexes();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "by_age");
  EXPECT_EQ(names[1], "by_name");

  // Handles over the same index share one runtime: a write through one is
  // visible through the other immediately.
  auto again = db_->OpenIndex("by_name");
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(ix->Put(nullptr, "alice", "1").ok());
  std::string v;
  auto found = again->Get("alice", &v);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(*found);
  EXPECT_EQ(v, "1");

  ASSERT_TRUE(db_->DropIndex("by_name").ok());
  EXPECT_FALSE(db_->OpenIndex("by_name").ok());
  EXPECT_FALSE(db_->DropIndex("by_name").ok());  // already gone
  EXPECT_EQ(db_->ListIndexes().size(), 1u);

  // The name is reusable; the new index starts empty (fresh area).
  auto fresh = db_->CreateIndex("by_name");
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  auto refound = fresh->Get("alice", nullptr);
  ASSERT_TRUE(refound.ok());
  EXPECT_FALSE(*refound);
}

TEST_F(IndexTest, KeyAndValueLimits) {
  Create();
  auto ix = db_->CreateIndex("lim");
  ASSERT_TRUE(ix.ok());
  EXPECT_FALSE(ix->Put(nullptr, "", "v").ok());
  EXPECT_FALSE(ix->Put(nullptr, std::string(kIndexMaxKeyLen + 1, 'k'), "v").ok());
  EXPECT_FALSE(
      ix->Put(nullptr, "k", std::string(kIndexMaxValLen + 1, 'v')).ok());
  // Boundary sizes and the empty value are legal.
  const std::string maxk(kIndexMaxKeyLen, 'k');
  const std::string maxv(kIndexMaxValLen, 'v');
  ASSERT_TRUE(ix->Put(nullptr, maxk, maxv).ok());
  ASSERT_TRUE(ix->Put(nullptr, "empty", "").ok());
  std::string v;
  auto found = ix->Get(maxk, &v);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(*found);
  EXPECT_EQ(v, maxv);
  found = ix->Get("empty", &v);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(*found);
  EXPECT_EQ(v, "");
}

TEST_F(IndexTest, PutGetDeleteScanAcrossSplits) {
  Create();
  const Stats before = Snapshot();
  auto ixr = db_->CreateIndex("big");
  ASSERT_TRUE(ixr.ok());
  Index ix = *ixr;

  // Enough volume for several levels: ~1500 × ~130 bytes ≈ 50+ leaves.
  std::map<std::string, std::string> shadow;
  for (int i = 0; i < 1500; ++i) {
    const int k = (i * 7919) % 1500;  // non-sequential insert order
    ASSERT_TRUE(ix.Put(nullptr, Key(k), Value(k)).ok()) << "i=" << i;
    shadow[Key(k)] = Value(k);
  }
  // Overwrites go through the replace path (iold carried for undo).
  for (int k = 0; k < 1500; k += 3) {
    ASSERT_TRUE(ix.Put(nullptr, Key(k), Value(k + 10000)).ok());
    shadow[Key(k)] = Value(k + 10000);
  }
  // Deletes: present and absent keys.
  for (int k = 1; k < 1500; k += 5) {
    bool existed = false;
    ASSERT_TRUE(ix.Delete(nullptr, Key(k), &existed).ok());
    EXPECT_TRUE(existed) << k;
    shadow.erase(Key(k));
  }
  bool existed = true;
  ASSERT_TRUE(ix.Delete(nullptr, "zzz-absent", &existed).ok());
  EXPECT_FALSE(existed);

  // Point lookups agree with the shadow map everywhere.
  for (int k = 0; k < 1500; ++k) {
    std::string v;
    auto found = ix.Get(Key(k), &v);
    ASSERT_TRUE(found.ok());
    auto it = shadow.find(Key(k));
    ASSERT_EQ(*found, it != shadow.end()) << Key(k);
    if (*found) {
      EXPECT_EQ(v, it->second);
    }
  }

  // Full scan and sub-range scans deliver exactly the shadow contents in
  // key order.
  EXPECT_EQ(ScanAll(ix), shadow);
  const std::string lo = Key(200), hi = Key(1100);
  std::map<std::string, std::string> want(shadow.lower_bound(lo),
                                          shadow.upper_bound(hi));
  EXPECT_EQ(ScanAll(ix, lo, hi), want);

  // The IndexRange convenience returns ordered pairs.
  auto range = IndexRange(ix, Key(0), Key(20));
  ASSERT_TRUE(range.ok());
  const std::map<std::string, std::string> got(range->begin(), range->end());
  const std::map<std::string, std::string> head(shadow.lower_bound(Key(0)),
                                                shadow.upper_bound(Key(20)));
  EXPECT_EQ(got, head);

#if BESS_METRICS_ENABLED
  const Stats delta = StatsDelta(before, Snapshot());
  EXPECT_GT(delta.counter("index.smo"), 0u) << "no split ever happened";
  EXPECT_GE(delta.counter("index.root_grow"), 1u);
  EXPECT_GT(delta.counter("index.scan"), 0u);
#endif
}

TEST_F(IndexTest, EntriesSurviveReopen) {
  Create();
  auto ix = db_->CreateIndex("persist");
  ASSERT_TRUE(ix.ok());
  std::map<std::string, std::string> shadow;
  for (int k = 0; k < 600; ++k) {
    ASSERT_TRUE(ix->Put(nullptr, Key(k), Value(k)).ok());
    shadow[Key(k)] = Value(k);
  }
  for (int k = 0; k < 600; k += 4) {
    ASSERT_TRUE(ix->Delete(nullptr, Key(k)).ok());
    shadow.erase(Key(k));
  }

  Reopen();
  auto names = db_->ListIndexes();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "persist");
  auto re = db_->OpenIndex("persist");
  ASSERT_TRUE(re.ok()) << re.status().ToString();
  EXPECT_EQ(ScanAll(*re), shadow);
}

TEST_F(IndexTest, AbortUndoesMixedObjectAndIndexWrites) {
  Create();
  auto file = db_->CreateFile("f");
  ASSERT_TRUE(file.ok());
  auto ixr = db_->CreateIndex("mix");
  ASSERT_TRUE(ixr.ok());
  Index ix = *ixr;

  // Committed baseline: one object and two index entries.
  const uint64_t committed = 7;
  {
    TxnGuard txn(db_.get());
    ASSERT_TRUE(txn.active());
    auto s = db_->CreateObject(*file, kRawBytesType, sizeof(uint64_t),
                               &committed);
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(db_->SetRoot("obj", *s).ok());
    ASSERT_TRUE(ix.Put(txn.handle(), "keep", "old").ok());
    ASSERT_TRUE(ix.Put(txn.handle(), "victim", "doomed").ok());
    ASSERT_TRUE(txn.Commit().ok());
  }

  // One transaction mutates the object AND the index three ways — insert,
  // overwrite, delete — then aborts. Everything must come back.
  {
    TxnGuard txn(db_.get());
    ASSERT_TRUE(txn.active());
    auto obj = db_->GetRoot("obj");
    ASSERT_TRUE(obj.ok());
    *reinterpret_cast<uint64_t*>((*obj)->dp) = 99;
    ASSERT_TRUE(ix.Put(txn.handle(), "fresh", "uncommitted").ok());
    ASSERT_TRUE(ix.Put(txn.handle(), "keep", "overwritten").ok());
    bool existed = false;
    ASSERT_TRUE(ix.Delete(txn.handle(), "victim", &existed).ok());
    EXPECT_TRUE(existed);

    // Uncommitted index writes are visible before the abort (§14 reads see
    // the latest latched state).
    std::string v;
    auto found = ix.Get("fresh", &v);
    ASSERT_TRUE(found.ok());
    EXPECT_TRUE(*found);
    ASSERT_TRUE(txn.Abort().ok());
  }

  {
    TxnGuard txn(db_.get());
    ASSERT_TRUE(txn.active());
    auto obj = db_->GetRoot("obj");
    ASSERT_TRUE(obj.ok());
    EXPECT_EQ(*reinterpret_cast<const uint64_t*>((*obj)->dp), committed);
    ASSERT_TRUE(txn.Commit().ok());
  }
  std::string v;
  auto found = ix.Get("fresh", &v);
  ASSERT_TRUE(found.ok());
  EXPECT_FALSE(*found) << "aborted insert survived";
  found = ix.Get("keep", &v);
  ASSERT_TRUE(found.ok());
  ASSERT_TRUE(*found);
  EXPECT_EQ(v, "old") << "aborted overwrite survived";
  found = ix.Get("victim", &v);
  ASSERT_TRUE(found.ok());
  ASSERT_TRUE(*found) << "aborted delete survived";
  EXPECT_EQ(v, "doomed");

  // And the state is durable: reopen sees the same picture.
  Reopen();
  auto re = db_->OpenIndex("mix");
  ASSERT_TRUE(re.ok());
  auto all = ScanAll(*re);
  EXPECT_EQ(all, (std::map<std::string, std::string>{{"keep", "old"},
                                                     {"victim", "doomed"}}));
}

TEST_F(IndexTest, CommittedTransactionIsDurableAcrossReopen) {
  Create();
  auto ixr = db_->CreateIndex("txn");
  ASSERT_TRUE(ixr.ok());
  Index ix = *ixr;
  {
    TxnGuard txn(db_.get());
    ASSERT_TRUE(txn.active());
    for (int k = 0; k < 40; ++k) {
      ASSERT_TRUE(ix.Put(txn.handle(), Key(k), Value(k)).ok());
    }
    ASSERT_TRUE(txn.Commit().ok());
  }
  Reopen();
  auto re = db_->OpenIndex("txn");
  ASSERT_TRUE(re.ok());
  for (int k = 0; k < 40; ++k) {
    std::string v;
    auto found = re->Get(Key(k), &v);
    ASSERT_TRUE(found.ok());
    ASSERT_TRUE(*found) << Key(k);
    EXPECT_EQ(v, Value(k));
  }
}

// Standalone runtime over its own area, no WAL: structural validation of a
// big mixed workload, persistence through FlushDirty, and write coalescing
// (the bgwriter's key-sorted batches merge into multi-page device writes —
// AioStats::write_runs < writes).
TEST_F(IndexTest, StandaloneValidateAndWriteCoalescing) {
  std::filesystem::create_directories(dir_);
  auto area = StorageArea::Create((dir_ / "ix.bess").string(), 1);
  ASSERT_TRUE(area.ok());
  ASSERT_TRUE(BTreeIndex::Format(area->get()).ok());

  BTreeIndex::Options o;
  o.cache_frames = 64;  // far smaller than the tree: eviction + refetch
  o.enable_bgwriter = true;
  o.use_async = true;
  auto idxr = BTreeIndex::Open(area->get(), o);
  ASSERT_TRUE(idxr.ok()) << idxr.status().ToString();
  auto idx = std::move(*idxr);

  const BTreeIndex::RecordLogger unlogged;  // null: no WAL in this harness
  std::map<std::string, std::string> shadow;
  Random rng(0x1DE4);
  for (int i = 0; i < 5000; ++i) {
    const int k = static_cast<int>(rng.Uniform(3000));
    if (rng.Uniform(10) < 7 || shadow.count(Key(k)) == 0) {
      ASSERT_TRUE(idx->Put(Key(k), Value(k + i % 100), unlogged).ok());
      shadow[Key(k)] = Value(k + i % 100);
    } else {
      bool existed = false;
      ASSERT_TRUE(idx->Delete(Key(k), &existed, unlogged).ok());
      EXPECT_TRUE(existed);
      shadow.erase(Key(k));
    }
  }

  uint64_t entries = 0;
  ASSERT_TRUE(idx->Validate(&entries).ok());
  EXPECT_EQ(entries, shadow.size());

  std::map<std::string, std::string> got;
  ASSERT_TRUE(idx->Scan("", "", [&](Slice k, Slice v) {
                   got[k.ToString()] = v.ToString();
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(got, shadow);

  ASSERT_TRUE(idx->FlushDirty().ok());
  const aio::AioStats aio = idx->async_io()->stats();
  EXPECT_GT(aio.writes, 0u);
  EXPECT_GT(aio.write_runs, 0u);
  EXPECT_LT(aio.write_runs, aio.writes)
      << "bgwriter batches never coalesced into multi-page runs";
  ASSERT_TRUE((*area)->Sync().ok());

  // Reopen the persisted tree cold and re-validate.
  idx.reset();
  BTreeIndex::Options cold;
  cold.enable_bgwriter = false;
  cold.use_async = false;
  auto re = BTreeIndex::Open(area->get(), cold);
  ASSERT_TRUE(re.ok()) << re.status().ToString();
  entries = 0;
  ASSERT_TRUE((*re)->Validate(&entries).ok());
  EXPECT_EQ(entries, shadow.size());
  for (const auto& [k, v] : shadow) {
    std::string val;
    auto found = (*re)->Get(k, &val);
    ASSERT_TRUE(found.ok());
    ASSERT_TRUE(*found) << k;
    EXPECT_EQ(val, v);
  }
}

// Bit-rot on lazily written index pages (steal/no-force: the bgwriter, not
// commit, writes them) must be repaired byte-exact from the WAL's logical
// record images — kIndexPut/kIndexDelete carry the leaf, kIndexSmo carries
// every page a split touched.
TEST_F(IndexTest, BitRotOnIndexPagesRepairsFromWalImages) {
  Create();
  auto ixr = db_->CreateIndex("rot");
  ASSERT_TRUE(ixr.ok());
  Index ix = *ixr;
  for (int k = 0; k < 400; ++k) {
    ASSERT_TRUE(ix.Put(nullptr, Key(k), Value(k)).ok());
  }

  // Arm the lying disk, then dirty a spread of leaves: every write-back in
  // the window persists a flipped bit under a trailer stamped for the
  // intended bytes. Index micro-commits force only the log, so the armed
  // point sees exactly the index write-backs.
  const Stats before = Snapshot();
  auto& faults = fault::FaultRegistry::Instance();
  const uint64_t hits_before = faults.hits("page.bitrot");
  fault::FaultSpec rot;
  rot.action = fault::FaultAction::kBitRot;
  rot.probability = 1.0;
  rot.seed = 0xB17;
  faults.Arm("page.bitrot", rot);
  for (int k = 0; k < 400; k += 8) {
    ASSERT_TRUE(ix.Put(nullptr, Key(k), Value(k + 5000)).ok());
  }
  // Let the bgwriter (2ms interval) drain the dirty frames through the
  // armed point.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  faults.DisarmAll();
  const uint64_t flips = faults.hits("page.bitrot") - hits_before;
  ASSERT_GT(flips, 0u) << "no index write-back happened under the fault";

  // Scrub while the WAL still holds this session's records: every flip is
  // found and repaired; none may quarantine.
  auto report = db_->Scrub();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->verify_failures, 0u);
  EXPECT_EQ(report->repaired, report->verify_failures)
      << "index page flip not repaired despite live WAL images";
  EXPECT_EQ(report->quarantined, 0u);
#if BESS_METRICS_ENABLED
  const Stats delta = StatsDelta(before, Snapshot());
  EXPECT_GT(delta.counter("page.repair.ok"), 0u);
  EXPECT_EQ(delta.counter("page.quarantined"), 0u);
#endif

  // Repaired pages read back the intended values.
  for (int k = 0; k < 400; ++k) {
    std::string v;
    auto found = ix.Get(Key(k), &v);
    ASSERT_TRUE(found.ok()) << found.status().ToString();
    ASSERT_TRUE(*found) << Key(k);
    EXPECT_EQ(v, k % 8 == 0 ? Value(k + 5000) : Value(k));
  }
}

// Injected I/O errors on the read path surface as clean Status failures —
// no crash, no corruption — and the index answers again once the fault
// clears.
TEST_F(IndexTest, InjectedReadErrorsFailCleanlyAndRecover) {
  Create();
  auto ix = db_->CreateIndex("ioerr");
  ASSERT_TRUE(ix.ok());
  for (int k = 0; k < 500; ++k) {
    ASSERT_TRUE(ix->Put(nullptr, Key(k), Value(k)).ok());
  }
  // Cold cache: reopen so every Get below must hit the disk.
  Reopen();
  auto re = db_->OpenIndex("ioerr");
  ASSERT_TRUE(re.ok());

  auto& faults = fault::FaultRegistry::Instance();
  fault::FaultSpec fail;
  fail.action = fault::FaultAction::kFail;
  fail.code = StatusCode::kIOError;
  fail.message = "injected read error";
  fail.count = 4;  // covers the descent's page reads, then self-disarms
  faults.Arm("file.readat", fail);
  std::string v;
  auto hit = re->Get(Key(123), &v);
  faults.DisarmAll();
  EXPECT_FALSE(hit.ok()) << "read under injected I/O error did not fail";

  // The fault was transient; nothing was poisoned or cached wrong.
  auto again = re->Get(Key(123), &v);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_TRUE(*again);
  EXPECT_EQ(v, Value(123));
  uint64_t n = 0;
  ASSERT_TRUE(re->Scan("", "", [&](Slice, Slice) {
                   ++n;
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(n, 500u);
}

}  // namespace
}  // namespace bess
