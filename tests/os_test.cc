// Tests for the OS substrate: files, virtual memory, shared memory,
// latches, message sockets, and the fault dispatcher registry.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <thread>

#include "os/fault_dispatcher.h"
#include "os/file.h"
#include "os/latch.h"
#include "os/shm.h"
#include "os/socket.h"
#include "os/vmem.h"
#include "util/config.h"

namespace bess {
namespace {

class OsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bess_os_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& n) { return (dir_ / n).string(); }
  std::filesystem::path dir_;
};

TEST_F(OsTest, FileReadWriteRoundTrip) {
  auto f = File::Open(Path("f"));
  ASSERT_TRUE(f.ok());
  const std::string data = "hello bess";
  ASSERT_TRUE(f->WriteAt(100, data.data(), data.size()).ok());
  std::string back(data.size(), '\0');
  ASSERT_TRUE(f->ReadAt(100, back.data(), back.size()).ok());
  EXPECT_EQ(back, data);
  auto size = f->Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 100 + data.size());
}

TEST_F(OsTest, FileShortReadIsError) {
  auto f = File::Open(Path("f"));
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->WriteAt(0, "abc", 3).ok());
  char buf[10];
  EXPECT_TRUE(f->ReadAt(0, buf, 10).IsIOError());
  EXPECT_TRUE(f->ReadAt(100, buf, 1).IsIOError());
}

TEST_F(OsTest, FileAppendTruncateRemove) {
  auto f = File::Open(Path("f"));
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f->Append("one", 3).ok());
  ASSERT_TRUE(f->Append("two", 3).ok());
  EXPECT_EQ(*f->Size(), 6u);
  ASSERT_TRUE(f->Truncate(3).ok());
  EXPECT_EQ(*f->Size(), 3u);
  f->Close();
  EXPECT_TRUE(File::Exists(Path("f")));
  ASSERT_TRUE(File::Remove(Path("f")).ok());
  EXPECT_FALSE(File::Exists(Path("f")));
  EXPECT_TRUE(File::Remove(Path("f")).IsNotFound());
  EXPECT_FALSE(File::Open(Path("nodir/f"), /*create=*/false).ok());
}

TEST_F(OsTest, VmemReserveCommitProtect) {
  auto mem = vmem::Reserve(4 * kPageSize);
  ASSERT_TRUE(mem.ok());
  char* p = static_cast<char*>(*mem);
  ASSERT_TRUE(vmem::CommitAnonymous(p, kPageSize, vmem::kReadWrite).ok());
  p[0] = 'x';
  EXPECT_EQ(p[0], 'x');
  ASSERT_TRUE(vmem::Protect(p, kPageSize, vmem::kRead).ok());
  EXPECT_EQ(p[0], 'x');  // reads still fine
  ASSERT_TRUE(vmem::Release(*mem, 4 * kPageSize).ok());
}

TEST_F(OsTest, VmemCountersTrack) {
  vmem::ResetCounters();
  auto mem = vmem::Reserve(kPageSize);
  ASSERT_TRUE(mem.ok());
  (void)vmem::CommitAnonymous(*mem, kPageSize, vmem::kReadWrite);
  (void)vmem::Protect(*mem, kPageSize, vmem::kRead);
  auto counters = vmem::GetCounters();
  EXPECT_EQ(counters.reserve_calls, 1u);
  EXPECT_EQ(counters.commit_calls, 1u);
  EXPECT_EQ(counters.protect_calls, 1u);
  (void)vmem::Release(*mem, kPageSize);
}

TEST_F(OsTest, SharedMemoryCreateAttachVisibility) {
  const std::string name = "/bess_os_shm_" + std::to_string(::getpid());
  auto a = SharedMemory::Create(name, 2 * kPageSize);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  memcpy(a->base(), "cross", 5);
  auto b = SharedMemory::Attach(name);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(memcmp(b->base(), "cross", 5), 0);
  memcpy(static_cast<char*>(b->base()) + 64, "back", 4);
  EXPECT_EQ(memcmp(static_cast<char*>(a->base()) + 64, "back", 4), 0);
  ASSERT_TRUE(a->Unlink().ok());
  EXPECT_FALSE(SharedMemory::Attach(name).ok());
}

TEST_F(OsTest, LatchMutualExclusion) {
  Latch latch;
  EXPECT_FALSE(latch.is_locked());
  latch.Lock();
  EXPECT_TRUE(latch.is_locked());
  EXPECT_EQ(latch.holder_pid(), static_cast<uint32_t>(::getpid()));
  EXPECT_FALSE(latch.TryLock());
  latch.Unlock();
  EXPECT_TRUE(latch.TryLock());
  latch.Unlock();

  // Contention: counter stays consistent under 4 threads.
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        LatchGuard guard(latch);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 8000);
}

TEST_F(OsTest, LatchBreakOrphaned) {
  Latch latch;
  latch.Lock();
  latch.BreakOrphaned();
  EXPECT_FALSE(latch.is_locked());
  EXPECT_TRUE(latch.TryLock());
}

TEST_F(OsTest, SocketFramingRoundTrip) {
  MsgSocket a, b;
  ASSERT_TRUE(MsgSocket::Pair(&a, &b).ok());
  std::string big(100000, 'z');
  ASSERT_TRUE(a.Send(42, big).ok());
  ASSERT_TRUE(a.Send(7, "").ok());
  auto m1 = b.Recv();
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(m1->type, 42);
  EXPECT_EQ(m1->payload, big);
  auto m2 = b.Recv();
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m2->type, 7);
  EXPECT_TRUE(m2->payload.empty());
}

TEST_F(OsTest, SocketPeerCloseIsProtocolError) {
  MsgSocket a, b;
  ASSERT_TRUE(MsgSocket::Pair(&a, &b).ok());
  a.Close();
  EXPECT_TRUE(b.Recv().status().code() == StatusCode::kProtocol);
}

TEST_F(OsTest, SocketRecvTimeout) {
  MsgSocket a, b;
  ASSERT_TRUE(MsgSocket::Pair(&a, &b).ok());
  auto r = b.RecvTimeout(50);
  EXPECT_TRUE(r.status().IsBusy());
  ASSERT_TRUE(a.Send(1, "x").ok());
  auto r2 = b.RecvTimeout(1000);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->payload, "x");
}

TEST_F(OsTest, ListenerAcceptConnect) {
  auto listener = MsgListener::Listen(Path("s.sock"));
  ASSERT_TRUE(listener.ok());
  std::thread connector([&] {
    auto c = MsgSocket::Connect(Path("s.sock"));
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c->Send(9, "ping").ok());
    auto reply = c->Recv();
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->payload, "pong");
  });
  auto server_side = listener->Accept();
  ASSERT_TRUE(server_side.ok());
  auto msg = server_side->Recv();
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg->payload, "ping");
  ASSERT_TRUE(server_side->Send(9, "pong").ok());
  connector.join();
}

TEST_F(OsTest, AcceptTimeoutReturnsBusy) {
  auto listener = MsgListener::Listen(Path("t.sock"));
  ASSERT_TRUE(listener.ok());
  auto r = listener->AcceptTimeout(50);
  EXPECT_TRUE(r.status().IsBusy());
}

TEST_F(OsTest, SimulatedLatencySlowsSends) {
  MsgSocket a, b;
  ASSERT_TRUE(MsgSocket::Pair(&a, &b).ok());
  a.set_simulated_latency_us(20000);  // 20 ms
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(a.Send(1, "x").ok());
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_GE(elapsed, 0.015);
}

class CountingOwner : public FaultRangeOwner {
 public:
  bool OnFault(void* addr, bool) override {
    ++faults;
    return vmem::CommitAnonymous(
               reinterpret_cast<void*>(
                   reinterpret_cast<uintptr_t>(addr) & ~(kPageSize - 1)),
               kPageSize, vmem::kReadWrite)
        .ok();
  }
  int faults = 0;
};

TEST_F(OsTest, FaultDispatcherRoutesAndUnregisters) {
  auto mem = vmem::Reserve(4 * kPageSize);
  ASSERT_TRUE(mem.ok());
  CountingOwner owner;
  int id = FaultDispatcher::Instance().RegisterRange(*mem, 4 * kPageSize,
                                                     &owner);
  ASSERT_GE(id, 0);
  EXPECT_EQ(FaultDispatcher::Instance().FindOwner(*mem), &owner);
  EXPECT_EQ(FaultDispatcher::Instance().FindOwner(&owner), nullptr);

  char* p = static_cast<char*>(*mem);
  p[10] = 'a';  // faults; owner commits the page
  p[20] = 'b';  // same page: no second fault
  EXPECT_EQ(owner.faults, 1);
  p[kPageSize + 1] = 'c';
  EXPECT_EQ(owner.faults, 2);

  FaultDispatcher::Instance().UnregisterRange(id);
  EXPECT_EQ(FaultDispatcher::Instance().FindOwner(*mem), nullptr);
  (void)vmem::Release(*mem, 4 * kPageSize);
}

}  // namespace
}  // namespace bess
