// Tests for primitive events and hook functions (§2.4).
#include <gtest/gtest.h>

#include "hooks/hooks.h"
#include "object/database.h"

#include <filesystem>

namespace bess {
namespace {

class HooksTest : public ::testing::Test {
 protected:
  void TearDown() override { HookRegistry::Instance().Clear(); }
};

TEST_F(HooksTest, FireWithoutHooksIsCheapNoop) {
  HookRegistry& reg = HookRegistry::Instance();
  EXPECT_FALSE(reg.HasHooks(Event::kTransactionCommit));
  EventContext ctx;
  EXPECT_TRUE(FireEvent(Event::kTransactionCommit, ctx).ok());
  EXPECT_EQ(reg.dispatch_count(), 0u);
}

TEST_F(HooksTest, HooksRunInRegistrationOrder) {
  HookRegistry& reg = HookRegistry::Instance();
  std::vector<int> order;
  reg.Register(Event::kDatabaseOpen, [&](Event, const EventContext&) {
    order.push_back(1);
    return Status::OK();
  });
  reg.Register(Event::kDatabaseOpen, [&](Event, const EventContext&) {
    order.push_back(2);
    return Status::OK();
  });
  EventContext ctx;
  ASSERT_TRUE(reg.Fire(Event::kDatabaseOpen, ctx).ok());
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(HooksTest, FailingHookShortCircuits) {
  HookRegistry& reg = HookRegistry::Instance();
  bool second_ran = false;
  reg.Register(Event::kLargeObjectStore, [](Event, const EventContext&) {
    return Status::Aborted("veto");
  });
  reg.Register(Event::kLargeObjectStore, [&](Event, const EventContext&) {
    second_ran = true;
    return Status::OK();
  });
  EventContext ctx;
  EXPECT_TRUE(reg.Fire(Event::kLargeObjectStore, ctx).IsAborted());
  EXPECT_FALSE(second_ran);
}

TEST_F(HooksTest, UnregisterStopsDelivery) {
  HookRegistry& reg = HookRegistry::Instance();
  int calls = 0;
  uint64_t id = reg.Register(Event::kLockAcquire,
                             [&](Event, const EventContext&) {
                               ++calls;
                               return Status::OK();
                             });
  EventContext ctx;
  (void)FireEvent(Event::kLockAcquire, ctx);
  reg.Unregister(id);
  (void)FireEvent(Event::kLockAcquire, ctx);
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(reg.HasHooks(Event::kLockAcquire));
}

TEST_F(HooksTest, EventNamesAreDistinct) {
  std::set<std::string> names;
  for (int e = 0; e < static_cast<int>(Event::kEventCount); ++e) {
    names.insert(EventName(static_cast<Event>(e)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(Event::kEventCount));
}

// The paper's motivating scenario (§2.4): count commits without touching
// application code or BeSS internals — and observe faults, fetches, locks.
TEST_F(HooksTest, EngineFiresLifecycleEvents) {
  std::map<Event, int> counts;
  std::mutex mu;
  for (Event e : {Event::kDatabaseOpen, Event::kTransactionBegin,
                  Event::kTransactionCommit, Event::kTransactionAbort,
                  Event::kObjectCreate, Event::kSegmentFault,
                  Event::kSegmentFetch, Event::kLockAcquire,
                  Event::kLockRelease}) {
    HookRegistry::Instance().Register(e, [&, e](Event, const EventContext&) {
      std::lock_guard<std::mutex> guard(mu);
      counts[e]++;
      return Status::OK();
    });
  }

  auto dir = std::filesystem::temp_directory_path() /
             ("bess_hooks_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    Database::Options o;
    o.dir = dir.string();
    o.create = true;
    auto db = Database::Open(o);
    ASSERT_TRUE(db.ok());
    auto file = (*db)->CreateFile("f");
    auto txn = (*db)->Begin();
    ASSERT_TRUE(txn.ok());
    uint64_t v = 1;
    ASSERT_TRUE((*db)->CreateObject(*file, kRawBytesType, 8, &v).ok());
    ASSERT_TRUE((*db)->Commit(*txn).ok());
    auto txn2 = (*db)->Begin();
    ASSERT_TRUE(txn2.ok());
    ASSERT_TRUE((*db)->Abort(*txn2).ok());
  }
  std::filesystem::remove_all(dir);

  EXPECT_EQ(counts[Event::kDatabaseOpen], 1);
  EXPECT_EQ(counts[Event::kTransactionBegin], 2);
  EXPECT_EQ(counts[Event::kTransactionCommit], 1);
  EXPECT_EQ(counts[Event::kTransactionAbort], 1);
  EXPECT_EQ(counts[Event::kObjectCreate], 1);
  EXPECT_GT(counts[Event::kLockAcquire], 0);
}

TEST_F(HooksTest, ProtectionViolationEventFires) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The violation hook fires before the process dies; observe it in a
  // death-test child via its exit message.
  auto dir = std::filesystem::temp_directory_path() /
             ("bess_hookpv_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  Database::Options o;
  o.dir = dir.string();
  o.create = true;
  auto db = Database::Open(o);
  ASSERT_TRUE(db.ok());
  auto file = (*db)->CreateFile("f");
  auto txn = (*db)->Begin();
  ASSERT_TRUE(txn.ok());
  auto slot = (*db)->CreateObject(*file, kRawBytesType, 8);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE((*db)->Commit(*txn).ok());

  HookRegistry::Instance().Register(
      Event::kProtectionViolation, [](Event, const EventContext&) {
        fprintf(stderr, "HOOK: stray write detected\n");
        return Status::OK();
      });
  EXPECT_DEATH({ (*slot)->size = 1234; }, "HOOK: stray write detected");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bess
