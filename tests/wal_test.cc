// Tests for the write-ahead log and ARIES-style recovery, including torn
// tails, checkpoints, CLR idempotence, and crash-during-undo restarts.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "obs/stats.h"
#include "os/fault_injection.h"
#include "util/random.h"
#include "wal/recovery.h"

namespace bess {
namespace {

class MemPageSink : public PageSink {
 public:
  Status WritePage(PageAddr addr, const void* bytes, Lsn lsn) override {
    (void)lsn;
    pages_[addr.Pack()] = std::string(static_cast<const char*>(bytes),
                                      kPageSize);
    return Status::OK();
  }
  Status Sync() override {
    ++syncs_;
    return Status::OK();
  }
  std::string Get(PageAddr addr) const {
    auto it = pages_.find(addr.Pack());
    return it == pages_.end() ? std::string() : it->second;
  }
  std::map<uint64_t, std::string> pages_;
  int syncs_ = 0;
};

std::string PageOf(char fill) { return std::string(kPageSize, fill); }

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bess_wal_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "wal").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Lsn LogWrite(LogManager* log, TxnId txn, PageAddr page,
               const std::string& before, const std::string& after,
               Lsn prev) {
    LogRecord rec;
    rec.type = LogRecordType::kPageWrite;
    rec.txn = txn;
    rec.prev_lsn = prev;
    rec.page = page;
    rec.before = before;
    rec.after = after;
    auto lsn = log->Append(rec);
    EXPECT_TRUE(lsn.ok());
    return *lsn;
  }

  Lsn LogSimple(LogManager* log, LogRecordType type, TxnId txn, Lsn prev) {
    LogRecord rec;
    rec.type = type;
    rec.txn = txn;
    rec.prev_lsn = prev;
    auto lsn = log->Append(rec);
    EXPECT_TRUE(lsn.ok());
    return *lsn;
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(WalTest, AppendScanRoundTrip) {
  auto log = LogManager::Open(path_);
  ASSERT_TRUE(log.ok());
  Lsn b = LogSimple(log->get(), LogRecordType::kBegin, 1, kNullLsn);
  Lsn w = LogWrite(log->get(), 1, PageAddr{1, 0, 5}, PageOf('a'), PageOf('b'),
                   b);
  LogSimple(log->get(), LogRecordType::kCommit, 1, w);
  ASSERT_TRUE((*log)->Flush((*log)->tail_lsn() - 1).ok());

  int count = 0;
  ASSERT_TRUE((*log)
                  ->Scan(kNullLsn,
                         [&](Lsn lsn, const LogRecord& rec) {
                           (void)lsn;
                           ++count;
                           if (rec.type == LogRecordType::kPageWrite) {
                             EXPECT_EQ(rec.page.page, 5u);
                             EXPECT_EQ(rec.after, PageOf('b'));
                             EXPECT_EQ(rec.before, PageOf('a'));
                           }
                           return Status::OK();
                         })
                  .ok());
  EXPECT_EQ(count, 3);
}

TEST_F(WalTest, SurvivesReopenAndFindsTail) {
  Lsn tail;
  {
    auto log = LogManager::Open(path_);
    ASSERT_TRUE(log.ok());
    LogSimple(log->get(), LogRecordType::kBegin, 1, kNullLsn);
    ASSERT_TRUE((*log)->Flush((*log)->tail_lsn() - 1).ok());
    tail = (*log)->tail_lsn();
  }
  auto log = LogManager::Open(path_);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->tail_lsn(), tail);
}

TEST_F(WalTest, TornTailIsIgnored) {
  Lsn good_tail;
  {
    auto log = LogManager::Open(path_);
    ASSERT_TRUE(log.ok());
    LogSimple(log->get(), LogRecordType::kBegin, 1, kNullLsn);
    ASSERT_TRUE((*log)->Flush((*log)->tail_lsn() - 1).ok());
    good_tail = (*log)->tail_lsn();
  }
  // Simulate a crash mid-append: garbage bytes after the last good record.
  // In the segmented layout the record at LSN L lives in its segment at file
  // offset header + (L - base); this test's log is one segment with base 0.
  {
    std::string seg;
    for (const auto& e : std::filesystem::directory_iterator(path_)) {
      const std::string name = e.path().filename().string();
      if (name.rfind("wal-", 0) == 0) seg = e.path().string();
    }
    ASSERT_FALSE(seg.empty());
    auto f = File::Open(seg);
    ASSERT_TRUE(f.ok());
    std::string garbage = "\x40\x00\x00\x00garbage-without-valid-crc";
    ASSERT_TRUE(
        f->WriteAt(kPageSize + good_tail, garbage.data(), garbage.size()).ok());
  }
  auto log = LogManager::Open(path_);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->tail_lsn(), good_tail);
  int count = 0;
  ASSERT_TRUE((*log)
                  ->Scan(kNullLsn,
                         [&](Lsn, const LogRecord&) {
                           ++count;
                           return Status::OK();
                         })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST_F(WalTest, TornTailFromInjectedShortWriteIsReported) {
  const PageAddr p{1, 0, 8};
  Lsn good_tail;
  {
    auto log = LogManager::Open(path_);
    ASSERT_TRUE(log.ok());
    // A fully committed, fully flushed transaction: the recoverable prefix.
    Lsn b = LogSimple(log->get(), LogRecordType::kBegin, 1, kNullLsn);
    Lsn w = LogWrite(log->get(), 1, p, PageOf('0'), PageOf('C'), b);
    LogSimple(log->get(), LogRecordType::kCommit, 1, w);
    ASSERT_TRUE((*log)->Flush((*log)->tail_lsn() - 1).ok());
    good_tail = (*log)->tail_lsn();

    // The flush of the next record is torn by the fault layer: only 4 bytes
    // of it reach the file before the (simulated) power loss.
    LogSimple(log->get(), LogRecordType::kBegin, 2, kNullLsn);
    fault::FaultSpec spec;
    spec.action = fault::FaultAction::kShortWrite;
    spec.max_bytes = 4;
    spec.count = 1;
    spec.detail_filter = path_;
    fault::FaultRegistry::Instance().Arm("file.writeat", spec);
    EXPECT_FALSE((*log)->Flush((*log)->tail_lsn() - 1).ok());
    fault::FaultRegistry::Instance().DisarmAll();
  }

  const uint64_t torn_before = Snapshot().counter("wal.torn_tail");
  auto log = LogManager::Open(path_);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->tail_lsn(), good_tail);
  EXPECT_TRUE((*log)->tail_was_torn());
#if BESS_METRICS_ENABLED
  EXPECT_EQ(Snapshot().counter("wal.torn_tail"), torn_before + 1);
#endif

  // Recovery redoes the committed prefix and reports the torn tail.
  MemPageSink sink;
  RecoveryManager rec(log->get(), &sink);
  ASSERT_TRUE(rec.Run().ok());
  EXPECT_EQ(sink.Get(p), PageOf('C'));
  EXPECT_TRUE(rec.stats().torn_tail);
  EXPECT_EQ(rec.stats().recovered_tail_lsn, good_tail);
}

TEST_F(WalTest, InterruptedFsyncWedgesLogUntilReopen) {
  const PageAddr p{1, 0, 9};
  {
    auto log = LogManager::Open(path_);
    ASSERT_TRUE(log.ok());
    Lsn b = LogSimple(log->get(), LogRecordType::kBegin, 1, kNullLsn);
    Lsn w = LogWrite(log->get(), 1, p, PageOf('0'), PageOf('D'), b);
    Lsn c = LogSimple(log->get(), LogRecordType::kCommit, 1, w);

    // An fdatasync that returns after an interruption leaves the durability
    // of the pending dirty range unknown (the kernel may already have
    // cleared dirty flags — fsyncgate). File::Sync deliberately does NOT
    // retry; the log must treat the interrupted sync as a hard failure and
    // wedge permanently.
    fault::FaultSpec spec = fault::FaultSpec::FailNth(1);
    spec.detail_filter = path_;
    fault::FaultRegistry::Instance().Arm("file.sync", spec);
    Status flushed = (*log)->Flush(c);
    fault::FaultRegistry::Instance().DisarmAll();
    ASSERT_FALSE(flushed.ok());

    // Wedged: every durability-relevant call fails from now on, with no
    // further injected faults — the failure is sticky.
    EXPECT_FALSE((*log)->Flush(c).ok());
    LogRecord rec;
    rec.type = LogRecordType::kBegin;
    rec.txn = 2;
    EXPECT_FALSE((*log)->Append(rec).ok());
  }

  // Reopen re-scans the true on-disk tail: that is the only way out of the
  // wedge. The unsynced batch never reported success, so losing it is
  // correct; the log must be consistent and writable again.
  auto log = LogManager::Open(path_);
  ASSERT_TRUE(log.ok());
  Lsn b = LogSimple(log->get(), LogRecordType::kBegin, 3, kNullLsn);
  EXPECT_NE(b, kNullLsn);
  EXPECT_TRUE((*log)->Flush(b).ok());
}

TEST_F(WalTest, RecoveryRedoesCommittedUndoesLosers) {
  auto logr = LogManager::Open(path_);
  ASSERT_TRUE(logr.ok());
  LogManager* log = logr->get();
  const PageAddr p1{1, 0, 10}, p2{1, 0, 11};

  // Txn 1 commits a write to p1. Txn 2 writes p2 but never commits.
  Lsn b1 = LogSimple(log, LogRecordType::kBegin, 1, kNullLsn);
  Lsn w1 = LogWrite(log, 1, p1, PageOf('0'), PageOf('A'), b1);
  LogSimple(log, LogRecordType::kCommit, 1, w1);
  Lsn b2 = LogSimple(log, LogRecordType::kBegin, 2, kNullLsn);
  LogWrite(log, 2, p2, PageOf('0'), PageOf('B'), b2);
  ASSERT_TRUE(log->Flush(log->tail_lsn() - 1).ok());

  MemPageSink sink;
  RecoveryManager rec(log, &sink);
  ASSERT_TRUE(rec.Run().ok());

  EXPECT_EQ(sink.Get(p1), PageOf('A'));  // winner redone
  EXPECT_EQ(sink.Get(p2), PageOf('0'));  // loser undone to before-image
  EXPECT_EQ(rec.stats().winner_txns, 1u);
  EXPECT_EQ(rec.stats().loser_txns, 1u);
  EXPECT_EQ(rec.stats().clrs_written, 1u);
}

TEST_F(WalTest, RecoveryIsIdempotent) {
  auto logr = LogManager::Open(path_);
  ASSERT_TRUE(logr.ok());
  LogManager* log = logr->get();
  const PageAddr p{1, 0, 20};
  Lsn b = LogSimple(log, LogRecordType::kBegin, 7, kNullLsn);
  LogWrite(log, 7, p, PageOf('x'), PageOf('y'), b);
  ASSERT_TRUE(log->Flush(log->tail_lsn() - 1).ok());

  // First recovery: txn 7 is a loser, gets undone with a CLR + End.
  MemPageSink sink1;
  {
    RecoveryManager rec(log, &sink1);
    ASSERT_TRUE(rec.Run().ok());
    EXPECT_EQ(sink1.Get(p), PageOf('x'));
  }
  // Second recovery (crash immediately after the first): the End record
  // makes txn 7 a non-loser and the CLR redo re-applies the before-image.
  MemPageSink sink2;
  {
    RecoveryManager rec(log, &sink2);
    ASSERT_TRUE(rec.Run().ok());
    EXPECT_EQ(sink2.Get(p), PageOf('x'));
    EXPECT_EQ(rec.stats().loser_txns, 0u);
  }
}

TEST_F(WalTest, MultiUpdateLoserUnwindsInReverse) {
  auto logr = LogManager::Open(path_);
  ASSERT_TRUE(logr.ok());
  LogManager* log = logr->get();
  const PageAddr p{1, 0, 30};
  Lsn prev = LogSimple(log, LogRecordType::kBegin, 3, kNullLsn);
  prev = LogWrite(log, 3, p, PageOf('0'), PageOf('1'), prev);
  prev = LogWrite(log, 3, p, PageOf('1'), PageOf('2'), prev);
  prev = LogWrite(log, 3, p, PageOf('2'), PageOf('3'), prev);
  ASSERT_TRUE(log->Flush(log->tail_lsn() - 1).ok());

  MemPageSink sink;
  RecoveryManager rec(log, &sink);
  ASSERT_TRUE(rec.Run().ok());
  EXPECT_EQ(sink.Get(p), PageOf('0'));  // fully unwound
  EXPECT_EQ(rec.stats().undo_records, 3u);
}

TEST_F(WalTest, CheckpointBoundsAnalysis) {
  auto logr = LogManager::Open(path_);
  ASSERT_TRUE(logr.ok());
  LogManager* log = logr->get();
  const PageAddr p{1, 0, 40};

  // Old committed work before the checkpoint.
  Lsn b1 = LogSimple(log, LogRecordType::kBegin, 1, kNullLsn);
  Lsn w1 = LogWrite(log, 1, p, PageOf('0'), PageOf('A'), b1);
  LogSimple(log, LogRecordType::kCommit, 1, w1);

  LogRecord cp;
  cp.type = LogRecordType::kCheckpoint;
  auto cp_lsn = log->Append(cp);
  ASSERT_TRUE(cp_lsn.ok());
  ASSERT_TRUE(log->SetCheckpointLsn(*cp_lsn).ok());

  // Post-checkpoint loser.
  Lsn b2 = LogSimple(log, LogRecordType::kBegin, 2, kNullLsn);
  LogWrite(log, 2, p, PageOf('A'), PageOf('Z'), b2);
  ASSERT_TRUE(log->Flush(log->tail_lsn() - 1).ok());

  MemPageSink sink;
  RecoveryManager rec(log, &sink);
  ASSERT_TRUE(rec.Run().ok());
  EXPECT_EQ(sink.Get(p), PageOf('A'));
  EXPECT_EQ(rec.stats().loser_txns, 1u);
}

TEST_F(WalTest, GroupCommitCoalescesSyncs) {
  auto logr = LogManager::Open(path_);
  ASSERT_TRUE(logr.ok());
  LogManager* log = logr->get();
  Lsn l1 = LogSimple(log, LogRecordType::kBegin, 1, kNullLsn);
  Lsn l2 = LogSimple(log, LogRecordType::kBegin, 2, kNullLsn);
  Lsn l3 = LogSimple(log, LogRecordType::kBegin, 3, kNullLsn);
  const uint64_t syncs_before = log->sync_count();
  ASSERT_TRUE(log->Flush(l3).ok());
  // These two are already durable: no further fdatasync.
  ASSERT_TRUE(log->Flush(l1).ok());
  ASSERT_TRUE(log->Flush(l2).ok());
  EXPECT_EQ(log->sync_count(), syncs_before + 1);
}

TEST_F(WalTest, ResetStartsFresh) {
  auto logr = LogManager::Open(path_);
  ASSERT_TRUE(logr.ok());
  LogManager* log = logr->get();
  LogSimple(log, LogRecordType::kBegin, 1, kNullLsn);
  ASSERT_TRUE(log->Reset().ok());
  int count = 0;
  ASSERT_TRUE(log->Scan(kNullLsn, [&](Lsn, const LogRecord&) {
    ++count;
    return Status::OK();
  }).ok());
  EXPECT_EQ(count, 0);
  auto cp = log->GetCheckpointLsn();
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(*cp, kNullLsn);
}

}  // namespace
}  // namespace bess
