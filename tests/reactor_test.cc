// Event-driven server core tests (DESIGN.md §11): the non-blocking socket
// surface under injected short writes, request pipelining exactness across
// many connections on the one epoll loop, defunct-session teardown driven
// from the event thread, the listener busy-probe under the reactor, and
// start/stop churn with live connections (the old accept-thread shutdown
// race paths).
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "object/database.h"
#include "os/fault_injection.h"
#include "os/socket.h"
#include "server/bess_server.h"
#include "server/remote_client.h"
#include "util/slice.h"

namespace bess {
namespace {

class ReactorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    base_ = std::filesystem::temp_directory_path() /
            ("bess_reactor_" + std::to_string(::getpid()) + "_" + info->name());
    std::filesystem::remove_all(base_);
    std::filesystem::create_directories(base_);
    sock_path_ = (base_ / "server.sock").string();
  }
  void TearDown() override {
    fault::FaultRegistry::Instance().DisarmAll();
    fault::FaultRegistry::Instance().ResetCounters();
    server_.reset();
    std::filesystem::remove_all(base_);
  }

  // kMsgPing and kMsgLock need no database, so these tests run the server
  // bare: pure transport + session machinery.
  void StartServer(int lock_timeout_ms = 300) {
    BessServer::Options o;
    o.socket_path = sock_path_;
    o.lock_timeout_ms = lock_timeout_ms;
    server_ = std::make_unique<BessServer>(o);
    ASSERT_TRUE(server_->Start().ok());
  }

  MsgSocket ConnectRaw() {
    auto sock = MsgSocket::Connect(sock_path_);
    EXPECT_TRUE(sock.ok()) << sock.status().ToString();
    EXPECT_TRUE(sock->Send(kMsgHello, "").ok());
    auto hello = sock->Recv();
    EXPECT_TRUE(hello.ok()) << hello.status().ToString();
    EXPECT_EQ(hello->type, kMsgOk);
    return std::move(*sock);
  }

  static std::string LockPayload(uint64_t key, LockMode mode,
                                 uint32_t timeout_ms) {
    std::string p;
    PutFixed64(&p, key);
    p.push_back(static_cast<char>(mode));
    PutFixed32(&p, timeout_ms);
    return p;
  }

  std::filesystem::path base_;
  std::string sock_path_;
  std::unique_ptr<BessServer> server_;
};

// A frame whose send is chopped into injected 3-byte windows must arrive
// intact: TrySend keeps its place in the continuation across WouldBlock
// returns, and TryRecv reassembles the frame across partial reads.
TEST_F(ReactorTest, ShortWriteContinuationDeliversFrameIntact) {
  MsgSocket a, b;
  ASSERT_TRUE(MsgSocket::Pair(&a, &b).ok());
  ASSERT_TRUE(a.SetNonBlocking(true).ok());
  ASSERT_TRUE(b.SetNonBlocking(true).ok());

  std::string payload(1000, 'x');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('a' + (i % 26));
  }

  fault::FaultSpec short_writes;
  short_writes.action = fault::FaultAction::kShortWrite;
  short_writes.max_bytes = 3;
  short_writes.count = 20;  // then the wire opens up
  fault::FaultRegistry::Instance().Arm("sock.trysend", short_writes);

  SendContinuation send_cont;
  MsgSocket::QueueFrame(kMsgPing, 77, payload, &send_cont);
  RecvContinuation recv_cont;
  Message got;
  bool received = false;
  int would_blocks = 0;
  int mid_frame_reads = 0;
  while (!send_cont.empty() || !received) {
    if (!send_cont.empty()) {
      Status s = a.TrySend(&send_cont);
      ASSERT_TRUE(s.ok() || s.IsWouldBlock()) << s.ToString();
      if (s.IsWouldBlock()) would_blocks++;
    }
    if (!received) {
      Status s = b.TryRecv(&got, &recv_cont);
      ASSERT_TRUE(s.ok() || s.IsWouldBlock()) << s.ToString();
      if (s.ok()) {
        received = true;
      } else if (recv_cont.mid_frame()) {
        mid_frame_reads++;  // a partial frame really was parked
      }
    }
  }
  fault::FaultRegistry::Instance().Disarm("sock.trysend");

  EXPECT_EQ(would_blocks, 20);
  EXPECT_GT(mid_frame_reads, 0);
  EXPECT_EQ(got.type, kMsgPing);
  EXPECT_EQ(got.req_id, 77u);
  EXPECT_EQ(got.payload, payload);
}

// 256 connections each pipeline a burst of pings without reading, then
// collect the replies: every connection must get exactly its own replies,
// in request order (execution is serial per session), each echoing its
// request id and payload.
TEST_F(ReactorTest, PipeliningExactnessAcross256Connections) {
  StartServer();
  constexpr int kConns = 256;
  constexpr int kPingsPerConn = 8;

  std::vector<MsgSocket> conns;
  conns.reserve(kConns);
  for (int i = 0; i < kConns; ++i) conns.push_back(ConnectRaw());

  for (int i = 0; i < kConns; ++i) {
    for (int k = 0; k < kPingsPerConn; ++k) {
      std::string payload = "conn" + std::to_string(i) + ":" +
                            std::to_string(k);
      const uint64_t req_id =
          static_cast<uint64_t>(i) * 1000u + static_cast<uint64_t>(k) + 1;
      ASSERT_TRUE(conns[static_cast<size_t>(i)]
                      .Send(kMsgPing, payload, req_id)
                      .ok());
    }
  }
  for (int i = 0; i < kConns; ++i) {
    for (int k = 0; k < kPingsPerConn; ++k) {
      auto reply = conns[static_cast<size_t>(i)].Recv();
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      EXPECT_EQ(reply->type, kMsgOk);
      EXPECT_EQ(reply->req_id, static_cast<uint64_t>(i) * 1000u +
                                   static_cast<uint64_t>(k) + 1);
      EXPECT_EQ(reply->payload,
                "conn" + std::to_string(i) + ":" + std::to_string(k));
    }
  }
  for (auto& c : conns) (void)c.Send(kMsgGoodbye, "");
}

// A client that vanishes without a goodbye must be torn down from the event
// loop: its session is reaped and its locks released, so a second session
// waiting on one of them is granted instead of timing out.
TEST_F(ReactorTest, AbruptDisconnectReapsSessionAndFreesLocks) {
  StartServer(/*lock_timeout_ms=*/2000);
  MsgSocket holder = ConnectRaw();
  ASSERT_TRUE(
      holder.Send(kMsgLock, LockPayload(42, LockMode::kX, 1000), 1).ok());
  auto granted = holder.Recv();
  ASSERT_TRUE(granted.ok());
  ASSERT_EQ(granted->type, kMsgOk);

  MsgSocket waiter = ConnectRaw();
  ASSERT_TRUE(
      waiter.Send(kMsgLock, LockPayload(42, LockMode::kX, 1500), 2).ok());
  // While the waiter's request sits in a cooperative lock wait, the holder
  // disappears mid-session. (The holder has no callback channel bound, so
  // the grant must come from on_close teardown, not callback release.)
  holder.Close();

  auto reply = waiter.Recv();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, kMsgOk) << "lock not granted after holder vanished";
  EXPECT_EQ(reply->req_id, 2u);
  EXPECT_GE(server_->stats().sessions_reaped, 1u);
  (void)waiter.Send(kMsgGoodbye, "");
}

// The listener's busy-probe still refuses to steal a live server's socket
// under the reactor (no accept thread), and a stopped server's socket file
// is reusable immediately.
TEST_F(ReactorTest, ListenBusyProbeUnderReactor) {
  StartServer();
  BessServer::Options o;
  o.socket_path = sock_path_;
  BessServer second(o);
  Status s = second.Start();
  EXPECT_TRUE(s.IsBusy()) << s.ToString();

  server_->Stop();
  ASSERT_TRUE(second.Start().ok());
  MsgSocket c = ConnectRaw();  // the second server answers now
  ASSERT_TRUE(c.Send(kMsgPing, "still here", 9).ok());
  auto reply = c.Recv();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->payload, "still here");
  second.Stop();
}

// Start/stop churn with live connections: Stop() must tear down the epoll
// loop, every session, and the workers without racing the connections that
// are still talking (the old dedicated accept thread had shutdown races
// here; under tsan this is the regression net).
TEST_F(ReactorTest, StopWithLiveConnectionsShutsDownCleanly) {
  for (int round = 0; round < 5; ++round) {
    StartServer();
    std::vector<MsgSocket> conns;
    for (int i = 0; i < 8; ++i) conns.push_back(ConnectRaw());
    // Half the connections have pings in flight when Stop lands.
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(conns[static_cast<size_t>(i)]
                      .Send(kMsgPing, "mid-flight", 1)
                      .ok());
    }
    std::thread stopper([&] { server_->Stop(); });
    // Either a reply arrives (sent before teardown) or the connection
    // closes; both are orderly outcomes — what must not happen is a hang
    // or a race.
    for (auto& c : conns) {
      auto r = c.RecvTimeout(1000);
      if (r.ok()) continue;
      EXPECT_FALSE(r.status().IsBusy()) << "recv hung through server stop";
    }
    stopper.join();
    server_.reset();
  }
}

// The pipelined client surface: a burst of CallAsync pings resolves to
// exact echoes after a Flush barrier, interleaved with synchronous calls on
// the same connection (which ride the same request-id demultiplexer).
TEST_F(ReactorTest, ClientCallAsyncFlushAndSyncInterleave) {
  Database::Options dbo;
  dbo.dir = (base_ / "db").string();
  dbo.db_id = 1;
  dbo.create = true;
  auto db = Database::Open(dbo);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  BessServer::Options so;
  so.socket_path = sock_path_;
  server_ = std::make_unique<BessServer>(so);
  ASSERT_TRUE(server_->AddDatabase(db->get()).ok());
  ASSERT_TRUE(server_->Start().ok());

  RemoteClient::Options o;
  o.server_path = sock_path_;
  o.db_id = 1;
  auto client = RemoteClient::Connect(o);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  constexpr int kInFlight = 64;
  std::vector<ReplyFuture> futures;
  futures.reserve(kInFlight);
  for (int i = 0; i < kInFlight; ++i) {
    futures.push_back(
        (*client)->CallAsync(kMsgPing, "async" + std::to_string(i)));
  }
  // A synchronous RPC while 64 pings are in flight: correlation by req_id,
  // not by arrival order.
  auto stats = (*client)->ServerStats();
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();

  ASSERT_TRUE((*client)->Flush().ok());
  for (int i = 0; i < kInFlight; ++i) {
    auto reply = futures[static_cast<size_t>(i)].Get();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->type, kMsgOk);
    EXPECT_EQ(reply->payload, "async" + std::to_string(i));
    // Get() is idempotent.
    auto again = futures[static_cast<size_t>(i)].Get();
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->payload, reply->payload);
  }
  client->reset();
  server_->Stop();
}

}  // namespace
}  // namespace bess
