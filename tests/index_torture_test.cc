// Secondary-index crash-recovery torture (DESIGN.md §14).
//
// Each iteration forks a child that runs a randomized index workload —
// autocommitted puts/deletes plus multi-key transactions, some deliberately
// aborted — with a seeded SIGKILL crashpoint armed on one of the SMO
// protocol steps (index.smo.log / index.smo.apply / index.smo.applied) or a
// raw file I/O point. The child reports every operation over a pipe before
// executing it and acknowledges each commit after the engine does. The
// parent then reopens the database (ARIES restart: blind redo of SMO and
// leaf images, logical undo of loser chains) and asserts:
//
//   1. Durability: every acknowledged group is fully present.
//   2. Atomicity: the one possibly-in-flight group is all-or-nothing — a
//      crash never exposes half a transaction's index writes.
//   3. Exactness: a full scan returns exactly the shadow map — no phantom
//      keys, no resurrected deletes, values byte-identical.
//   4. Structure: a cold standalone walk of the index area (node magic, key
//      order within and across leaves, separators, the leaf chain) passes —
//      a crash mid-split never leaves a torn tree behind.
//
// One base seed (env BESS_TORTURE_SEED) drives everything; iterations:
// env BESS_INDEX_TORTURE_ITERS (default 60, floor 50 — the acceptance bar).
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "bess/bess.h"
#include "index/index.h"
#include "object/database.h"
#include "os/fault_injection.h"
#include "storage/storage_area.h"
#include "util/random.h"

namespace bess {
namespace {

constexpr int kKeySpace = 4096;
constexpr int kMaxGroupsPerChild = 120;
constexpr int kTxnGroupOps = 3;

std::string IKey(uint64_t k) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%05llu", static_cast<unsigned long long>(k));
  return buf;
}

// Values are derived from the global sequence number alone, so the parent
// reconstructs the expected bytes from the pipe records. ~100 bytes keeps
// leaves filling fast enough that splits (and the SMO crashpoints) fire
// every few dozen operations.
std::string IValue(uint64_t seq) {
  std::string v = "s" + std::to_string(seq) + "|";
  v.append(96, static_cast<char>('a' + seq % 26));
  return v;
}

// One pipe record per event, fixed width so reads never tear.
struct WireRecord {
  uint64_t tag;    // 0 = op attempt, 1 = group committed, 2 = group aborted
  uint64_t op;     // attempts: 0 = put, 1 = delete
  uint64_t key;    // attempts: key number
  uint64_t group;  // group id (one per autocommit op / transaction)
  uint64_t seq;    // attempts: value sequence for puts
};

[[noreturn]] void RunIndexCrashChild(const std::string& dir, uint64_t seed,
                                     int report_fd, bool recovery_only) {
  Random rng(seed);
  static const char* kWorkPoints[] = {"index.smo.log", "index.smo.apply",
                                      "index.smo.applied", "file.writeat",
                                      "file.sync", "file.append"};
  static const char* kRecoveryPoints[] = {"file.readat", "file.writeat",
                                          "file.sync", "file.append"};
  if (recovery_only) {
    // Kill restart recovery itself: it must be idempotently restartable.
    fault::FaultRegistry::Instance().Arm(
        kRecoveryPoints[rng.Uniform(4)],
        fault::FaultSpec::CrashAtNth(static_cast<int>(rng.Range(1, 25))));
  } else {
    const int idx = static_cast<int>(rng.Uniform(6));
    // The SMO points fire once per split, not once per I/O: low nth.
    const int nth = static_cast<int>(
        idx < 3 ? rng.Range(1, 4) : rng.Range(4, 80));
    fault::FaultRegistry::Instance().Arm(kWorkPoints[idx],
                                         fault::FaultSpec::CrashAtNth(nth));
  }

  Database::Options o;
  o.dir = dir;
  o.create = false;
  auto dbr = Database::Open(o);
  if (!dbr.ok()) ::_exit(3);
  if (recovery_only) ::_exit(0);  // the crashpoint never fired
  auto db = std::move(*dbr);
  auto ixr = db->OpenIndex("torture");
  if (!ixr.ok()) ::_exit(3);
  Index ix = *ixr;

  auto report = [&](const WireRecord& rec) {
    if (::write(report_fd, &rec, sizeof(rec)) != sizeof(rec)) ::_exit(3);
  };

  uint64_t seq = seed << 20;  // distinct value streams across iterations
  for (uint64_t group = 1; group <= kMaxGroupsPerChild; ++group) {
    const uint32_t mode = rng.Uniform(10);
    if (mode < 7) {
      // Autocommitted single operation: put-heavy, some deletes.
      const uint64_t key = rng.Uniform(kKeySpace);
      const bool is_put = rng.Uniform(5) != 0;
      const uint64_t s = ++seq;
      report({0, is_put ? 0u : 1u, key, group, s});
      Status st = is_put ? ix.Put(nullptr, IKey(key), IValue(s))
                         : ix.Delete(nullptr, IKey(key));
      if (!st.ok()) ::_exit(3);
      report({1, 0, 0, group, 0});
    } else {
      // A multi-key transaction over distinct keys; one in five aborts on
      // purpose (undo must reverse every operation of the chain).
      uint64_t keys[kTxnGroupOps];
      for (int i = 0; i < kTxnGroupOps; ++i) {
        for (;;) {
          keys[i] = rng.Uniform(kKeySpace);
          bool dup = false;
          for (int j = 0; j < i; ++j) dup |= keys[j] == keys[i];
          if (!dup) break;
        }
      }
      const bool abort = rng.Uniform(5) == 0;
      TxnGuard txn(db.get());
      if (!txn.active()) ::_exit(3);
      for (int i = 0; i < kTxnGroupOps; ++i) {
        const uint64_t s = ++seq;
        report({0, 0, keys[i], group, s});
        if (!ix.Put(txn.handle(), IKey(keys[i]), IValue(s)).ok()) ::_exit(3);
      }
      if (abort) {
        if (!txn.Abort().ok()) ::_exit(3);
        report({2, 0, 0, group, 0});
      } else {
        if (!txn.Commit().ok()) ::_exit(3);
        report({1, 0, 0, group, 0});
      }
    }
  }
  ::_exit(0);  // the crashpoint never fired: clean exit, still verified
}

struct PendingOp {
  bool is_put = false;
  uint64_t key = 0;
  uint64_t seq = 0;
};

class IndexTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bess_index_torture_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void SeedDatabase() {
    Database::Options o;
    o.dir = dir_.string();
    o.create = true;
    auto dbr = Database::Open(o);
    ASSERT_TRUE(dbr.ok()) << dbr.status().ToString();
    auto ix = (*dbr)->CreateIndex("torture");
    ASSERT_TRUE(ix.ok()) << ix.status().ToString();
  }

  // Forks a crash child; folds its pipe stream into the committed shadow
  // map and the (at most one) group still in flight when it died.
  bool RunChild(uint64_t seed, bool recovery_only,
                std::vector<PendingOp>* pending) {
    int pipefd[2];
    EXPECT_EQ(::pipe(pipefd), 0);
    const pid_t pid = ::fork();
    EXPECT_GE(pid, 0);
    if (pid == 0) {
      ::close(pipefd[0]);
      RunIndexCrashChild(dir_.string(), seed, pipefd[1], recovery_only);
    }
    ::close(pipefd[1]);
    WireRecord rec;
    std::vector<PendingOp> open_group;
    for (;;) {
      const ssize_t n = ::read(pipefd[0], &rec, sizeof(rec));
      if (n != sizeof(rec)) break;  // EOF: the child died (or finished)
      if (rec.tag == 0) {
        open_group.push_back({rec.op == 0, rec.key, rec.seq});
      } else if (rec.tag == 1) {
        for (const PendingOp& op : open_group) ApplyToShadow(op);
        open_group.clear();
      } else {
        open_group.clear();  // aborted: the engine owes us the old state
      }
    }
    ::close(pipefd[0]);
    *pending = std::move(open_group);
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    const bool killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    EXPECT_TRUE(killed || clean)
        << "child failed unexpectedly, status=" << status << " seed=" << seed;
    if (clean) {
      // A clean exit acked or aborted every group; nothing is in flight.
      EXPECT_TRUE(pending->empty());
    }
    return killed || clean;
  }

  void ApplyToShadow(const PendingOp& op) {
    if (op.is_put) {
      shadow_[op.key] = IValue(op.seq);
    } else {
      shadow_.erase(op.key);
    }
  }

  // Whether the recovered index matches shadow_ + `ops` applied on top.
  static bool MatchesState(
      const Index& ix, const std::map<uint64_t, std::string>& state,
      uint64_t probe_key) {
    std::string v;
    auto found = ix.Get(IKey(probe_key), &v);
    EXPECT_TRUE(found.ok()) << found.status().ToString();
    if (!found.ok()) return false;
    auto it = state.find(probe_key);
    if (it == state.end()) return !*found;
    return *found && v == it->second;
  }

  // Reopens the database (running restart recovery), resolves the in-flight
  // group to committed-or-not, and asserts the recovered index equals the
  // shadow exactly. Then closes it and structurally validates the tree cold.
  void VerifyConsistent(const std::vector<PendingOp>& pending, uint64_t seed,
                        int iter) {
    Database::Options o;
    o.dir = dir_.string();
    o.create = false;
    auto dbr = Database::Open(o);
    ASSERT_TRUE(dbr.ok()) << "recovery failed: " << dbr.status().ToString()
                          << " iter=" << iter << " seed=" << seed;
    auto db = std::move(*dbr);
    auto ixr = db->OpenIndex("torture");
    ASSERT_TRUE(ixr.ok()) << ixr.status().ToString() << " seed=" << seed;
    Index ix = *ixr;

    if (!pending.empty()) {
      // Decide whether the in-flight group committed, using an op whose
      // applied effect is distinguishable from the pre-group state. Puts
      // always are (sequence numbers never repeat); a delete only if the
      // key was present.
      std::map<uint64_t, std::string> applied = shadow_;
      for (const PendingOp& op : pending) {
        if (op.is_put) {
          applied[op.key] = IValue(op.seq);
        } else {
          applied.erase(op.key);
        }
      }
      const PendingOp* probe = nullptr;
      for (const PendingOp& op : pending) {
        const bool before = shadow_.count(op.key) != 0;
        if (op.is_put || before) {
          probe = &op;
          break;
        }
      }
      bool committed = false;
      if (probe != nullptr) {
        const bool as_applied = MatchesState(ix, applied, probe->key);
        const bool as_before = MatchesState(ix, shadow_, probe->key);
        ASSERT_TRUE(as_applied || as_before)
            << "in-flight group left key " << IKey(probe->key)
            << " in a state matching neither outcome, iter=" << iter
            << " seed=" << seed;
        // A put's value names its unique seq: the outcomes never alias.
        committed = as_applied;
      }
      if (committed) shadow_ = std::move(applied);
      // Atomicity: every key of the group must agree with the decision.
      for (const PendingOp& op : pending) {
        EXPECT_TRUE(MatchesState(ix, shadow_, op.key))
            << "torn group at key " << IKey(op.key) << " (group "
            << (committed ? "committed" : "rolled back") << "), iter=" << iter
            << " seed=" << seed;
      }
    }

    // Exactness: the full scan is byte-identical to the shadow — durability
    // (nothing acked is missing), no phantoms, no resurrected deletes.
    std::map<uint64_t, std::string> recovered;
    Status scan = ix.Scan("", "", [&](Slice k, Slice v) {
      uint64_t key = 0;
      if (k.size() != 6 || k[0] != 'k') {
        return Status::Corruption("foreign key in index: " + k.ToString());
      }
      key = std::strtoull(k.ToString().c_str() + 1, nullptr, 10);
      recovered[key] = v.ToString();
      return Status::OK();
    });
    ASSERT_TRUE(scan.ok()) << scan.ToString() << " seed=" << seed;
    EXPECT_EQ(recovered, shadow_)
        << "recovered index diverged from shadow (recovered "
        << recovered.size() << " vs shadow " << shadow_.size()
        << " entries), iter=" << iter << " seed=" << seed;

    db.reset();

    // Cold structural validation of the index area: node magic, key order,
    // separators, leaf chain. Probe the area files directly — the index
    // area is the one whose page 0 carries the index meta magic.
    bool validated = false;
    for (uint16_t area_id = 1;; ++area_id) {
      const std::string path =
          dir_.string() + "/area_" + std::to_string(area_id) + ".bess";
      if (!std::filesystem::exists(path)) break;
      auto area = StorageArea::Open(path);
      ASSERT_TRUE(area.ok()) << area.status().ToString();
      BTreeIndex::Options cold;
      cold.enable_bgwriter = false;
      cold.use_async = false;
      auto idx = BTreeIndex::Open(area->get(), cold);
      if (!idx.ok()) continue;  // not an index area
      uint64_t entries = 0;
      Status vs = (*idx)->Validate(&entries);
      EXPECT_TRUE(vs.ok()) << "recovered tree failed validation: "
                           << vs.ToString() << " iter=" << iter
                           << " seed=" << seed;
      EXPECT_EQ(entries, shadow_.size()) << "iter=" << iter << " seed=" << seed;
      validated = true;
    }
    EXPECT_TRUE(validated) << "index area not found for cold validation";
  }

  std::filesystem::path dir_;
  std::map<uint64_t, std::string> shadow_;  // committed state, parent-side
};

TEST_F(IndexTortureTest, SmoCrashpointsRecoverToShadow) {
  uint64_t base_seed = 0x1DE7057ull;
  if (const char* env = std::getenv("BESS_TORTURE_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  int iters = 60;
  if (const char* env = std::getenv("BESS_INDEX_TORTURE_ITERS")) {
    iters = std::max(50, std::atoi(env));
  }
  SCOPED_TRACE("base seed " + std::to_string(base_seed) +
               " (set BESS_TORTURE_SEED to reproduce)");
  SeedDatabase();

  Random seeder(base_seed);
  for (int iter = 0; iter < iters; ++iter) {
    const uint64_t seed = seeder.Next();
    std::vector<PendingOp> pending;
    ASSERT_TRUE(RunChild(seed, /*recovery_only=*/false, &pending))
        << "iter=" << iter << " seed=" << seed;

    // Every third iteration, also SIGKILL a process mid-recovery: redo of
    // SMO images and logical undo must both be restartable.
    if (iter % 3 == 2) {
      const uint64_t rseed = seeder.Next();
      std::vector<PendingOp> ignored;
      ASSERT_TRUE(RunChild(rseed, /*recovery_only=*/true, &ignored))
          << "iter=" << iter << " recovery seed=" << rseed;
    }

    VerifyConsistent(pending, seed, iter);
    if (::testing::Test::HasFailure()) {
      FAIL() << "stopping after first failing iteration " << iter
             << ", seed=" << seed << " (base " << base_seed << ")";
    }
  }
}

}  // namespace
}  // namespace bess
