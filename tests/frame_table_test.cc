// Tests for the frame-lifecycle core (cache/frame_table.h): state-machine
// legality (the PR 4 protected-frame invariant as a structural rule),
// pin/evict races, replacement-policy quality, WAL-before-data ordering,
// bgwriter/prefetch behaviour, and eviction under injected fault schedules.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/async_page_io.h"
#include "cache/frame_table.h"
#include "os/fault_injection.h"
#include "util/random.h"
#include "vm/mem_store.h"

namespace bess {
namespace {

uint64_t Key(uint32_t p) { return PageAddr{1, 0, p}.Pack(); }

std::string PageBytes(uint32_t p) {
  std::string bytes(kPageSize, '\0');
  memcpy(bytes.data(), &p, sizeof(p));
  return bytes;
}

void SeedStore(InMemoryStore* store, uint32_t pages) {
  for (uint32_t p = 0; p < pages; ++p) {
    ASSERT_TRUE(store->WritePages(1, 0, p, 1, PageBytes(p).data()).ok());
  }
}

// A placement that models access protection the way the mmap'd pools do —
// Demote "protects" a frame, PrepareForWriteback must lift that before any
// I/O reads it — and records enough to prove the lifecycle obeys the rule.
class ProtectionRecordingPlacement : public HeapPlacement {
 public:
  explicit ProtectionRecordingPlacement(uint32_t frames)
      : HeapPlacement(frames), protected_(frames) {
    for (auto& p : protected_) p.store(false);
  }

  Status Demote(uint32_t f) override {
    protected_[f].store(true);
    return Status::OK();
  }
  Status OnAccess(uint32_t f, bool) override {
    protected_[f].store(false);
    return Status::OK();
  }
  Status PrepareForWriteback(uint32_t f) override {
    prepare_calls_.fetch_add(1);
    protected_[f].store(false);  // the real pools mprotect back to readable
    return Status::OK();
  }
  Status OnEvict(uint32_t f) override {
    protected_[f].store(false);
    return Status::OK();
  }

  bool IsProtected(uint32_t f) const { return protected_[f].load(); }
  uint64_t prepare_calls() const { return prepare_calls_.load(); }

 private:
  std::vector<std::atomic<bool>> protected_;
  std::atomic<uint64_t> prepare_calls_{0};
};

// A PageIo that fails the test the instant a write-back reads a frame still
// under protection, and records the WAL-gate / write interleaving.
class AuditingIo : public FrameTable::PageIo {
 public:
  AuditingIo(InMemoryStore* store, ProtectionRecordingPlacement* placement,
             FrameTable** table)
      : inner_(store), placement_(placement), table_(table) {}

  Status Fetch(uint64_t key, void* buf) override {
    return inner_.Fetch(key, buf);
  }
  Status Write(uint64_t key, const void* buf) override {
    // The structural invariant: by the time I/O touches the bytes, the
    // placement has been told to make the frame readable.
    for (uint32_t f = 0; f < (*table_)->frame_count(); ++f) {
      if ((*table_)->meta(f)->page_key.load() == key) {
        EXPECT_FALSE(placement_->IsProtected(f))
            << "write-back of a protection-demoted frame (key " << key << ")";
        const uint64_t lsn = (*table_)->meta(f)->page_lsn.load();
        EXPECT_GE(wal_durable_.load(), lsn)
            << "page written before its WAL records were durable";
      }
    }
    writes_.fetch_add(1);
    return inner_.Write(key, buf);
  }
  Status EnsureWalDurable(uint64_t lsn) override {
    uint64_t cur = wal_durable_.load();
    while (lsn > cur && !wal_durable_.compare_exchange_weak(cur, lsn)) {
    }
    return Status::OK();
  }

  uint64_t writes() const { return writes_.load(); }

 private:
  StorePageIo inner_;
  ProtectionRecordingPlacement* placement_;
  FrameTable** table_;
  std::atomic<uint64_t> wal_durable_{0};
  std::atomic<uint64_t> writes_{0};
};

// A PageIo whose writes hold at a gate until the test opens it, recording
// how many writes ever ran concurrently — the probe for write-back
// exclusivity on a re-dirtied frame.
class GatedIo : public StorePageIo {
 public:
  explicit GatedIo(SegmentStore* store) : StorePageIo(store) {}

  Status Write(uint64_t key, const void* buf) override {
    const int now = in_write_.fetch_add(1) + 1;
    int max = max_concurrent_.load();
    while (now > max && !max_concurrent_.compare_exchange_weak(max, now)) {
    }
    {
      std::unique_lock<std::mutex> lk(gate_mu_);
      gate_cv_.wait(lk, [&] { return open_; });
    }
    writes_.fetch_add(1);
    const Status s = StorePageIo::Write(key, buf);
    in_write_.fetch_sub(1);
    return s;
  }

  void OpenGate() {
    {
      std::lock_guard<std::mutex> lk(gate_mu_);
      open_ = true;
    }
    gate_cv_.notify_all();
  }
  bool InWrite() const { return in_write_.load() > 0; }
  int max_concurrent() const { return max_concurrent_.load(); }
  int writes() const { return writes_.load(); }

 private:
  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  bool open_ = false;
  std::atomic<int> in_write_{0};
  std::atomic<int> max_concurrent_{0};
  std::atomic<int> writes_{0};
};

// A directory that can fail the next N installs (the shared SMT can return
// NoSpace), for the miss-path unwind test.
class FlakyDirectory : public FrameTable::Directory {
 public:
  uint32_t Lookup(uint64_t key) override {
    auto it = map_.find(key);
    return it == map_.end() ? kNoFrame : it->second;
  }
  Status Install(uint64_t key, uint32_t f) override {
    if (fail_installs_ > 0) {
      --fail_installs_;
      return Status::NoSpace("injected install failure");
    }
    map_[key] = f;
    return Status::OK();
  }
  void Erase(uint64_t key, uint32_t f) override {
    auto it = map_.find(key);
    if (it != map_.end() && it->second == f) map_.erase(it);
  }
  void FailNextInstalls(int n) { fail_installs_ = n; }

 private:
  std::unordered_map<uint64_t, uint32_t> map_;
  int fail_installs_ = 0;
};

// ---- state-machine legality -------------------------------------------------

TEST(FrameTableTest, WritebackAlwaysLiftsProtectionFirst) {
  InMemoryStore store;
  SeedStore(&store, 64);
  ProtectionRecordingPlacement placement(4);
  FrameTable* table_ptr = nullptr;
  AuditingIo io(&store, &placement, &table_ptr);
  FrameTable::Options opts;
  opts.frame_count = 4;
  FrameTable table(opts, &placement, &io);
  table_ptr = &table;
  ASSERT_TRUE(table.Init().ok());

  // Dirty every frame with rising LSNs, then churn far past capacity so
  // every eviction pays a sync write-back of a clock-demoted (= protected)
  // frame. AuditingIo fails the test if any write sees protection up.
  for (uint32_t p = 0; p < 32; ++p) {
    auto r = table.Fix(Key(p), /*for_write=*/true);
    ASSERT_TRUE(r.ok()) << r.status().message();
    ASSERT_TRUE(table.MarkDirty(r->frame, /*lsn=*/100 + p).ok());
  }
  ASSERT_TRUE(table.FlushDirty().ok());
  EXPECT_GT(io.writes(), 0u);
  EXPECT_GT(placement.prepare_calls(), 0u);

  const FrameTable::Stats stats = table.stats();
  EXPECT_EQ(stats.misses, 32u);
  EXPECT_GE(stats.evictions, 28u);
  EXPECT_GE(stats.sync_writebacks, 1u);
}

TEST(FrameTableTest, LifecycleStatesStayConsistent) {
  InMemoryStore store;
  SeedStore(&store, 16);
  HeapPlacement placement(4);
  StorePageIo io(&store);
  FrameTable::Options opts;
  opts.frame_count = 4;
  FrameTable table(opts, &placement, &io);
  ASSERT_TRUE(table.Init().ok());

  auto r = table.Fix(Key(1), /*for_write=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(table.meta(r->frame)->State(), FrameState::kClean);

  ASSERT_TRUE(table.MarkDirty(r->frame, 7).ok());
  EXPECT_EQ(table.meta(r->frame)->State(), FrameState::kDirty);
  EXPECT_EQ(table.meta(r->frame)->page_lsn.load(), 7u);

  ASSERT_TRUE(table.FlushDirty().ok());
  EXPECT_EQ(table.meta(r->frame)->State(), FrameState::kClean);

  ASSERT_TRUE(table.Invalidate(Key(1)).ok());
  EXPECT_EQ(table.meta(r->frame)->State(), FrameState::kFree);
  EXPECT_FALSE(table.Contains(Key(1)));

  // MarkDirty on an empty frame is an illegal transition.
  EXPECT_FALSE(table.MarkDirty(r->frame).ok());
}

// ---- pin / evict races ------------------------------------------------------

TEST(FrameTableTest, PinEvictRacesUnderEightThreads) {
  constexpr uint32_t kThreads = 8;
  constexpr uint32_t kPagesPerThread = 16;
  constexpr uint32_t kIters = 400;

  InMemoryStore store;
  SeedStore(&store, kThreads * kPagesPerThread);
  HeapPlacement placement(16);
  StorePageIo io(&store);
  FrameTable::Options opts;
  opts.frame_count = 16;
  FrameTable table(opts, &placement, &io);
  ASSERT_TRUE(table.Init().ok());

  std::atomic<uint32_t> corruptions{0};
  std::atomic<uint32_t> busies{0};
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(0xF1F0 + t);
      for (uint32_t i = 0; i < kIters; ++i) {
        const uint32_t page = t * kPagesPerThread +
                              static_cast<uint32_t>(
                                  rng.Uniform(kPagesPerThread));
        auto r = table.Fix(Key(page), /*for_write=*/false, /*pin=*/true);
        if (!r.ok()) {
          // All 16 frames transiently pinned by the other 7 threads is a
          // legal Busy; anything else is a bug.
          if (r.status().IsBusy()) {
            busies.fetch_add(1);
            continue;
          }
          ADD_FAILURE() << r.status().message();
          return;
        }
        // A pinned frame must hold its page while we read it.
        uint32_t got = 0;
        memcpy(&got, r->data, sizeof(got));
        if (got != page) corruptions.fetch_add(1);
        if (table.meta(r->frame)->page_key.load() != Key(page)) {
          corruptions.fetch_add(1);
        }
        EXPECT_TRUE(table.Unpin(r->frame).ok());
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(corruptions.load(), 0u);
  // Everything must be unpinned at the end; Clear would skip pinned frames.
  ASSERT_TRUE(table.Clear(/*flush=*/false).ok());
  for (uint32_t f = 0; f < table.frame_count(); ++f) {
    EXPECT_EQ(table.meta(f)->pins.load(), 0u);
    EXPECT_EQ(table.meta(f)->State(), FrameState::kFree);
  }
}

// ---- replacement quality ----------------------------------------------------

// The classic LRU-2 claim: a looping scan floods one-touch pages through
// the cache; CLOCK grants them reference bits, LRU-2 sees prev == never and
// victimizes them first, so the re-accessed hot set survives.
TEST(FrameTableTest, Lru2BeatsClockOnLoopingScanTrace) {
  constexpr uint32_t kFrames = 8;
  constexpr uint32_t kHot = 4;
  constexpr uint32_t kScan = 64;
  constexpr uint32_t kRounds = 40;

  auto run = [&](const std::string& policy) -> uint64_t {
    InMemoryStore store;
    SeedStore(&store, 128);
    HeapPlacement placement(kFrames);
    StorePageIo io(&store);
    FrameTable::Options opts;
    opts.frame_count = kFrames;
    opts.policy = policy;
    FrameTable table(opts, &placement, &io);
    EXPECT_TRUE(table.Init().ok());
    uint32_t scan_cursor = 0;
    for (uint32_t round = 0; round < kRounds; ++round) {
      // Hot pages touched twice per round: LRU-2 gets a real K-distance.
      for (uint32_t rep = 0; rep < 2; ++rep) {
        for (uint32_t h = 0; h < kHot; ++h) {
          EXPECT_TRUE(table.Fix(Key(1 + h), false).ok());
        }
      }
      // Looping scan: four one-touch pages per round from a wrapping range.
      for (uint32_t s = 0; s < 4; ++s) {
        const uint32_t page = 32 + (scan_cursor++ % kScan);
        EXPECT_TRUE(table.Fix(Key(page), false).ok());
      }
    }
    return table.stats().hits;
  };

  const uint64_t lru2_hits = run("lru2");
  const uint64_t clock_hits = run("clock");
  EXPECT_GT(lru2_hits, clock_hits)
      << "LRU-2 should protect the re-accessed hot set from the scan";
}

// ---- fault schedules (reusing the PR 1 injectors) ---------------------------

TEST(FrameTableTest, EvictionSurvivesInjectedWriteError) {
  InMemoryStore store;
  SeedStore(&store, 64);
  HeapPlacement placement(4);
  StorePageIo io(&store);
  FrameTable::Options opts;
  opts.frame_count = 4;
  FrameTable table(opts, &placement, &io);
  ASSERT_TRUE(table.Init().ok());

  for (uint32_t p = 0; p < 4; ++p) {
    auto r = table.Fix(Key(p), /*for_write=*/true);
    ASSERT_TRUE(r.ok());
    memcpy(r->data, PageBytes(100 + p).data(), kPageSize);
  }

  // The next eviction needs a sync write-back; make it fail once.
  store.FailNextWrites(1);
  auto r = table.Fix(Key(10), false);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError()) << r.status().message();

  // No data loss: the victim stayed dirty in cache; a retry succeeds and
  // every modified page eventually reaches the store intact.
  r = table.Fix(Key(10), false);
  ASSERT_TRUE(r.ok()) << r.status().message();
  ASSERT_TRUE(table.FlushDirty().ok());
  ASSERT_TRUE(table.Clear(/*flush=*/true).ok());
  for (uint32_t p = 0; p < 4; ++p) {
    std::string got(kPageSize, '\0');
    ASSERT_TRUE(store.FetchPages(1, 0, p, 1, got.data()).ok());
    uint32_t tag = 0;
    memcpy(&tag, got.data(), sizeof(tag));
    EXPECT_EQ(tag, 100 + p) << "page " << p << " lost its update";
  }
  fault::FaultRegistry::Instance().DisarmAll();
}

TEST(FrameTableTest, EvictionUnderBitRotScheduleStaysConsistent) {
  // A lying disk: the write-back "succeeds" but flips one bit (the PR 3
  // media-decay schedule). The frame core must not wedge — detection is the
  // checksummed storage layer's job; the lifecycle's job is that states,
  // directory and refetches stay coherent.
  class BitRotIo : public StorePageIo {
   public:
    explicit BitRotIo(SegmentStore* store) : StorePageIo(store) {}
    Status Write(uint64_t key, const void* buf) override {
      fault::FaultOutcome out = fault::FaultRegistry::Instance().EvaluateIo(
          "frametable.write", std::to_string(key), kPageSize);
      BESS_RETURN_IF_ERROR(out.status);
      if (out.bit_rot) {
        std::string rotten(static_cast<const char*>(buf), kPageSize);
        rotten[17] = static_cast<char>(rotten[17] ^ 0x20);
        return StorePageIo::Write(key, rotten.data());
      }
      return StorePageIo::Write(key, buf);
    }
  };

  InMemoryStore store;
  SeedStore(&store, 64);
  HeapPlacement placement(4);
  BitRotIo io(&store);
  FrameTable::Options opts;
  opts.frame_count = 4;
  FrameTable table(opts, &placement, &io);
  ASSERT_TRUE(table.Init().ok());

  fault::FaultSpec rot;
  rot.action = fault::FaultAction::kBitRot;
  rot.count = 1;
  fault::FaultRegistry::Instance().Arm("frametable.write", rot);

  ASSERT_TRUE(table.Fix(Key(0), /*for_write=*/true).ok());
  // Churn past capacity: page 0's write-back hits the armed bit-rot.
  for (uint32_t p = 1; p < 12; ++p) {
    auto r = table.Fix(Key(p), /*for_write=*/false);
    ASSERT_TRUE(r.ok()) << r.status().message();
  }
  EXPECT_EQ(fault::FaultRegistry::Instance().hits("frametable.write"), 1u);
  EXPECT_FALSE(table.Contains(Key(0)));

  // Refetch returns the store's (rotten) truth — exactly one bit off — and
  // the table keeps serving it as a normal clean frame.
  auto r = table.Fix(Key(0), /*for_write=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(table.meta(r->frame)->State(), FrameState::kClean);
  EXPECT_EQ(static_cast<char*>(r->data)[17], '\0' ^ 0x20);
  fault::FaultRegistry::Instance().DisarmAll();
}

// ---- bgwriter ---------------------------------------------------------------

TEST(FrameTableTest, BgwriterCleansAheadSoEvictionsSkipSyncWriteback) {
  InMemoryStore store;
  SeedStore(&store, 64);
  HeapPlacement placement(8);
  StorePageIo io(&store);
  FrameTable::Options opts;
  opts.frame_count = 8;
  opts.enable_bgwriter = true;
  opts.bgwriter_interval_ms = 1;
  FrameTable table(opts, &placement, &io);
  ASSERT_TRUE(table.Init().ok());

  for (uint32_t p = 0; p < 8; ++p) {
    auto r = table.Fix(Key(p), /*for_write=*/true);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(table.MarkDirty(r->frame, p + 1).ok());
  }
  // Wait for the flush-ahead to clean everything.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (table.stats().bgwriter_flushed >= 8) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(table.stats().bgwriter_flushed, 8u) << "bgwriter never caught up";

  // With clean victims available, misses must not pay sync write-back.
  for (uint32_t p = 8; p < 16; ++p) {
    ASSERT_TRUE(table.Fix(Key(p), /*for_write=*/false).ok());
  }
  const FrameTable::Stats stats = table.stats();
  EXPECT_EQ(stats.sync_writebacks, 0u);
  EXPECT_GE(stats.bgwriter_rounds, 1u);
  EXPECT_EQ(store.pages_fetched(), 16u);
}

// ---- prefetch ---------------------------------------------------------------

TEST(FrameTableTest, SequentialMissesTriggerReadAheadAndScoreHits) {
  InMemoryStore store;
  SeedStore(&store, 64);
  HeapPlacement placement(16);
  StorePageIo io(&store);
  FrameTable::Options opts;
  opts.frame_count = 16;
  opts.enable_prefetch = true;
  opts.prefetch_trigger = 3;
  opts.prefetch_window = 4;
  FrameTable table(opts, &placement, &io);
  ASSERT_TRUE(table.Init().ok());

  // Establish a sequential run, then give the background thread time to
  // stage the read-ahead window.
  for (uint32_t p = 0; p < 3; ++p) {
    ASSERT_TRUE(table.Fix(Key(p), false).ok());
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (table.stats().prefetch_issued >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(table.stats().prefetch_issued, 1u) << "read-ahead never issued";

  // The staged pages are already resident: demanding them scores prefetch
  // hits without demand misses. (Total store fetches may still grow — each
  // hit re-feeds the detector, which keeps the read-ahead pipeline running.)
  const uint64_t misses_before = table.stats().misses;
  uint32_t p = 3;
  for (; p < 3 + opts.prefetch_window; ++p) {
    if (!table.Contains(Key(p))) break;
    auto r = table.Fix(Key(p), false);
    ASSERT_TRUE(r.ok());
    uint32_t got = 0;
    memcpy(&got, r->data, sizeof(got));
    EXPECT_EQ(got, p) << "prefetched frame holds wrong bytes";
  }
  EXPECT_GT(p, 3u) << "no prefetched page was resident";
  const FrameTable::Stats stats = table.stats();
  EXPECT_GE(stats.prefetch_hits, 1u);
  EXPECT_EQ(stats.misses, misses_before);
}

TEST(FrameTableTest, WastedPrefetchesAreCountedOnEviction) {
  InMemoryStore store;
  SeedStore(&store, 128);
  HeapPlacement placement(8);
  StorePageIo io(&store);
  FrameTable::Options opts;
  opts.frame_count = 8;
  opts.enable_prefetch = true;
  opts.prefetch_trigger = 2;
  opts.prefetch_window = 4;
  FrameTable table(opts, &placement, &io);
  ASSERT_TRUE(table.Init().ok());

  ASSERT_TRUE(table.Fix(Key(0), false).ok());
  ASSERT_TRUE(table.Fix(Key(1), false).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (table.stats().prefetch_issued >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(table.stats().prefetch_issued, 1u);

  // Abandon the run: churn unrelated pages (stride 3 so the detector never
  // sees a new sequence) until the speculative frames recycle. Undemanded
  // loads must be charged as wasted, never as hits.
  for (uint32_t p = 40; p < 100; p += 3) {
    ASSERT_TRUE(table.Fix(Key(p), false).ok());
  }
  const FrameTable::Stats stats = table.stats();
  EXPECT_GE(stats.prefetch_wasted, 1u);
  EXPECT_EQ(stats.prefetch_hits, 0u);
}

// ---- write-back exclusivity -------------------------------------------------

// A frame re-dirtied while its write-back is in flight must not enter a
// second concurrent write-back (the two finalize CASes would alias and the
// frame could go clean — then evicted and reused — mid-I/O), and must not
// be evictable until the in-flight writer lands.
TEST(FrameTableTest, RedirtyDuringWritebackCannotDoubleWrite) {
  InMemoryStore store;
  SeedStore(&store, 8);
  HeapPlacement placement(4);
  GatedIo io(&store);
  FrameTable::Options opts;
  opts.frame_count = 4;
  FrameTable table(opts, &placement, &io);
  ASSERT_TRUE(table.Init().ok());

  auto r = table.Fix(Key(0), /*for_write=*/true);
  ASSERT_TRUE(r.ok());
  const uint32_t f = r->frame;
  memcpy(r->data, PageBytes(111).data(), kPageSize);
  ASSERT_TRUE(table.MarkDirty(f, /*lsn=*/1).ok());

  // Flusher 1 blocks at the gate with its write-back claimed.
  std::thread flusher1([&] { EXPECT_TRUE(table.FlushDirty().ok()); });
  while (!io.InWrite()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Re-dirty mid-flight (kWriting → kDirty) with fresh bytes, then race a
  // second flusher and an invalidate against the in-flight write.
  memcpy(table.frame_data(f), PageBytes(222).data(), kPageSize);
  ASSERT_TRUE(table.MarkDirty(f, /*lsn=*/2).ok());
  std::thread flusher2([&] { EXPECT_TRUE(table.FlushDirty().ok()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(io.max_concurrent(), 1)
      << "two write-backs of one frame ran concurrently";
  // The frame's bytes are still being read by the in-flight I/O: it must
  // refuse to leave the cache.
  EXPECT_TRUE(table.Invalidate(Key(0)).IsBusy());

  io.OpenGate();
  flusher1.join();
  flusher2.join();

  // Writer 1 carried the stale image, so its finalize left the frame dirty
  // and writer 2 re-wrote it: exactly two writes, never overlapping, and
  // the store ends at the newest version.
  EXPECT_EQ(io.max_concurrent(), 1);
  EXPECT_EQ(io.writes(), 2);
  EXPECT_EQ(table.meta(f)->State(), FrameState::kClean);
  EXPECT_EQ(table.meta(f)->writer.load(), 0u);
  std::string got(kPageSize, '\0');
  ASSERT_TRUE(store.FetchPages(1, 0, 0, 1, got.data()).ok());
  uint32_t tag = 0;
  memcpy(&tag, got.data(), sizeof(tag));
  EXPECT_EQ(tag, 222u) << "stale write-back image won over the re-dirty";
}

// ---- invalidate / miss-path unwind ------------------------------------------

TEST(FrameTableTest, InvalidateWritesBackDirtyFramesFirst) {
  InMemoryStore store;
  SeedStore(&store, 8);
  HeapPlacement placement(4);
  StorePageIo io(&store);
  FrameTable::Options opts;
  opts.frame_count = 4;
  FrameTable table(opts, &placement, &io);
  ASSERT_TRUE(table.Init().ok());

  auto r = table.Fix(Key(3), /*for_write=*/true);
  ASSERT_TRUE(r.ok());
  memcpy(r->data, PageBytes(77).data(), kPageSize);
  ASSERT_TRUE(table.MarkDirty(r->frame, /*lsn=*/5).ok());

  ASSERT_TRUE(table.Invalidate(Key(3)).ok());
  EXPECT_FALSE(table.Contains(Key(3)));
  // The modified page reached the store instead of being dropped.
  std::string got(kPageSize, '\0');
  ASSERT_TRUE(store.FetchPages(1, 0, 3, 1, got.data()).ok());
  uint32_t tag = 0;
  memcpy(&tag, got.data(), sizeof(tag));
  EXPECT_EQ(tag, 77u) << "Invalidate discarded a dirty frame";
}

TEST(FrameTableTest, InstallFailureDoesNotLeakTheFrame) {
  InMemoryStore store;
  SeedStore(&store, 8);
  HeapPlacement placement(1);
  StorePageIo io(&store);
  FlakyDirectory dir;
  FrameTable::Options opts;
  opts.frame_count = 1;
  opts.directory = &dir;
  FrameTable table(opts, &placement, &io);
  ASSERT_TRUE(table.Init().ok());

  dir.FailNextInstalls(1);
  auto r = table.Fix(Key(0), /*for_write=*/false);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNoSpace()) << r.status().message();

  // With a single frame, a frame leaked in kLoading would make every later
  // miss return Busy forever; the retry must get the frame back.
  r = table.Fix(Key(0), /*for_write=*/false);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(table.meta(r->frame)->State(), FrameState::kClean);
  uint32_t got = 0;
  memcpy(&got, r->data, sizeof(got));
  EXPECT_EQ(got, 0u);
}

// ---- shared-mode restrictions -----------------------------------------------

// Prefetch installs directory entries from the background thread without
// the cross-process serialization (SMT latch) the miss path uses, so it is
// rejected outright for tables with an external directory.
// ---- pressure-wait wakeup (missed-wakeup regression) ------------------------

// The urgent-mode pressure wait used to be a bare timed sleep: if the last
// unpinned dirty frame got pinned (or evicted) mid-wait, the waiter slept
// out the full slice even though waiting had become futile. The wait is now
// a predicate wait and both transitions notify cleaned_cv_; this pins the
// wakeup with an enlarged slice so a regression is a visible stall, and
// rides the tsan preset via the `cache` label for the race side.
TEST(FrameTableTest, PressureWaitWakesWhenLastDirtyFrameGetsPinned) {
  InMemoryStore store;
  SeedStore(&store, 16);
  HeapPlacement placement(2);
  StorePageIo io(&store);
  FrameTable::Options opts;
  opts.frame_count = 2;
  opts.enable_bgwriter = true;
  opts.bgwriter_interval_ms = 60 * 1000;  // only urgent kicks run it
  opts.bgwriter_wait_slice_ms = 2000;     // a missed wakeup = visible stall
  FrameTable table(opts, &placement, &io);
  ASSERT_TRUE(table.Init().ok());

  // Frame A: dirty and pinned. Frame B: dirty, unpinned — the only frame
  // the bgwriter could ever mint a victim from.
  auto a = table.Fix(Key(0), /*for_write=*/true, /*pin=*/true);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(table.MarkDirty(a->frame, 1).ok());
  auto b = table.Fix(Key(1), /*for_write=*/true);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(table.MarkDirty(b->frame, 2).ok());

  // Every write-back fails: B stays dirty no matter how hard the urgent
  // flush tries, so only the pin-side wakeup can release the waiter.
  fault::FaultSpec always_fail;
  always_fail.count = -1;
  fault::FaultRegistry::Instance().Arm("memstore.write", always_fail);

  Status t1_status;
  std::chrono::milliseconds t1_elapsed{0};
  std::thread t1([&] {
    const auto t0 = std::chrono::steady_clock::now();
    t1_status = table.Fix(Key(9), false).status();
    t1_elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - t0);
  });

  // Once T1 is inside the pressure wait, pin B: now nothing is cleanable
  // and waiting is futile — T1 must return Busy without sleeping the slice.
  while (table.stats().pressure_waits == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto b2 = table.Fix(Key(1), false, /*pin=*/true);
  ASSERT_TRUE(b2.ok());
  t1.join();
  fault::FaultRegistry::Instance().DisarmAll();

  EXPECT_TRUE(t1_status.IsBusy()) << t1_status.message();
  EXPECT_LT(t1_elapsed.count(), 1500)
      << "pressure waiter slept out the enlarged slice: missed wakeup";
  ASSERT_TRUE(table.Unpin(a->frame).ok());
  ASSERT_TRUE(table.Unpin(b2->frame).ok());
  table.Stop();
}

// ---- async pipeline ---------------------------------------------------------

class WalGateCountingIo : public StorePageIo {
 public:
  explicit WalGateCountingIo(SegmentStore* store) : StorePageIo(store) {}
  Status EnsureWalDurable(uint64_t lsn) override {
    (void)lsn;
    gates_.fetch_add(1);
    return Status::OK();
  }
  uint64_t gates() const { return gates_.load(); }

 private:
  std::atomic<uint64_t> gates_{0};
};

// An async bgwriter batch pays ONE WAL durability gate for the whole batch
// (max LSN), not one per page — the write-amplification win the tentpole is
// after. Foreground evictions must still never pay sync write-back.
TEST(FrameTableTest, AsyncBgwriterBatchesPayOneWalGatePerBatch) {
  InMemoryStore store;
  SeedStore(&store, 64);
  WalGateCountingIo io(&store);
  AsyncPageIoOptions aopts;
  aopts.backend = "pool";
  auto aio_io = MakeAsyncPageIo(aopts, &io, nullptr);
  ASSERT_TRUE(aio_io.ok());

  HeapPlacement placement(8);
  FrameTable::Options opts;
  opts.frame_count = 8;
  opts.enable_bgwriter = true;
  opts.bgwriter_interval_ms = 1;
  opts.async_io = aio_io->get();
  opts.async_queue_depth = 16;
  FrameTable table(opts, &placement, &io);
  ASSERT_TRUE(table.Init().ok());

  for (uint32_t p = 0; p < 8; ++p) {
    auto r = table.Fix(Key(p), /*for_write=*/true);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(table.MarkDirty(r->frame, p + 1).ok());
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (table.stats().bgwriter_flushed >= 8) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  FrameTable::Stats stats = table.stats();
  ASSERT_GE(stats.bgwriter_flushed, 8u) << "async bgwriter never caught up";
  EXPECT_GE(stats.async_flush_batches, 1u);
  EXPECT_EQ(io.gates(), stats.async_flush_batches)
      << "expected exactly one WAL gate per async flush batch";
  EXPECT_LT(io.gates(), stats.bgwriter_flushed)
      << "gate per page means batching bought nothing";

  // Clean victims exist; misses must not pay sync write-back.
  for (uint32_t p = 8; p < 16; ++p) {
    ASSERT_TRUE(table.Fix(Key(p), false).ok());
  }
  EXPECT_EQ(table.stats().sync_writebacks, 0u);
  table.Stop();
}

// cache.prefetch.wasted must charge a speculative frame exactly once even
// when its completion is reordered behind later ones: issued loads are
// eventually scored as exactly one of {hit, wasted, still resident}.
TEST(FrameTableTest, PrefetchWastedCountedExactlyOnceUnderReorder) {
  InMemoryStore store;
  SeedStore(&store, 256);
  StorePageIo io(&store);
  AsyncPageIoOptions aopts;
  aopts.backend = "pool";
  auto aio_io = MakeAsyncPageIo(aopts, &io, nullptr);
  ASSERT_TRUE(aio_io.ok());

  HeapPlacement placement(8);
  FrameTable::Options opts;
  opts.frame_count = 8;
  opts.enable_prefetch = true;
  opts.prefetch_trigger = 2;
  opts.prefetch_window = 4;
  opts.async_io = aio_io->get();
  opts.async_queue_depth = 4;
  FrameTable table(opts, &placement, &io);
  ASSERT_TRUE(table.Init().ok());

  fault::FaultSpec reorder;
  reorder.probability = 0.5;
  reorder.count = -1;
  reorder.seed = 42;
  fault::FaultRegistry::Instance().Arm("aio.reorder", reorder);

  ASSERT_TRUE(table.Fix(Key(0), false).ok());
  ASSERT_TRUE(table.Fix(Key(1), false).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (table.stats().prefetch_issued >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(table.stats().prefetch_issued, 1u) << "read-ahead never issued";

  // Abandon the run and churn unrelated pages so the speculative frames
  // recycle while reordered completions are still in flight.
  for (uint32_t p = 40; p < 130; p += 3) {
    ASSERT_TRUE(table.Fix(Key(p), false).ok());
  }
  fault::FaultRegistry::Instance().DisarmAll();
  table.Stop();

  // No frame may be stranded mid-load, and the prefetch ledger must balance
  // exactly: every issued load is a hit, a waste, or still resident — a
  // double-counted or leaked waste breaks the identity.
  uint32_t still_resident = 0;
  for (uint32_t f = 0; f < opts.frame_count; ++f) {
    EXPECT_NE(table.meta(f)->State(), FrameState::kLoading)
        << "frame " << f << " leaked in kLoading after Stop";
    if (table.meta(f)->prefetched.load() != 0) ++still_resident;
  }
  const FrameTable::Stats stats = table.stats();
  EXPECT_EQ(stats.prefetch_issued,
            stats.prefetch_hits + stats.prefetch_wasted + still_resident);
}

TEST(FrameTableTest, PrefetchIsRejectedForCrossProcessDirectories) {
  InMemoryStore store;
  HeapPlacement placement(4);
  StorePageIo io(&store);
  FlakyDirectory dir;
  FrameTable::Options opts;
  opts.frame_count = 4;
  opts.directory = &dir;
  opts.enable_prefetch = true;
  FrameTable table(opts, &placement, &io);
  const Status s = table.Init();
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

}  // namespace
}  // namespace bess
