// Tests for type descriptors and the per-database type table (§2.1).
#include <gtest/gtest.h>

#include "object/oid.h"
#include "segment/type_descriptor.h"

namespace bess {
namespace {

TEST(TypeTableTest, RawBytesTypeIsBuiltIn) {
  TypeTable table;
  EXPECT_EQ(table.size(), 1u);
  auto raw = table.Get(kRawBytesType);
  ASSERT_TRUE(raw.ok());
  EXPECT_TRUE((*raw)->ref_offsets.empty());
}

TEST(TypeTableTest, RegisterAssignsStableIndices) {
  TypeTable table;
  TypeDescriptor a;
  a.name = "A";
  a.fixed_size = 24;
  a.ref_offsets = {0, 8};
  TypeDescriptor b;
  b.name = "B";
  b.fixed_size = 16;
  auto ia = table.Register(a);
  auto ib = table.Register(b);
  ASSERT_TRUE(ia.ok() && ib.ok());
  EXPECT_NE(*ia, *ib);
  // Re-registration with the same shape returns the same index.
  auto again = table.Register(a);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *ia);
  // ...but a different shape under the same name is rejected.
  a.fixed_size = 32;
  EXPECT_TRUE(table.Register(a).status().IsInvalidArgument());
}

TEST(TypeTableTest, ValidatesRefOffsets) {
  TypeTable table;
  TypeDescriptor bad;
  bad.name = "bad";
  bad.fixed_size = 16;
  bad.ref_offsets = {4};  // misaligned
  EXPECT_TRUE(table.Register(bad).status().IsInvalidArgument());
  bad.ref_offsets = {16};  // beyond the object
  EXPECT_TRUE(table.Register(bad).status().IsInvalidArgument());
  bad.ref_offsets = {8};
  EXPECT_TRUE(table.Register(bad).ok());
  TypeDescriptor anon;
  EXPECT_TRUE(table.Register(anon).status().IsInvalidArgument());
}

TEST(TypeTableTest, FindByName) {
  TypeTable table;
  TypeDescriptor t;
  t.name = "Widget";
  t.fixed_size = 8;
  auto idx = table.Register(t);
  ASSERT_TRUE(idx.ok());
  auto found = table.Find("Widget");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *idx);
  EXPECT_TRUE(table.Find("Gadget").status().IsNotFound());
  EXPECT_TRUE(table.Get(999).status().IsNotFound());
}

TEST(TypeTableTest, EncodeDecodeRoundTrip) {
  TypeTable table;
  for (int i = 0; i < 5; ++i) {
    TypeDescriptor t;
    t.name = "T" + std::to_string(i);
    t.fixed_size = static_cast<uint32_t>(16 * (i + 1));
    for (int r = 0; r < i; ++r) t.ref_offsets.push_back(8 * r);
    ASSERT_TRUE(table.Register(t).ok());
  }
  std::string blob;
  table.EncodeTo(&blob);

  TypeTable restored;
  Decoder dec(blob);
  ASSERT_TRUE(restored.DecodeFrom(&dec).ok());
  EXPECT_EQ(restored.size(), table.size());
  for (int i = 0; i < 5; ++i) {
    auto idx = restored.Find("T" + std::to_string(i));
    ASSERT_TRUE(idx.ok());
    auto desc = restored.Get(*idx);
    ASSERT_TRUE(desc.ok());
    EXPECT_EQ((*desc)->fixed_size, static_cast<uint32_t>(16 * (i + 1)));
    EXPECT_EQ((*desc)->ref_offsets.size(), static_cast<size_t>(i));
  }
}

TEST(TypeTableTest, DecodeRejectsGarbage) {
  TypeTable table;
  Decoder dec(Slice("nonsense"));
  EXPECT_FALSE(table.DecodeFrom(&dec).ok());
}

TEST(OidTest, EncodeDecodeRoundTrip) {
  Oid oid;
  oid.host = 1234;
  oid.db = 7;
  oid.area = 3;
  oid.page = 0xDEADBEEF;
  oid.slot = 512;
  oid.uniq = 999;
  char buf[12];
  oid.EncodeTo(buf);
  Oid back = Oid::DecodeFrom(buf);
  EXPECT_EQ(back, oid);
  EXPECT_EQ(back.segment(), (SegmentId{7, 3, 0xDEADBEEF}));
  EXPECT_TRUE(back.valid());
  EXPECT_FALSE(Oid{}.valid());
}

TEST(OidTest, HashSpreadsAndMatchesEquality) {
  OidHash hasher;
  Oid a;
  a.page = 1;
  a.slot = 2;
  Oid b = a;
  EXPECT_EQ(hasher(a), hasher(b));
  b.uniq = 1;
  EXPECT_FALSE(a == b);
  std::set<size_t> hashes;
  for (uint32_t p = 0; p < 100; ++p) {
    Oid o;
    o.page = p;
    hashes.insert(hasher(o));
  }
  EXPECT_GT(hashes.size(), 95u);
}

TEST(OidTest, ToStringIsReadable) {
  Oid oid;
  oid.host = 1;
  oid.db = 2;
  oid.area = 3;
  oid.page = 4;
  oid.slot = 5;
  oid.uniq = 6;
  EXPECT_EQ(oid.ToString(), "oid(1:2:3:4:5#6)");
}

}  // namespace
}  // namespace bess
