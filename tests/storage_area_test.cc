// Tests for storage areas: extent growth, allocation persistence, page I/O.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "storage/storage_area.h"
#include "util/random.h"

namespace bess {
namespace {

class StorageAreaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bess_area_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(StorageAreaTest, CreateAllocateReadWrite) {
  auto area = StorageArea::Create(Path("a1"), 7);
  ASSERT_TRUE(area.ok()) << area.status().ToString();
  EXPECT_EQ((*area)->area_id(), 7);
  EXPECT_EQ((*area)->extent_count(), 1u);

  auto seg = (*area)->AllocSegment(4);
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ(seg->page_count, 4u);

  std::string data(4 * kPageSize, '\0');
  Random rng(1);
  for (auto& c : data) c = static_cast<char>(rng.Next());
  ASSERT_TRUE((*area)->WritePages(seg->first_page, 4, data.data()).ok());

  std::string back(4 * kPageSize, '\0');
  ASSERT_TRUE((*area)->ReadPages(seg->first_page, 4, back.data()).ok());
  EXPECT_EQ(data, back);
}

TEST_F(StorageAreaTest, GrowsOneExtentAtATime) {
  auto area = StorageArea::Create(Path("a2"), 1);
  ASSERT_TRUE(area.ok());
  // Exhaust the first extent.
  for (uint32_t i = 0; i < kPagesPerExtent / 64; ++i) {
    ASSERT_TRUE((*area)->AllocSegment(64).ok());
  }
  EXPECT_EQ((*area)->extent_count(), 1u);
  // Next allocation forces growth by exactly one extent (paper §2).
  auto seg = (*area)->AllocSegment(64);
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ((*area)->extent_count(), 2u);
  EXPECT_GE(seg->first_page, kPagesPerExtent);
}

TEST_F(StorageAreaTest, AllocationSurvivesReopen) {
  DiskSegment s1, s2;
  std::string payload(2 * kPageSize, 'x');
  {
    auto area = StorageArea::Create(Path("a3"), 3);
    ASSERT_TRUE(area.ok());
    auto r1 = (*area)->AllocSegment(2);
    auto r2 = (*area)->AllocSegment(8);
    ASSERT_TRUE(r1.ok() && r2.ok());
    s1 = *r1;
    s2 = *r2;
    ASSERT_TRUE((*area)->WritePages(s1.first_page, 2, payload.data()).ok());
    ASSERT_TRUE((*area)->Sync().ok());
  }
  auto area = StorageArea::Open(Path("a3"));
  ASSERT_TRUE(area.ok()) << area.status().ToString();
  EXPECT_EQ((*area)->area_id(), 3);
  // Previously allocated blocks are still known.
  EXPECT_EQ((*area)->SegmentPages(s1.first_page), 2u);
  EXPECT_EQ((*area)->SegmentPages(s2.first_page), 8u);
  // Their data is intact.
  std::string back(2 * kPageSize, '\0');
  ASSERT_TRUE((*area)->ReadPages(s1.first_page, 2, back.data()).ok());
  EXPECT_EQ(back, payload);
  // New allocations do not overlap the old ones.
  auto r3 = (*area)->AllocSegment(2);
  ASSERT_TRUE(r3.ok());
  EXPECT_NE(r3->first_page, s1.first_page);
  EXPECT_NE(r3->first_page, s2.first_page);
  // Freeing persists too.
  ASSERT_TRUE((*area)->FreeSegment(s2.first_page).ok());
  EXPECT_EQ((*area)->SegmentPages(s2.first_page), 0u);
}

TEST_F(StorageAreaTest, RejectsCrossExtentIO) {
  auto area = StorageArea::Create(Path("a4"), 2);
  ASSERT_TRUE(area.ok());
  std::string buf(2 * kPageSize, '\0');
  EXPECT_TRUE((*area)
                  ->ReadPages(kPagesPerExtent - 1, 2, buf.data())
                  .IsInvalidArgument());
  EXPECT_TRUE((*area)
                  ->WritePages(kPagesPerExtent - 1, 2, buf.data())
                  .IsInvalidArgument());
}

TEST_F(StorageAreaTest, RejectsOversizedSegment) {
  auto area = StorageArea::Create(Path("a5"), 1);
  ASSERT_TRUE(area.ok());
  EXPECT_TRUE(
      (*area)->AllocSegment(kPagesPerExtent + 1).status().IsInvalidArgument());
  EXPECT_TRUE((*area)->AllocSegment(0).status().IsInvalidArgument());
}

TEST_F(StorageAreaTest, OpenRejectsGarbageFile) {
  std::string path = Path("junk");
  {
    auto f = File::Open(path);
    ASSERT_TRUE(f.ok());
    std::string junk(kPageSize, 'j');
    ASSERT_TRUE(f->WriteAt(0, junk.data(), junk.size()).ok());
  }
  EXPECT_TRUE(StorageArea::Open(path).status().IsCorruption());
  EXPECT_TRUE(StorageArea::Open(Path("nonexistent")).status().IsIOError());
}

TEST_F(StorageAreaTest, FreePagesAndFragmentationTracked) {
  auto area = StorageArea::Create(Path("a6"), 1);
  ASSERT_TRUE(area.ok());
  EXPECT_EQ((*area)->FreePages(), kPagesPerExtent);
  auto seg = (*area)->AllocSegment(32);
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ((*area)->FreePages(), kPagesPerExtent - 32);
  EXPECT_GE((*area)->Fragmentation(), 0.0);
  EXPECT_LE((*area)->Fragmentation(), 1.0);
}

TEST_F(StorageAreaTest, PageAddrPackUnpack) {
  PageAddr a{12, 34, 0xDEADBEEF};
  PageAddr b = PageAddr::Unpack(a.Pack());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace bess
