// Concurrency suite (ctest label "concurrency"; run under the tsan preset).
//
// Three angles on the unserialized commit path:
//
//   1. A multi-threaded commit storm killed with SIGKILL mid-flight: group
//      commit must not weaken durability — every acknowledged commit
//      survives recovery, and no thread's counter exceeds what it attempted.
//   2. The sharded lock table: disjoint keys never wait on each other, and
//      a contention storm on one key starves nobody (timeout-free under a
//      generous bound).
//   3. The grant/reap race: while the callback-timeout reaper tears down an
//      unresponsive holder, two concurrent waiters on *different* locks of
//      that holder must both be granted — the reap frees the whole lock set
//      and wakes every parked waiter, not just the one whose callback timed
//      out.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "object/database.h"
#include "os/fault_injection.h"
#include "server/bess_server.h"
#include "server/remote_client.h"
#include "txn/lock_manager.h"

namespace bess {
namespace {

// ---------------------------------------------------------------------------
// 1. Commit storm + SIGKILL durability.
// ---------------------------------------------------------------------------

constexpr int kStormThreads = 4;
constexpr uint32_t kStormObjectSize = 512;
constexpr int kStormTxnsPerThread = 400;  // bound if the parent is slow

struct StormRecord {
  uint64_t tag;    // thread*2 + (0 = attempting, 1 = acknowledged)
  uint64_t value;  // the counter value in question
};

std::string StormRoot(int i) { return "storm_" + std::to_string(i); }

// Child workload: kStormThreads threads, each committing increments of its
// own object (own file -> own segment -> disjoint pages), reporting each
// attempt and each acknowledged commit through the pipe. Records are 16
// bytes (< PIPE_BUF), so concurrent writes never interleave.
[[noreturn]] void RunStormChild(const std::string& dir, int report_fd) {
  Database::Options o;
  o.dir = dir;
  o.create = false;
  auto dbr = Database::Open(o);
  if (!dbr.ok()) ::_exit(2);
  Database* db = dbr->get();

  std::vector<std::thread> threads;
  for (int t = 0; t < kStormThreads; ++t) {
    threads.emplace_back([db, t, report_fd] {
      for (uint64_t next = 1;
           next <= static_cast<uint64_t>(kStormTxnsPerThread); ++next) {
        auto txn = db->Begin();
        if (!txn.ok()) ::_exit(3);
        auto slot = db->GetRoot(StormRoot(t));
        if (!slot.ok()) ::_exit(3);
        StormRecord attempt{static_cast<uint64_t>(t) * 2, next};
        if (::write(report_fd, &attempt, sizeof(attempt)) !=
            sizeof(attempt)) {
          ::_exit(3);
        }
        char* body = reinterpret_cast<char*>((*slot)->dp);
        memset(body, static_cast<char>('A' + next % 26), kStormObjectSize);
        memcpy(body, &next, sizeof(next));
        if (!db->Commit(*txn).ok()) ::_exit(3);
        StormRecord acked{static_cast<uint64_t>(t) * 2 + 1, next};
        if (::write(report_fd, &acked, sizeof(acked)) != sizeof(acked)) {
          ::_exit(3);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ::_exit(0);  // the parent never got around to killing us: still verified
}

class CommitStormTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bess_storm_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(CommitStormTest, AckedCommitsSurviveSigkill) {
  {  // Seed: one object per storm thread, each in its own file.
    Database::Options o;
    o.dir = dir_.string();
    o.create = true;
    auto dbr = Database::Open(o);
    ASSERT_TRUE(dbr.ok()) << dbr.status().ToString();
    auto db = std::move(*dbr);
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    std::string body(kStormObjectSize, 'A');
    uint64_t zero = 0;
    memcpy(body.data(), &zero, sizeof(zero));
    for (int t = 0; t < kStormThreads; ++t) {
      auto file = db->CreateFile("storm_f" + std::to_string(t));
      ASSERT_TRUE(file.ok());
      auto slot =
          db->CreateObject(*file, kRawBytesType, kStormObjectSize, body.data());
      ASSERT_TRUE(slot.ok());
      ASSERT_TRUE(db->SetRoot(StormRoot(t), *slot).ok());
    }
    ASSERT_TRUE(db->Commit(*txn).ok());
  }

  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);
  const pid_t pid = ::fork();  // parent is single-threaded here (tsan-safe)
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(pipefd[0]);
    RunStormChild(dir_.string(), pipefd[1]);
  }
  ::close(pipefd[1]);

  // Let the storm get going, then kill it mid-commit with no unwind. Keep
  // draining the pipe afterwards: anything buffered was still acknowledged.
  uint64_t attempted[kStormThreads] = {0};
  uint64_t acked[kStormThreads] = {0};
  uint64_t total_acks = 0;
  bool killed = false;
  StormRecord rec;
  for (;;) {
    const ssize_t n = ::read(pipefd[0], &rec, sizeof(rec));
    if (n != sizeof(rec)) break;  // EOF: child is gone
    const int t = static_cast<int>(rec.tag / 2);
    ASSERT_LT(t, kStormThreads);
    if (rec.tag % 2 == 0) {
      attempted[t] = std::max(attempted[t], rec.value);
    } else {
      acked[t] = std::max(acked[t], rec.value);
      ++total_acks;
    }
    if (!killed && total_acks >= 40) {
      ::kill(pid, SIGKILL);
      killed = true;
    }
  }
  ::close(pipefd[0]);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  const bool died = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
  const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  ASSERT_TRUE(died || clean) << "storm child failed, status=" << status;
  EXPECT_GT(total_acks, 0u) << "storm never committed anything";

  // Reopen (recovery runs) and hold group commit to its durability
  // contract, per thread: acked <= recovered <= attempted.
  Database::Options o;
  o.dir = dir_.string();
  o.create = false;
  auto dbr = Database::Open(o);
  ASSERT_TRUE(dbr.ok()) << "recovery failed: " << dbr.status().ToString();
  auto db = std::move(*dbr);
  for (int t = 0; t < kStormThreads; ++t) {
    auto slot = db->GetRoot(StormRoot(t));
    ASSERT_TRUE(slot.ok()) << "root lost for thread " << t;
    const char* body = reinterpret_cast<const char*>((*slot)->dp);
    uint64_t v = 0;
    memcpy(&v, body, sizeof(v));
    EXPECT_GE(v, acked[t]) << "durability hole: thread " << t << " acked "
                           << acked[t] << " but recovered " << v;
    EXPECT_LE(v, attempted[t]) << "phantom commit at thread " << t;
    if (v > 0) {
      // The fill must match the counter: no torn page survived recovery.
      const char want = static_cast<char>('A' + v % 26);
      EXPECT_EQ(body[sizeof(uint64_t)], want) << "torn page, thread " << t;
      EXPECT_EQ(body[kStormObjectSize - 1], want) << "torn tail, thread " << t;
    }
  }
}

// ---------------------------------------------------------------------------
// 2. Sharded lock table.
// ---------------------------------------------------------------------------

// Threads locking disjoint keys must never wait: the shard partitioning
// (not one table-wide mutex) is what makes every grant immediate.
TEST(LockShardTest, DisjointKeysNeverWait) {
  LockManager lm;
  constexpr int kThreads = 16;
  constexpr int kRounds = 200;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&lm, &failures, t] {
      const TxnId txn = static_cast<TxnId>(t) + 1;
      for (int r = 0; r < kRounds; ++r) {
        const uint64_t key =
            LockKey::Page(1, 0, static_cast<uint32_t>(t * kRounds + r));
        if (!lm.Acquire(txn, key, LockMode::kX, 1000).ok()) {
          failures.fetch_add(1);
        }
        lm.ReleaseAll(txn);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const LockStats stats = lm.stats();
  EXPECT_EQ(stats.acquires, static_cast<uint64_t>(kThreads) * kRounds);
  EXPECT_EQ(stats.immediate_grants, stats.acquires)
      << "disjoint keys serialized on each other";
  EXPECT_EQ(stats.waits, 0u);
  EXPECT_EQ(stats.timeouts, 0u);
}

// Fairness under contention: everyone hammering one hot key gets through
// within a generous timeout — a starved waiter would surface as a timeout.
TEST(LockShardTest, HotKeyStormStarvesNobody) {
  LockManager lm;
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  const uint64_t hot = LockKey::Page(1, 0, 7);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&lm, &failures, hot, t] {
      const TxnId txn = static_cast<TxnId>(t) + 1;
      for (int r = 0; r < kRounds; ++r) {
        const Status s = lm.Acquire(txn, hot, LockMode::kX, 10000);
        if (!s.ok()) {
          failures.fetch_add(1);
          continue;
        }
        lm.ReleaseAll(txn);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0) << "a waiter starved on the hot key";
  EXPECT_EQ(lm.stats().timeouts, 0u);
}

// ---------------------------------------------------------------------------
// 3. Grant/reap race regression.
// ---------------------------------------------------------------------------

class GrantReapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = std::filesystem::temp_directory_path() /
            ("bess_reap_" + std::to_string(::getpid()));
    std::filesystem::remove_all(base_);
    std::filesystem::create_directories(base_);
  }
  void TearDown() override {
    fault::FaultRegistry::Instance().DisarmAll();
    fault::FaultRegistry::Instance().ResetCounters();
    clients_.clear();
    server_.reset();
    db_.reset();
    std::filesystem::remove_all(base_);
  }

  RemoteClient* Connect() {
    RemoteClient::Options o;
    o.server_path = socket_path_;
    o.db_id = 1;
    o.lock_timeout_ms = 3000;
    auto c = RemoteClient::Connect(o);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    clients_.push_back(std::move(*c));
    return clients_.back().get();
  }

  std::filesystem::path base_;
  std::string socket_path_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<BessServer> server_;
  std::vector<std::unique_ptr<RemoteClient>> clients_;
};

// Regression: an unresponsive holder caches X locks on TWO objects; two
// clients wait on different ones. The first waiter's callback round trip
// times out and reaps the holder. The reap must free the holder's entire
// lock set immediately (not wait for its serving thread to unwind) and the
// release must wake waiters parked on *any* shard — previously the second
// waiter missed its wakeup and rode out the full lock timeout against a
// ghost, or timed out entirely.
TEST_F(GrantReapTest, ReapFreesWholeLockSetForConcurrentWaiters) {
  Database::Options o;
  o.dir = (base_ / "db").string();
  o.db_id = 1;
  o.create = true;
  auto dbr = Database::Open(o);
  ASSERT_TRUE(dbr.ok()) << dbr.status().ToString();
  db_ = std::move(*dbr);

  BessServer::Options so;
  so.socket_path = (base_ / "server.sock").string();
  so.lock_timeout_ms = 3000;
  so.callback_timeout_ms = 25;  // the injected-timeout knob under test
  socket_path_ = so.socket_path;
  server_ = std::make_unique<BessServer>(so);
  ASSERT_TRUE(server_->AddDatabase(db_.get()).ok());
  ASSERT_TRUE(server_->Start().ok());

  // Holder A commits two objects in two files and keeps the X locks cached.
  RemoteClient* a = Connect();
  ASSERT_TRUE(a->Begin().ok());
  for (int i = 0; i < 2; ++i) {
    auto file = a->CreateFile("f" + std::to_string(i));
    ASSERT_TRUE(file.ok());
    uint64_t v = 1;
    auto slot = a->CreateObject(*file, kRawBytesType, 8, &v);
    ASSERT_TRUE(slot.ok());
    ASSERT_TRUE(a->SetRoot("obj" + std::to_string(i), *slot).ok());
  }
  ASSERT_TRUE(a->Commit().ok());

  RemoteClient* b = Connect();
  RemoteClient* c = Connect();

  // Stall every client->server send (including A's callback answers) well
  // past the 25 ms callback window: A becomes an unresponsive ghost.
  fault::FaultSpec slow;
  slow.action = fault::FaultAction::kLatency;
  slow.latency_us = 80000;
  slow.detail_filter = socket_path_;
  fault::FaultRegistry::Instance().Arm("sock.send", slow);

  Status commit_b = Status::Internal("b never committed");
  Status commit_c = Status::Internal("c never committed");
  std::thread tb([&] {
    if (!b->Begin().ok()) return;
    auto theirs = b->GetRoot("obj0");
    if (!theirs.ok()) {
      commit_b = theirs.status();
      return;
    }
    *reinterpret_cast<uint64_t*>((*theirs)->dp) = 2;
    commit_b = b->Commit();
  });
  std::thread tc([&] {
    if (!c->Begin().ok()) return;
    auto theirs = c->GetRoot("obj1");
    if (!theirs.ok()) {
      commit_c = theirs.status();
      return;
    }
    *reinterpret_cast<uint64_t*>((*theirs)->dp) = 2;
    commit_c = c->Commit();
  });
  tb.join();
  tc.join();
  fault::FaultRegistry::Instance().DisarmAll();

  EXPECT_TRUE(commit_b.ok()) << commit_b.ToString();
  EXPECT_TRUE(commit_c.ok()) << commit_c.ToString();

  const auto stats = server_->stats();
  EXPECT_GT(stats.callback_timeouts, 0u);
  EXPECT_GT(stats.sessions_reaped, 0u);
}

}  // namespace
}  // namespace bess
