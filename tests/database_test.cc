// Integration tests for the Database layer: durability across reopen,
// transactions (commit/abort/poison), roots, OIDs, multifiles, parallel
// scans, reorganization, and crash recovery via fork + SIGKILL.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <set>

#include "object/database.h"

namespace bess {
namespace {

struct Pair {
  uint64_t ref;  // reference at offset 0
  uint64_t value;
};

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bess_db_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove_all(dir_);
  }

  Database::Options Opts(bool create, uint16_t db_id = 1) {
    Database::Options o;
    o.dir = dir_.string();
    o.db_id = db_id;
    o.create = create;
    return o;
  }

  void Create(uint16_t db_id = 1) {
    auto db = Database::Open(Opts(true, db_id));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  void Reopen(uint16_t db_id = 1) {
    db_.reset();
    auto db = Database::Open(Opts(false, db_id));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  std::filesystem::path dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, ObjectsSurviveReopen) {
  Create();
  auto file = db_->CreateFile("people");
  ASSERT_TRUE(file.ok());
  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  const char name[] = "alexandros";
  auto slot = db_->CreateObject(*file, kRawBytesType, sizeof(name), name);
  ASSERT_TRUE(slot.ok()) << slot.status().ToString();
  ASSERT_TRUE(db_->SetRoot("founder", *slot).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());

  Reopen();
  auto root = db_->GetRoot("founder");
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_STREQ(reinterpret_cast<const char*>((*root)->dp), name);
  auto fid = db_->FindFile("people");
  ASSERT_TRUE(fid.ok());
  auto count = db_->CountObjects(*fid);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
}

TEST_F(DatabaseTest, TypesPersistAndSwizzleAcrossReopen) {
  Create();
  TypeDescriptor pair;
  pair.name = "Pair";
  pair.fixed_size = sizeof(Pair);
  pair.ref_offsets = {0};
  auto tp = db_->RegisterType(pair);
  ASSERT_TRUE(tp.ok());
  auto file = db_->CreateFile("pairs");
  ASSERT_TRUE(file.ok());

  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  auto a = db_->CreateObject(*file, *tp, sizeof(Pair));
  auto b = db_->CreateObject(*file, *tp, sizeof(Pair));
  ASSERT_TRUE(a.ok() && b.ok());
  reinterpret_cast<Pair*>((*a)->dp)->ref = reinterpret_cast<uint64_t>(*b);
  reinterpret_cast<Pair*>((*a)->dp)->value = 10;
  reinterpret_cast<Pair*>((*b)->dp)->value = 20;
  ASSERT_TRUE(db_->SetRoot("head", *a).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());

  Reopen();
  auto tp2 = db_->types()->Find("Pair");
  ASSERT_TRUE(tp2.ok());
  EXPECT_EQ(*tp2, *tp);
  auto head = db_->GetRoot("head");
  ASSERT_TRUE(head.ok());
  Pair* pa = reinterpret_cast<Pair*>((*head)->dp);
  EXPECT_EQ(pa->value, 10u);
  Slot* sb = reinterpret_cast<Slot*>(pa->ref);
  EXPECT_EQ(reinterpret_cast<Pair*>(sb->dp)->value, 20u);
}

TEST_F(DatabaseTest, AbortRollsBackCreationAndUpdates) {
  Create();
  auto file = db_->CreateFile("f");
  ASSERT_TRUE(file.ok());
  // Committed baseline.
  auto t1 = db_->Begin();
  ASSERT_TRUE(t1.ok());
  uint64_t v = 1;
  auto slot = db_->CreateObject(*file, kRawBytesType, 8, &v);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(db_->SetRoot("x", *slot).ok());
  ASSERT_TRUE(db_->Commit(*t1).ok());

  // Update + create, then abort.
  auto t2 = db_->Begin();
  ASSERT_TRUE(t2.ok());
  auto x = db_->GetRoot("x");
  ASSERT_TRUE(x.ok());
  *reinterpret_cast<uint64_t*>((*x)->dp) = 999;
  ASSERT_TRUE(db_->CreateObject(*file, kRawBytesType, 8, &v).ok());
  ASSERT_TRUE(db_->Abort(*t2).ok());

  // The update is gone and the created object does not exist.
  auto t3 = db_->Begin();
  ASSERT_TRUE(t3.ok());
  x = db_->GetRoot("x");
  ASSERT_TRUE(x.ok()) << x.status().ToString();
  EXPECT_EQ(*reinterpret_cast<uint64_t*>((*x)->dp), 1u);
  auto count = db_->CountObjects(*file);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  ASSERT_TRUE(db_->Commit(*t3).ok());
}

TEST_F(DatabaseTest, OidRoundTripAndStaleness) {
  Create();
  auto file = db_->CreateFile("f");
  ASSERT_TRUE(file.ok());
  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  uint64_t v = 42;
  auto slot = db_->CreateObject(*file, kRawBytesType, 8, &v);
  ASSERT_TRUE(slot.ok());
  auto oid = db_->OidOf(*slot);
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());

  auto back = db_->Deref(*oid);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, *slot);
  EXPECT_EQ(*reinterpret_cast<uint64_t*>((*back)->dp), 42u);

  // Delete the object and reuse its slot: the old OID must not resolve.
  auto t2 = db_->Begin();
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(db_->DeleteObject(*slot).ok());
  auto slot2 = db_->CreateObject(*file, kRawBytesType, 8, &v);
  ASSERT_TRUE(slot2.ok());
  ASSERT_TRUE(db_->Commit(*t2).ok());
  EXPECT_EQ(*slot, *slot2);  // same slot reused
  EXPECT_TRUE(db_->Deref(*oid).status().IsNotFound());
}

TEST_F(DatabaseTest, DeleteRemovesRootName) {
  Create();
  auto file = db_->CreateFile("f");
  ASSERT_TRUE(file.ok());
  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  auto slot = db_->CreateObject(*file, kRawBytesType, 8);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(db_->SetRoot("victim", *slot).ok());
  ASSERT_TRUE(db_->DeleteObject(*slot).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  // Referential integrity (§2.5): the name went away with the object.
  EXPECT_TRUE(db_->GetRoot("victim").status().IsNotFound());
}

TEST_F(DatabaseTest, ManyObjectsSpillIntoNewSegments) {
  Create();
  auto file = db_->CreateFile("bulk");
  ASSERT_TRUE(file.ok());
  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  // More objects than one segment's slot capacity (120).
  const int kCount = 500;
  for (int i = 0; i < kCount; ++i) {
    char body[64] = {0};
    const uint64_t v = static_cast<uint64_t>(i);
    memcpy(body, &v, sizeof(v));
    auto slot = db_->CreateObject(*file, kRawBytesType, sizeof(body), body);
    ASSERT_TRUE(slot.ok()) << i << ": " << slot.status().ToString();
  }
  ASSERT_TRUE(db_->Commit(*txn).ok());
  auto count = db_->CountObjects(*file);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, static_cast<uint64_t>(kCount));

  Reopen();
  auto fid = db_->FindFile("bulk");
  ASSERT_TRUE(fid.ok());
  // Scan sees every object with intact payloads.
  std::set<uint64_t> seen;
  ASSERT_TRUE(db_->Scan(*fid, [&](Slot* s) {
    seen.insert(*reinterpret_cast<const uint64_t*>(s->dp));
    return Status::OK();
  }).ok());
  EXPECT_EQ(seen.size(), static_cast<size_t>(kCount));
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), static_cast<uint64_t>(kCount - 1));
}

TEST_F(DatabaseTest, TransparentLargeObjectsViaDatabase) {
  Create();
  auto file = db_->CreateFile("blobs");
  ASSERT_TRUE(file.ok());
  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  std::string blob(20000, 'b');  // 20 KB: beyond the large-object threshold
  auto slot = db_->CreateObject(*file, kRawBytesType,
                                static_cast<uint32_t>(blob.size()),
                                blob.data());
  ASSERT_TRUE(slot.ok()) << slot.status().ToString();
  EXPECT_TRUE((*slot)->flags & kSlotLargeObject);
  ASSERT_TRUE(db_->SetRoot("blob", *slot).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());

  Reopen();
  auto root = db_->GetRoot("blob");
  ASSERT_TRUE(root.ok());
  const char* data = reinterpret_cast<const char*>((*root)->dp);
  EXPECT_EQ((*root)->size, blob.size());
  EXPECT_EQ(data[0], 'b');
  EXPECT_EQ(data[19999], 'b');
  // Objects above 64 KB are rejected toward the byte-range class.
  auto txn2 = db_->Begin();
  ASSERT_TRUE(txn2.ok());
  EXPECT_TRUE(db_->CreateObject(*file, kRawBytesType, 100000)
                  .status()
                  .IsInvalidArgument());
  ASSERT_TRUE(db_->Abort(*txn2).ok());
}

TEST_F(DatabaseTest, MultifileParallelScan) {
  Create();
  // Three areas, one multifile spanning them.
  ASSERT_TRUE(db_->AddStorageArea().ok());
  ASSERT_TRUE(db_->AddStorageArea().ok());
  auto file = db_->CreateFile("media", /*multifile=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(db_->AddFileArea(*file, 1).ok());
  ASSERT_TRUE(db_->AddFileArea(*file, 2).ok());

  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  const int kCount = 300;
  for (int i = 0; i < kCount; ++i) {
    char body[256] = {0};
    const uint64_t v = static_cast<uint64_t>(i);
    memcpy(body, &v, sizeof(v));
    ASSERT_TRUE(
        db_->CreateObject(*file, kRawBytesType, sizeof(body), body).ok());
  }
  ASSERT_TRUE(db_->Commit(*txn).ok());

  // Segments must be spread over multiple areas (round-robin placement).
  std::set<uint16_t> areas_used;
  ASSERT_TRUE(db_->Scan(*file, [&](Slot*) { return Status::OK(); }).ok());

  std::mutex mu;
  std::set<uint64_t> seen;
  ASSERT_TRUE(db_->ParallelScan(*file, 4,
                                [&](const Slot& s, const void* data) {
                                  (void)s;
                                  std::lock_guard<std::mutex> guard(mu);
                                  seen.insert(
                                      *static_cast<const uint64_t*>(data));
                                  return Status::OK();
                                })
                  .ok());
  EXPECT_EQ(seen.size(), static_cast<size_t>(kCount));
  (void)areas_used;
}

TEST_F(DatabaseTest, MoveFileDataKeepsReferencesWorking) {
  Create();
  ASSERT_TRUE(db_->AddStorageArea().ok());  // area 1
  TypeDescriptor pair;
  pair.name = "Pair";
  pair.fixed_size = sizeof(Pair);
  pair.ref_offsets = {0};
  auto tp = db_->RegisterType(pair);
  ASSERT_TRUE(tp.ok());
  auto file = db_->CreateFile("movable");
  ASSERT_TRUE(file.ok());

  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  auto a = db_->CreateObject(*file, *tp, sizeof(Pair));
  auto b = db_->CreateObject(*file, *tp, sizeof(Pair));
  ASSERT_TRUE(a.ok() && b.ok());
  reinterpret_cast<Pair*>((*a)->dp)->ref = reinterpret_cast<uint64_t>(*b);
  reinterpret_cast<Pair*>((*b)->dp)->value = 77;
  ASSERT_TRUE(db_->SetRoot("head", *a).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());

  // Move every data segment of the file to area 1 — on the fly.
  auto t2 = db_->Begin();
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(db_->MoveFileData(*file, 1).ok());
  // The reference held before the move still works.
  Pair* pa = reinterpret_cast<Pair*>((*a)->dp);
  EXPECT_EQ(reinterpret_cast<Pair*>(reinterpret_cast<Slot*>(pa->ref)->dp)
                ->value,
            77u);
  ASSERT_TRUE(db_->Commit(*t2).ok());

  // And after a cold restart, data now comes from area 1.
  Reopen();
  auto head = db_->GetRoot("head");
  ASSERT_TRUE(head.ok());
  Pair* pa2 = reinterpret_cast<Pair*>((*head)->dp);
  EXPECT_EQ(reinterpret_cast<Pair*>(reinterpret_cast<Slot*>(pa2->ref)->dp)
                ->value,
            77u);
}

TEST_F(DatabaseTest, InterDatabaseForwardObjects) {
  Create(1);
  // Second database.
  auto dir2 = dir_;
  dir2 += "_two";
  Database::Options o2;
  o2.dir = dir2.string();
  o2.db_id = 2;
  o2.create = true;
  auto db2r = Database::Open(o2);
  ASSERT_TRUE(db2r.ok());
  auto db2 = std::move(*db2r);

  // Target object lives in db2.
  auto f2 = db2->CreateFile("remote");
  ASSERT_TRUE(f2.ok());
  auto t2 = db2->Begin();
  ASSERT_TRUE(t2.ok());
  uint64_t v = 777;
  auto target = db2->CreateObject(*f2, kRawBytesType, 8, &v);
  ASSERT_TRUE(target.ok());
  auto target_oid = db2->OidOf(*target);
  ASSERT_TRUE(target_oid.ok());
  ASSERT_TRUE(db2->Commit(*t2).ok());

  // db1 holds a forward object pointing at it.
  auto f1 = db_->CreateFile("local");
  ASSERT_TRUE(f1.ok());
  auto t1 = db_->Begin();
  ASSERT_TRUE(t1.ok());
  auto fwd = db_->CreateForward(*f1, *target_oid);
  ASSERT_TRUE(fwd.ok()) << fwd.status().ToString();
  ASSERT_TRUE(db_->Commit(*t1).ok());

  // Dereference through the forward object lands on the db2 object.
  auto resolved = db_->ResolveForward(*fwd);
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  EXPECT_EQ(*reinterpret_cast<uint64_t*>((*resolved)->dp), 777u);

  db2.reset();
  std::filesystem::remove_all(dir2);
}

TEST_F(DatabaseTest, ConflictTimesOutAndPoisonsTransaction) {
  Database::Options o = Opts(true);
  o.lock_timeout_ms = 100;
  auto dbr = Database::Open(o);
  ASSERT_TRUE(dbr.ok());
  db_ = std::move(*dbr);

  auto file = db_->CreateFile("f");
  ASSERT_TRUE(file.ok());
  auto t0 = db_->Begin();
  ASSERT_TRUE(t0.ok());
  uint64_t v = 5;
  auto slot = db_->CreateObject(*file, kRawBytesType, 8, &v);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(db_->Commit(*t0).ok());

  // Thread A writes the object (taking the page X lock through the write
  // fault) and parks; thread B then tries a structural operation in the
  // same segment, which needs the segment X lock and conflicts with A's
  // read (S) lock — the wait times out, standing in for deadlock detection.
  auto ta = db_->Begin();
  ASSERT_TRUE(ta.ok());
  *reinterpret_cast<uint64_t*>((*slot)->dp) = 6;  // X page lock via fault

  std::thread other([&] {
    auto tb = db_->Begin();
    ASSERT_TRUE(tb.ok());
    Status s = db_->DeleteObject(*slot);
    EXPECT_TRUE(s.IsDeadlock()) << s.ToString();
    EXPECT_TRUE(db_->Abort(*tb).ok());
  });
  other.join();

  // A is unaffected and commits its update.
  ASSERT_TRUE(db_->Commit(*ta).ok());
  auto t3 = db_->Begin();
  ASSERT_TRUE(t3.ok());
  EXPECT_EQ(*reinterpret_cast<uint64_t*>((*slot)->dp), 6u);
  ASSERT_TRUE(db_->Commit(*t3).ok());
}

// Crash a child process with SIGKILL at a random point while it commits
// transactions; on reopen the database must be consistent: every committed
// transaction fully present (3 objects each), nothing partial.
TEST_F(DatabaseTest, SigkillCrashRecovery) {
  const std::string dir = dir_.string();
  int pipefd[2];
  ASSERT_EQ(pipe(pipefd), 0);

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: commit transactions forever, reporting each commit.
    close(pipefd[0]);
    Database::Options o;
    o.dir = dir;
    o.db_id = 1;
    o.create = true;
    auto dbr = Database::Open(o);
    if (!dbr.ok()) _exit(2);
    auto db = std::move(*dbr);
    auto file = db->CreateFile("f");
    if (!file.ok()) _exit(2);
    for (uint64_t i = 0;; ++i) {
      auto txn = db->Begin();
      if (!txn.ok()) _exit(2);
      for (int k = 0; k < 3; ++k) {
        char body[128] = {0};
        const uint64_t v = i * 3 + static_cast<uint64_t>(k);
        memcpy(body, &v, sizeof(v));
        if (!db->CreateObject(*file, kRawBytesType, sizeof(body), body).ok()) {
          _exit(2);
        }
      }
      if (!db->Commit(*txn).ok()) _exit(2);
      if (write(pipefd[1], &i, sizeof(i)) != sizeof(i)) _exit(2);
    }
  }

  // Parent: let a few commits land, then SIGKILL mid-flight.
  close(pipefd[1]);
  uint64_t last_committed = 0;
  for (int reads = 0; reads < 5; ++reads) {
    uint64_t i;
    ASSERT_EQ(read(pipefd[0], &i, sizeof(i)), (ssize_t)sizeof(i));
    last_committed = i;
  }
  kill(pid, SIGKILL);
  int wstatus;
  waitpid(pid, &wstatus, 0);
  close(pipefd[0]);

  // Reopen: recovery runs; all acknowledged commits must be present and
  // the object count must be a multiple of 3 (transaction atomicity).
  Database::Options o = Opts(false);
  auto dbr = Database::Open(o);
  ASSERT_TRUE(dbr.ok()) << dbr.status().ToString();
  db_ = std::move(*dbr);
  auto fid = db_->FindFile("f");
  ASSERT_TRUE(fid.ok());
  std::set<uint64_t> seen;
  ASSERT_TRUE(db_->Scan(*fid, [&](Slot* s) {
    seen.insert(*reinterpret_cast<const uint64_t*>(s->dp));
    return Status::OK();
  }).ok());
  EXPECT_EQ(seen.size() % 3, 0u) << "partial transaction visible";
  EXPECT_GE(seen.size(), (last_committed + 1) * 3)
      << "acknowledged commit lost";
  // Values form a prefix 0..n-1.
  if (!seen.empty()) {
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), seen.size() - 1);
  }
}

TEST_F(DatabaseTest, CheckpointIsFuzzyAndBoundsRestart) {
  Create();
  auto file = db_->CreateFile("f");
  ASSERT_TRUE(file.ok());
  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(db_->CreateObject(*file, kRawBytesType, 64).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  const Lsn before = db_->wal()->tail_lsn();
  ASSERT_TRUE(db_->Checkpoint().ok());
  // Fuzzy checkpoints never rewind the LSN sequence; they record a restart
  // point in the master record instead of truncating history.
  EXPECT_GE(db_->wal()->tail_lsn(), before);
  auto cp = db_->wal()->GetCheckpointLsn();
  ASSERT_TRUE(cp.ok());
  EXPECT_NE(*cp, kNullLsn);
  EXPECT_GE(*cp, before);

  Reopen();  // recovery seeds from the checkpoint: almost nothing to scan
  auto fid = db_->FindFile("f");
  ASSERT_TRUE(fid.ok());
  auto count = db_->CountObjects(*fid);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  // Analysis starts at the checkpoint record, not the start of the log: the
  // committed transaction's records before it are never re-scanned.
  EXPECT_LE(db_->last_recovery_stats().records_scanned, 2u);
  EXPECT_EQ(db_->last_recovery_stats().loser_txns, 0u);
}

}  // namespace
}  // namespace bess
