// Tests for the copy-on-access private buffer pool and its protection-state
// clock (§4.1.1, §4.2), plus the LRU / classic-clock baselines.
#include <gtest/gtest.h>

#include <filesystem>

#include "baseline/replacement.h"
#include "cache/private_pool.h"
#include "util/random.h"
#include "vm/mem_store.h"

namespace bess {
namespace {

PageAddr Page(uint32_t p) { return PageAddr{1, 0, p}; }

class PrivatePoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bess_pool_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    // Seed the store with 64 distinct pages.
    std::string page(kPageSize, '\0');
    for (uint32_t p = 0; p < 64; ++p) {
      memcpy(page.data(), &p, sizeof(p));
      ASSERT_TRUE(store_.WritePages(1, 0, p, 1, page.data()).ok());
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string PoolPath() { return (dir_ / "pool").string(); }

  std::filesystem::path dir_;
  InMemoryStore store_;
};

TEST_F(PrivatePoolTest, HitsAndMisses) {
  auto pool = PrivateBufferPool::Open(PoolPath(), 8, &store_);
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();
  for (uint32_t p = 0; p < 8; ++p) {
    auto addr = (*pool)->Fix(Page(p), false);
    ASSERT_TRUE(addr.ok());
    uint32_t got;
    memcpy(&got, *addr, sizeof(got));
    EXPECT_EQ(got, p);
  }
  EXPECT_EQ((*pool)->stats().misses, 8u);
  ASSERT_TRUE((*pool)->Fix(Page(3), false).ok());
  EXPECT_EQ((*pool)->stats().hits, 1u);
}

TEST_F(PrivatePoolTest, WriteDetectionMarksDirtyOnlyOnWrite) {
  auto pool = PrivateBufferPool::Open(PoolPath(), 4, &store_);
  ASSERT_TRUE(pool.ok());
  auto addr = (*pool)->Fix(Page(1), false);
  ASSERT_TRUE(addr.ok());
  // Read does not dirty.
  volatile char c = *static_cast<char*>(*addr);
  (void)c;
  ASSERT_TRUE((*pool)->FlushDirty().ok());
  EXPECT_EQ((*pool)->stats().dirty_writebacks, 0u);
  // A raw store faults once and marks dirty.
  static_cast<char*>(*addr)[100] = 'W';
  ASSERT_TRUE((*pool)->FlushDirty().ok());
  EXPECT_EQ((*pool)->stats().dirty_writebacks, 1u);
  std::string check(kPageSize, '\0');
  ASSERT_TRUE(store_.FetchPages(1, 0, 1, 1, check.data()).ok());
  EXPECT_EQ(check[100], 'W');
}

TEST_F(PrivatePoolTest, EvictionWritesBackAndDataSurvives) {
  auto pool = PrivateBufferPool::Open(PoolPath(), 4, &store_);
  ASSERT_TRUE(pool.ok());
  for (uint32_t p = 0; p < 16; ++p) {
    auto addr = (*pool)->Fix(Page(p), true);
    ASSERT_TRUE(addr.ok());
    memcpy(static_cast<char*>(*addr) + 8, &p, sizeof(p));
  }
  EXPECT_GT((*pool)->stats().evictions, 0u);
  ASSERT_TRUE((*pool)->FlushDirty().ok());
  for (uint32_t p = 0; p < 16; ++p) {
    std::string check(kPageSize, '\0');
    ASSERT_TRUE(store_.FetchPages(1, 0, p, 1, check.data()).ok());
    uint32_t got;
    memcpy(&got, check.data() + 8, sizeof(got));
    EXPECT_EQ(got, p);
  }
}

TEST_F(PrivatePoolTest, ProtectedFrameGetsSecondChanceOnRawTouch) {
  auto pool = PrivateBufferPool::Open(PoolPath(), 2, &store_);
  ASSERT_TRUE(pool.ok());
  auto a = (*pool)->Fix(Page(0), false);
  auto b = (*pool)->Fix(Page(1), false);
  ASSERT_TRUE(a.ok() && b.ok());
  // Fixing a third page protects A and B on the sweep, then evicts one.
  ASSERT_TRUE((*pool)->Fix(Page(2), false).ok());
  // One of A/B survives in protected state; find it and touch it raw.
  const bool a_alive = (*pool)->Contains(Page(0));
  char* held = static_cast<char*>(a_alive ? *a : *b);
  uint32_t got;
  memcpy(&got, held, sizeof(got));  // faults; handler grants second chance
  EXPECT_EQ(got, a_alive ? 0u : 1u);
  EXPECT_GT((*pool)->stats().second_chances, 0u);
}

TEST_F(PrivatePoolTest, RawTouchKeepsFrameAliveThroughNextSweep) {
  auto pool = PrivateBufferPool::Open(PoolPath(), 4, &store_);
  ASSERT_TRUE(pool.ok());
  for (uint32_t p = 0; p < 4; ++p) {
    ASSERT_TRUE((*pool)->Fix(Page(p), false).ok());
  }
  auto held = (*pool)->Fix(Page(1), false);
  ASSERT_TRUE(held.ok());
  // Keep touching page 1 between fixes of fresh pages: the protection-state
  // clock sees those touches (as faults on protected frames) and keeps
  // giving page 1 its second chance, while untouched pages get evicted.
  for (uint32_t p = 4; p < 14; ++p) {
    ASSERT_TRUE((*pool)->Contains(Page(1))) << "evicted before fix of " << p;
    volatile char c = *static_cast<char*>(*held);
    (void)c;
    ASSERT_TRUE((*pool)->Fix(Page(p), false).ok());
  }
  EXPECT_TRUE((*pool)->Contains(Page(1)));
  EXPECT_FALSE((*pool)->Contains(Page(2)));  // untouched: evicted
  EXPECT_GT((*pool)->stats().second_chances, 0u);
}

TEST_F(PrivatePoolTest, ClearDropsEverything) {
  auto pool = PrivateBufferPool::Open(PoolPath(), 4, &store_);
  ASSERT_TRUE(pool.ok());
  auto addr = (*pool)->Fix(Page(0), true);
  ASSERT_TRUE(addr.ok());
  static_cast<char*>(*addr)[0] = 'x';
  ASSERT_TRUE((*pool)->Clear().ok());
  EXPECT_FALSE((*pool)->Contains(Page(0)));
  // Dirty data was flushed, not lost.
  std::string check(kPageSize, '\0');
  ASSERT_TRUE(store_.FetchPages(1, 0, 0, 1, check.data()).ok());
  EXPECT_EQ(check[0], 'x');
}

// ---- Baseline pools ----------------------------------------------------------

TEST_F(PrivatePoolTest, LruPoolBasics) {
  LruPool pool(2, &store_);
  ASSERT_TRUE(pool.Fix(Page(0), false).ok());
  ASSERT_TRUE(pool.Fix(Page(1), false).ok());
  ASSERT_TRUE(pool.Fix(Page(0), false).ok());  // 0 is now MRU
  ASSERT_TRUE(pool.Fix(Page(2), false).ok());  // evicts 1 (LRU)
  ASSERT_TRUE(pool.Fix(Page(0), false).ok());
  EXPECT_EQ(pool.stats().hits, 2u);
  EXPECT_EQ(pool.stats().evictions, 1u);
}

TEST_F(PrivatePoolTest, ClassicClockBasics) {
  ClassicClockPool pool(2, &store_);
  ASSERT_TRUE(pool.Fix(Page(0), false).ok());
  ASSERT_TRUE(pool.Fix(Page(1), false).ok());
  ASSERT_TRUE(pool.Fix(Page(2), false).ok());  // one of 0/1 evicted
  EXPECT_EQ(pool.stats().evictions, 1u);
  EXPECT_EQ(pool.stats().misses, 3u);
}

TEST_F(PrivatePoolTest, BaselinesMissRawTouches) {
  // The motivating scenario of §4.2: a page accessed only through a raw
  // pointer looks idle to a function-call cache but not to the
  // protection-state clock. Drive both caches with the identical trace.
  auto bess_pool = PrivateBufferPool::Open(PoolPath(), 4, &store_);
  ASSERT_TRUE(bess_pool.ok());
  ClassicClockPool classic(4, &store_);

  void* classic_p1 = nullptr;
  for (uint32_t p = 0; p < 4; ++p) {
    ASSERT_TRUE((*bess_pool)->Fix(Page(p), false).ok());
    auto ca = classic.Fix(Page(p), false);
    ASSERT_TRUE(ca.ok());
    if (p == 1) classic_p1 = *ca;
  }
  auto held = (*bess_pool)->Fix(Page(1), false);
  ASSERT_TRUE(held.ok());

  for (uint32_t p = 4; p < 14; ++p) {
    // Raw touches of page 1 that no Fix() reports.
    if ((*bess_pool)->Contains(Page(1))) {
      volatile char c1 = *static_cast<char*>(*held);
      (void)c1;
    }
    volatile char c2 = *static_cast<char*>(classic_p1);  // invisible
    (void)c2;
    ASSERT_TRUE((*bess_pool)->Fix(Page(p), false).ok());
    ASSERT_TRUE(classic.Fix(Page(p), false).ok());
  }
  // BeSS kept the touched page; the classic clock threw it out.
  EXPECT_TRUE((*bess_pool)->Contains(Page(1)));
  const uint64_t misses_before = classic.stats().misses;
  ASSERT_TRUE(classic.Fix(Page(1), false).ok());
  EXPECT_EQ(classic.stats().misses, misses_before + 1)
      << "classic clock unexpectedly kept the raw-touched page";
}

}  // namespace
}  // namespace bess
