// WAL crash-recovery torture harness.
//
// Each iteration forks a child that runs commit workloads against the
// database while a seeded crashpoint (SIGKILL — no unwind, no flush) is
// armed on a random file I/O point. The parent then reopens the database,
// which runs ARIES restart recovery, and asserts the invariants that define
// crash consistency:
//
//   1. Durability: every commit the child acknowledged is present.
//   2. Atomicity: all objects of the multi-page commit group carry the same
//      value — a crash never exposes half a transaction.
//   3. No phantoms: the recovered value never exceeds the last attempt.
//   4. Recovery is idempotent: killing the process *during recovery* and
//      recovering again yields the same consistent state.
//
// Everything is driven by one base seed (env BESS_TORTURE_SEED), and each
// iteration derives its own; failures print the iteration seed so any run
// reproduces exactly. Iteration count: env BESS_TORTURE_ITERS (default 200,
// a few seconds — the CI "torture" label budget).
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "object/database.h"
#include "obs/stats.h"
#include "os/fault_injection.h"
#include "os/socket.h"
#include "server/bess_server.h"
#include "storage/storage_area.h"
#include "util/random.h"

namespace bess {
namespace {

constexpr int kObjects = 6;          // one commit touches all of these
constexpr uint32_t kObjectSize = 1200;  // ~2 data pages per commit group
constexpr int kMaxTxnsPerChild = 500;   // bound if the crashpoint never fires

struct PipeRecord {
  uint64_t tag;  // 0 = attempting value, 1 = value acknowledged committed
  uint64_t value;
};

std::string RootName(int i) { return "o" + std::to_string(i); }

// The child workload: open (recovery may run — and may be the thing that
// crashes), then repeatedly bump the shared counter in every object inside
// one transaction, reporting attempts and acks through the pipe.
[[noreturn]] void RunCrashChild(const std::string& dir, uint64_t seed,
                                int report_fd, bool recovery_only) {
  Random rng(seed);
  static const char* kPoints[] = {"file.writeat", "file.sync", "file.append",
                                  "file.readat"};
  // Recovery-crash children die fast (low nth, reads included); workload
  // children let the open finish more often (reads excluded).
  const char* point = recovery_only
                          ? kPoints[rng.Uniform(4)]
                          : kPoints[rng.Uniform(3)];
  const int nth = static_cast<int>(
      recovery_only ? rng.Range(1, 25) : rng.Range(1, 60));
  fault::FaultRegistry::Instance().Arm(point,
                                       fault::FaultSpec::CrashAtNth(nth));

  Database::Options o;
  o.dir = dir;
  o.create = false;
  auto dbr = Database::Open(o);
  if (!dbr.ok()) ::_exit(3);
  if (recovery_only) ::_exit(0);  // crashpoint never fired during recovery
  auto db = std::move(*dbr);
  auto fid = db->FindFile("f");
  if (!fid.ok()) ::_exit(3);

  std::string body(kObjectSize, '\0');
  for (int t = 0; t < kMaxTxnsPerChild; ++t) {
    auto txn = db->Begin();
    if (!txn.ok()) ::_exit(3);
    Slot* slots[kObjects];
    uint64_t cur = 0;
    for (int i = 0; i < kObjects; ++i) {
      auto s = db->GetRoot(RootName(i));
      if (!s.ok()) ::_exit(3);
      slots[i] = *s;
      cur = *reinterpret_cast<const uint64_t*>(slots[i]->dp);
    }
    const uint64_t next = cur + 1;
    PipeRecord attempt{0, next};
    if (::write(report_fd, &attempt, sizeof(attempt)) != sizeof(attempt)) {
      ::_exit(3);
    }
    // Same value into every object, plus a value-derived fill so a torn
    // page would corrupt more than just the counter word.
    memset(body.data(), static_cast<char>('A' + next % 26), body.size());
    memcpy(body.data(), &next, sizeof(next));
    for (int i = 0; i < kObjects; ++i) {
      memcpy(reinterpret_cast<void*>(slots[i]->dp), body.data(), body.size());
    }
    if (!db->Commit(*txn).ok()) ::_exit(3);
    PipeRecord acked{1, next};
    if (::write(report_fd, &acked, sizeof(acked)) != sizeof(acked)) {
      ::_exit(3);
    }
  }
  ::_exit(0);  // the crashpoint never fired: clean exit, still verified
}

using ChildFn = void (*)(const std::string&, uint64_t, int, bool);

class TortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bess_torture_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Creates the database with kObjects root objects all holding value 0.
  void SeedDatabase() {
    Database::Options o;
    o.dir = dir_.string();
    o.create = true;
    auto dbr = Database::Open(o);
    ASSERT_TRUE(dbr.ok()) << dbr.status().ToString();
    auto db = std::move(*dbr);
    auto file = db->CreateFile("f");
    ASSERT_TRUE(file.ok());
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    std::string body(kObjectSize, 'A');
    uint64_t zero = 0;
    memcpy(body.data(), &zero, sizeof(zero));
    for (int i = 0; i < kObjects; ++i) {
      auto slot = db->CreateObject(*file, kRawBytesType, kObjectSize,
                                   body.data());
      ASSERT_TRUE(slot.ok());
      ASSERT_TRUE(db->SetRoot(RootName(i), *slot).ok());
    }
    ASSERT_TRUE(db->Commit(*txn).ok());
  }

  // Forks a crash child and collects what it reported before dying.
  // Returns false only on harness failure (child hit an unexpected error).
  bool RunChild(uint64_t seed, bool recovery_only, uint64_t* max_attempt,
                uint64_t* max_acked, ChildFn child = RunCrashChild) {
    int pipefd[2];
    EXPECT_EQ(::pipe(pipefd), 0);
    const pid_t pid = ::fork();
    EXPECT_GE(pid, 0);
    if (pid == 0) {
      ::close(pipefd[0]);
      child(dir_.string(), seed, pipefd[1], recovery_only);
      ::_exit(0);  // unreachable: every child function exits itself
    }
    ::close(pipefd[1]);
    PipeRecord rec;
    for (;;) {
      const ssize_t n = ::read(pipefd[0], &rec, sizeof(rec));
      if (n != sizeof(rec)) break;  // EOF: the child died (or finished)
      if (rec.tag == 0) {
        *max_attempt = std::max(*max_attempt, rec.value);
      } else {
        *max_acked = std::max(*max_acked, rec.value);
      }
    }
    ::close(pipefd[0]);
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    const bool killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    EXPECT_TRUE(killed || clean)
        << "child failed unexpectedly, status=" << status << " seed=" << seed;
    return killed || clean;
  }

  // Reopens the database (running recovery) and asserts the ARIES
  // invariants; returns the recovered counter value.
  uint64_t VerifyConsistent(uint64_t max_attempt, uint64_t max_acked,
                            uint64_t seed) {
    Database::Options o;
    o.dir = dir_.string();
    o.create = false;
    auto dbr = Database::Open(o);
    EXPECT_TRUE(dbr.ok()) << "recovery failed: " << dbr.status().ToString()
                          << " seed=" << seed;
    if (!dbr.ok()) return 0;
    auto db = std::move(*dbr);
    uint64_t value = 0;
    for (int i = 0; i < kObjects; ++i) {
      auto s = db->GetRoot(RootName(i));
      EXPECT_TRUE(s.ok()) << "root lost, seed=" << seed;
      if (!s.ok()) return 0;
      const uint64_t v = *reinterpret_cast<const uint64_t*>((*s)->dp);
      const char* body = reinterpret_cast<const char*>((*s)->dp);
      if (i == 0) {
        value = v;
      } else {
        // Atomicity: one commit updates all objects or none.
        EXPECT_EQ(v, value) << "torn commit visible at object " << i
                            << ", seed=" << seed;
      }
      // The fill bytes must match the counter (no partial page survived).
      const char want = static_cast<char>('A' + v % 26);
      EXPECT_EQ(body[sizeof(uint64_t)], want)
          << "page fill torn at object " << i << ", seed=" << seed;
      EXPECT_EQ(body[kObjectSize - 1], want)
          << "page tail torn at object " << i << ", seed=" << seed;
    }
    // Durability: acked commits survived. No phantoms: nothing beyond the
    // last attempt materialized.
    EXPECT_GE(value, max_acked) << "acked commit lost, seed=" << seed;
    EXPECT_LE(value, max_attempt) << "phantom commit, seed=" << seed;
    return value;
  }

  std::filesystem::path dir_;
};

TEST_F(TortureTest, RandomizedCrashpoints) {
  uint64_t base_seed = 0xBE55BE55ull;
  if (const char* env = std::getenv("BESS_TORTURE_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  int iters = 200;
  if (const char* env = std::getenv("BESS_TORTURE_ITERS")) {
    iters = std::atoi(env);
  }
  SCOPED_TRACE("base seed " + std::to_string(base_seed) +
               " (set BESS_TORTURE_SEED to reproduce)");
  SeedDatabase();

  Random seeder(base_seed);
  uint64_t floor_value = 0;   // recovered value is monotone across crashes
  uint64_t max_attempt = 0;
  uint64_t max_acked = 0;
  for (int iter = 0; iter < iters; ++iter) {
    const uint64_t seed = seeder.Next();
    ASSERT_TRUE(RunChild(seed, /*recovery_only=*/false, &max_attempt,
                         &max_acked))
        << "iter=" << iter << " seed=" << seed;

    // Every third iteration, also kill a process *while it recovers* —
    // recovery must be restartable (repeating history is idempotent).
    if (iter % 3 == 2) {
      const uint64_t rseed = seeder.Next();
      uint64_t ignored_a = 0, ignored_b = 0;
      ASSERT_TRUE(RunChild(rseed, /*recovery_only=*/true, &ignored_a,
                           &ignored_b))
          << "iter=" << iter << " recovery seed=" << rseed;
    }

    const uint64_t value = VerifyConsistent(max_attempt, max_acked, seed);
    ASSERT_GE(value, floor_value)
        << "recovered state went backwards, iter=" << iter
        << " seed=" << seed;
    floor_value = value;
    if (::testing::Test::HasFailure()) {
      FAIL() << "stopping after first failing iteration " << iter
             << ", seed=" << seed << " (base " << base_seed << ")";
    }
  }
}

// Checkpoint/segment-recycle crash torture. Children run the same counter
// workload, but against a log of tiny segments with aggressive background
// checkpointing, and the armed crashpoint is drawn from the always-on
// recovery machinery itself: the checkpoint record append, the master-record
// swing, segment recycling, and segment roll — plus the raw file points.
// SIGKILL at any of these instants must leave a log the next open recovers
// to a consistent, durable state.
[[noreturn]] void RunCheckpointCrashChild(const std::string& dir,
                                          uint64_t seed, int report_fd,
                                          bool recovery_only) {
  Random rng(seed);
  static const char* kPoints[] = {
      "wal.checkpoint.record", "wal.checkpoint.master", "wal.master.swing",
      "wal.recycle.unlink",    "wal.segment.roll",      "file.writeat",
      "file.sync",             "file.readat"};
  // The wal.* points fire once per checkpoint/roll, not once per I/O, so
  // they get a low nth; the file points keep the workload-tuned range.
  const int idx = recovery_only ? static_cast<int>(rng.Uniform(8))
                                : static_cast<int>(rng.Uniform(7));
  const char* point = kPoints[idx];
  const bool wal_point = idx < 5;
  const int nth = static_cast<int>(
      wal_point ? rng.Range(1, 6)
                : (recovery_only ? rng.Range(1, 25) : rng.Range(1, 60)));
  fault::FaultRegistry::Instance().Arm(point,
                                       fault::FaultSpec::CrashAtNth(nth));

  Database::Options o;
  o.dir = dir;
  o.create = false;
  o.wal_segment_bytes = 32 << 10;   // many rolls and recycles per child
  o.checkpoint_log_bytes = 48 << 10;  // background checkpoints fire often
  auto dbr = Database::Open(o);
  if (!dbr.ok()) ::_exit(3);
  if (recovery_only) ::_exit(0);
  auto db = std::move(*dbr);
  auto fid = db->FindFile("f");
  if (!fid.ok()) ::_exit(3);

  std::string body(kObjectSize, '\0');
  for (int t = 0; t < kMaxTxnsPerChild; ++t) {
    auto txn = db->Begin();
    if (!txn.ok()) ::_exit(3);
    Slot* slots[kObjects];
    uint64_t cur = 0;
    for (int i = 0; i < kObjects; ++i) {
      auto s = db->GetRoot(RootName(i));
      if (!s.ok()) ::_exit(3);
      slots[i] = *s;
      cur = *reinterpret_cast<const uint64_t*>(slots[i]->dp);
    }
    const uint64_t next = cur + 1;
    PipeRecord attempt{0, next};
    if (::write(report_fd, &attempt, sizeof(attempt)) != sizeof(attempt)) {
      ::_exit(3);
    }
    memset(body.data(), static_cast<char>('A' + next % 26), body.size());
    memcpy(body.data(), &next, sizeof(next));
    for (int i = 0; i < kObjects; ++i) {
      memcpy(reinterpret_cast<void*>(slots[i]->dp), body.data(), body.size());
    }
    if (!db->Commit(*txn).ok()) ::_exit(3);
    PipeRecord acked{1, next};
    if (::write(report_fd, &acked, sizeof(acked)) != sizeof(acked)) {
      ::_exit(3);
    }
    // Every few commits, a foreground fuzzy checkpoint on top of the
    // background ones: both crashpoint consumers and both entry paths get
    // exercised. A failed checkpoint is survivable by design; only the
    // consistency of the recovered state is asserted (by the parent).
    if (t % 7 == 6) (void)db->Checkpoint();
  }
  ::_exit(0);
}

// The acceptance bar for the always-on recovery machinery: ≥ 50 iterations
// of SIGKILL landing inside checkpoint, segment-recycle and master-record
// paths, with the same four ARIES invariants as RandomizedCrashpoints
// asserted after every recovery. Iterations: env BESS_TORTURE_CP_ITERS
// (default 60, floor 50).
TEST_F(TortureTest, CheckpointAndRecycleCrashpoints) {
  uint64_t base_seed = 0xC4EC9017ull;
  if (const char* env = std::getenv("BESS_TORTURE_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  int iters = 60;
  if (const char* env = std::getenv("BESS_TORTURE_CP_ITERS")) {
    iters = std::max(50, std::atoi(env));
  }
  SCOPED_TRACE("base seed " + std::to_string(base_seed) +
               " (set BESS_TORTURE_SEED to reproduce)");
  SeedDatabase();

  Random seeder(base_seed);
  uint64_t floor_value = 0;
  uint64_t max_attempt = 0;
  uint64_t max_acked = 0;
  for (int iter = 0; iter < iters; ++iter) {
    const uint64_t seed = seeder.Next();
    ASSERT_TRUE(RunChild(seed, /*recovery_only=*/false, &max_attempt,
                         &max_acked, RunCheckpointCrashChild))
        << "iter=" << iter << " seed=" << seed;

    // Every third iteration, kill a process while it recovers (recovery
    // itself checkpoints and recycles at the end of restart).
    if (iter % 3 == 2) {
      const uint64_t rseed = seeder.Next();
      uint64_t ignored_a = 0, ignored_b = 0;
      ASSERT_TRUE(RunChild(rseed, /*recovery_only=*/true, &ignored_a,
                           &ignored_b, RunCheckpointCrashChild))
          << "iter=" << iter << " recovery seed=" << rseed;
    }

    const uint64_t value = VerifyConsistent(max_attempt, max_acked, seed);
    ASSERT_GE(value, floor_value)
        << "recovered state went backwards, iter=" << iter
        << " seed=" << seed;
    floor_value = value;
    if (::testing::Test::HasFailure()) {
      FAIL() << "stopping after first failing iteration " << iter
             << ", seed=" << seed << " (base " << base_seed << ")";
    }
  }
}

// Bit-rot torture: every iteration commits through a lying disk that
// randomly flips one bit per written page, then scrubs while the WAL still
// holds the commit's page images. The integrity invariant under test:
//
//   every injected flip is either repaired byte-exact from the WAL or ends
//   in a clean quarantine — never a silent corruption, never a crash —
//
// and at the end the observability counters must reconcile exactly with the
// injector's own hit log. Iterations: env BESS_TORTURE_BITROT_ITERS
// (default 60, floor 50 per the acceptance bar).
TEST_F(TortureTest, BitRotRepairOrCleanQuarantine) {
  uint64_t base_seed = 0xB17B075Eull;
  if (const char* env = std::getenv("BESS_TORTURE_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  int iters = 60;
  if (const char* env = std::getenv("BESS_TORTURE_BITROT_ITERS")) {
    iters = std::max(50, std::atoi(env));
  }
  SCOPED_TRACE("base seed " + std::to_string(base_seed) +
               " (set BESS_TORTURE_SEED to reproduce)");
  SeedDatabase();

  auto& faults = fault::FaultRegistry::Instance();
  const uint64_t hits_before = faults.hits("page.bitrot");
  const Stats before = Snapshot();

  // Scratch area for the no-image branch: it has no repair handler, so a
  // flip there must land in quarantine (and heal on the next full rewrite).
  auto scratch =
      StorageArea::Create((dir_ / "rot_scratch").string(), 99);
  ASSERT_TRUE(scratch.ok());
  auto scratch_seg = (*scratch)->AllocSegment(1);
  ASSERT_TRUE(scratch_seg.ok());
  uint64_t quarantine_rounds = 0;

  Random seeder(base_seed);
  std::string body(kObjectSize, '\0');
  for (int iter = 0; iter < iters; ++iter) {
    const uint64_t seed = seeder.Next();
    Database::Options o;
    o.dir = dir_.string();
    o.create = false;
    auto dbr = Database::Open(o);
    ASSERT_TRUE(dbr.ok()) << "iter=" << iter << " seed=" << seed << ": "
                          << dbr.status().ToString();
    auto db = std::move(*dbr);

    // Silent-corruption check: every object must read back the value of the
    // last acknowledged commit (= iter, since nothing here crashes), with an
    // intact fill — a flip the integrity layer missed would surface here.
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    Slot* slots[kObjects];
    for (int i = 0; i < kObjects; ++i) {
      auto s = db->GetRoot(RootName(i));
      ASSERT_TRUE(s.ok()) << "iter=" << iter << " seed=" << seed
                          << " object " << i << ": " << s.status().ToString();
      slots[i] = *s;
      const uint64_t v = *reinterpret_cast<const uint64_t*>(slots[i]->dp);
      ASSERT_EQ(v, static_cast<uint64_t>(iter))
          << "silent corruption or lost commit at object " << i
          << ", iter=" << iter << " seed=" << seed;
      const char* raw = reinterpret_cast<const char*>(slots[i]->dp);
      ASSERT_EQ(raw[kObjectSize - 1], static_cast<char>('A' + v % 26))
          << "fill corrupted at object " << i << ", iter=" << iter;
    }

    // Commit through the lying disk: each page write flips one bit with
    // probability 0.25 but reports success and stamps the intended CRC.
    const uint64_t next = static_cast<uint64_t>(iter) + 1;
    memset(body.data(), static_cast<char>('A' + next % 26), body.size());
    memcpy(body.data(), &next, sizeof(next));
    for (int i = 0; i < kObjects; ++i) {
      memcpy(reinterpret_cast<void*>(slots[i]->dp), body.data(), body.size());
    }
    fault::FaultSpec rot;
    rot.action = fault::FaultAction::kBitRot;
    rot.probability = 0.25;
    rot.seed = seed;
    faults.Arm("page.bitrot", rot);
    ASSERT_TRUE(db->Commit(*txn).ok()) << "iter=" << iter << " seed=" << seed;
    faults.DisarmAll();

    // Scrub while the WAL still holds this commit's exact page images:
    // every flip must be found and repaired byte-exact; none may quarantine.
    auto report = db->Scrub();
    ASSERT_TRUE(report.ok()) << "iter=" << iter << " seed=" << seed << ": "
                             << report.status().ToString();
    EXPECT_EQ(report->repaired, report->verify_failures)
        << "unrepaired flip despite a live WAL image, iter=" << iter
        << " seed=" << seed;
    EXPECT_EQ(report->quarantined, 0u) << "iter=" << iter << " seed=" << seed;

    // Every 4th iteration, the no-image branch: a guaranteed flip on the
    // handler-less scratch area must end in a clean quarantine — the area
    // stays usable and the page heals on the next full rewrite.
    if (iter % 4 == 3) {
      const std::string page = std::string(kPageSize, 'r');
      fault::FaultSpec certain;
      certain.action = fault::FaultAction::kBitRot;
      certain.count = 1;
      faults.Arm("page.bitrot", certain);
      ASSERT_TRUE((*scratch)
                      ->WritePages(scratch_seg->first_page, 1, page.data(), 1)
                      .ok());
      faults.DisarmAll();
      ScrubReport sr;
      ASSERT_TRUE((*scratch)->Scrub(&sr).ok());
      EXPECT_EQ(sr.verify_failures, 1u) << "iter=" << iter;
      EXPECT_EQ(sr.quarantined, 1u) << "iter=" << iter;
      EXPECT_TRUE((*scratch)->IsQuarantined(scratch_seg->first_page));
      ASSERT_TRUE((*scratch)
                      ->WritePages(scratch_seg->first_page, 1, page.data(), 2)
                      .ok());
      std::string back(kPageSize, '\0');
      ASSERT_TRUE(
          (*scratch)->ReadPages(scratch_seg->first_page, 1, back.data()).ok());
      EXPECT_EQ(back, page);
      quarantine_rounds++;
    }

    if (::testing::Test::HasFailure()) {
      FAIL() << "stopping after first failing iteration " << iter
             << ", seed=" << seed << " (base " << base_seed << ")";
    }
  }

  // Reconcile the observability counters against the injector's log: every
  // hit was detected exactly once, split between repairs (WAL image present)
  // and the scratch area's quarantines; nothing slipped through and nothing
  // was double-counted.
  const uint64_t hits = faults.hits("page.bitrot") - hits_before;
  const Stats delta = StatsDelta(before, Snapshot());
  EXPECT_GT(hits, 0u) << "injector never fired: bit-rot path untested";
#if BESS_METRICS_ENABLED
  EXPECT_EQ(delta.counter("page.verify.fail"), hits);
  EXPECT_EQ(delta.counter("page.repair.ok"), hits - quarantine_rounds);
  EXPECT_EQ(delta.counter("page.quarantined"), quarantine_rounds);
  EXPECT_EQ(delta.counter("page.reread.ok"), 0u);
#endif
}

// ---- reactor-path chaos (DESIGN.md §12) -------------------------------------
//
// Seeded fault schedules against a live server: EAGAIN/short-write storms on
// the reactor's non-blocking send/recv paths, clients that vanish abruptly
// mid-pipeline, clients holding locks when they die, slow consumers that
// stop reading, and a forked client SIGSTOP'd mid-flight (a frozen peer the
// idle prober must reap). The invariant is graceful degradation: whatever
// the schedule does, afterwards the server holds zero sessions, every lock
// the dead clients held is grantable again immediately, and the process's
// fd count returns to baseline.

// Forked pipeline client for the SIGSTOP schedule: hammers pings until the
// parent freezes and then kills it. Runs in a child process, so gtest
// machinery and the parent's fault registry are out of the picture.
[[noreturn]] void RunPipelineChild(const std::string& sock_path) {
  auto s = MsgSocket::Connect(sock_path);
  if (!s.ok()) ::_exit(3);
  if (!s->Send(kMsgHello, "").ok()) ::_exit(3);
  if (!s->Recv().ok()) ::_exit(3);
  uint64_t id = 1;
  for (;;) {
    if (!s->Send(kMsgPing, "chaos", id++).ok()) ::_exit(0);
    (void)s->RecvTimeout(5);
  }
}

TEST_F(TortureTest, ReactorChaosLeaksNoSessionsFdsOrLocks) {
  uint64_t base_seed = 0xC4405EEDull;
  if (const char* env = std::getenv("BESS_TORTURE_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  int iters = 60;  // the overload gate wants >= 50 schedules
  if (const char* env = std::getenv("BESS_CHAOS_ITERS")) {
    iters = std::max(50, std::atoi(env));
  }

  const std::string sock_path = (dir_ / "chaos.sock").string();
  BessServer::Options o;
  o.socket_path = sock_path;
  o.worker_threads = 2;
  o.lock_timeout_ms = 300;
  o.max_inflight_global = 64;
  o.send_soft_cap_bytes = 32 << 10;
  o.send_hard_cap_bytes = 128 << 10;
  o.idle_timeout_ms = 50;
  o.watchdog_ms = 200;
  BessServer server(o);
  ASSERT_TRUE(server.Start().ok());

  auto connect_raw = [&]() -> Result<MsgSocket> {
    auto s = MsgSocket::Connect(sock_path);
    if (!s.ok()) return s.status();
    BESS_RETURN_IF_ERROR(s->Send(kMsgHello, ""));
    auto h = s->Recv();
    if (!h.ok()) return h.status();
    if (h->type != kMsgOk) return Status::Protocol("bad hello");
    return std::move(*s);
  };
  auto lock_payload = [](uint64_t key, uint32_t timeout_ms) {
    std::string p;
    PutFixed64(&p, key);
    p.push_back(static_cast<char>(LockMode::kX));
    PutFixed32(&p, timeout_ms);
    return p;
  };

  // Steady-state fd baseline (listener + reactor plumbing are up).
  {
    auto warm = connect_raw();
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    (void)warm->Send(kMsgGoodbye, "");
  }
  size_t fd_baseline = 0;
  for (auto it = std::filesystem::directory_iterator("/proc/self/fd");
       it != std::filesystem::directory_iterator(); ++it) {
    ++fd_baseline;
  }

  auto& faults = fault::FaultRegistry::Instance();
  for (int iter = 0; iter < iters; ++iter) {
    const uint64_t seed = base_seed * 6364136223846793005ull + iter;
    Random rng(seed);

    // A fault storm on the reactor's non-blocking paths. kFail/kWouldBlock
    // is an EAGAIN storm; kShortWrite fragments reply frames. Blocking
    // client sockets don't pass these points, so the schedule stresses
    // exactly the server's continuation/flush machinery.
    if (rng.Uniform(4) != 0) {
      fault::FaultSpec storm;
      if (rng.Uniform(2) == 0) {
        storm.action = fault::FaultAction::kFail;
        storm.code = StatusCode::kWouldBlock;
      } else {
        storm.action = fault::FaultAction::kShortWrite;
        storm.max_bytes = rng.Range(0, 40);
      }
      storm.probability = 0.2 + 0.1 * rng.Uniform(4);
      storm.seed = seed;
      faults.Arm("sock.trysend", storm);
    }
    if (rng.Uniform(3) == 0) {
      fault::FaultSpec storm;
      storm.action = fault::FaultAction::kFail;
      storm.code = StatusCode::kWouldBlock;
      storm.probability = 0.2;
      storm.seed = seed ^ 0xFEED;
      faults.Arm("sock.tryrecv", storm);
    }

    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
      const uint64_t cseed = seed + 1000 + c;
      clients.emplace_back([&, cseed] {
        Random crng(cseed);
        auto s = connect_raw();
        if (!s.ok()) return;  // rejected/raced: fine, nothing to leak
        const int mode = static_cast<int>(crng.Uniform(4));
        const uint64_t key = 1000 + crng.Uniform(4);
        switch (mode) {
          case 0: {  // clean pipeline, deadline on some requests, goodbye
            for (uint64_t i = 1; i <= 10; ++i) {
              const uint32_t dl = crng.Uniform(2) == 0 ? 0 : 20;
              if (!s->Send(kMsgPing, "p", i, dl).ok()) return;
            }
            for (int i = 0; i < 10; ++i) {
              if (!s->RecvTimeout(500).ok()) break;  // storm delays are fine
            }
            (void)s->Send(kMsgGoodbye, "");
            break;
          }
          case 1: {  // vanish abruptly mid-pipeline
            for (uint64_t i = 1; i <= 10; ++i) {
              if (!s->Send(kMsgPing, "p", i).ok()) return;
            }
            s->Close();
            break;
          }
          case 2: {  // die holding a lock: on_close must release it
            (void)s->Send(kMsgLock, lock_payload(key, 200), 1);
            (void)s->RecvTimeout(400);
            (void)s->Send(kMsgPing, "p", 2);
            s->Close();
            break;
          }
          default: {  // slow consumer: pipeline bulk, never read, vanish
            const std::string big(4 << 10, 'c');
            for (uint64_t i = 1; i <= 8; ++i) {
              if (!s->Send(kMsgPing, big, i).ok()) break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            s->Close();
            break;
          }
        }
      });
    }

    // Every fifth schedule adds a frozen peer: a forked pipelining client
    // SIGSTOP'd mid-flight. The server must probe it, get silence, and
    // reap — then the corpse is killed for real.
    pid_t frozen = -1;
    if (iter % 5 == 0) {
      frozen = ::fork();
      ASSERT_GE(frozen, 0);
      if (frozen == 0) RunPipelineChild(sock_path);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      ASSERT_EQ(::kill(frozen, SIGSTOP), 0);
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
      (void)::kill(frozen, SIGCONT);
      (void)::kill(frozen, SIGKILL);
      int st = 0;
      ASSERT_EQ(::waitpid(frozen, &st, 0), frozen);
    }

    for (auto& t : clients) t.join();
    faults.DisarmAll();

    if (::testing::Test::HasFailure()) {
      FAIL() << "stopping after failing chaos iteration " << iter
             << ", seed=" << seed << " (base " << base_seed << ")";
    }
  }

  // Graceful degradation: every session unwound, no fd leaked, and every
  // lock a dead client held is grantable immediately by a fresh session.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (server.live_sessions() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.live_sessions(), 0u) << "sessions leaked after chaos";
  EXPECT_EQ(server.stuck_workers(), 0);

  auto probe = connect_raw();
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  for (uint64_t key = 1000; key < 1004; ++key) {
    ASSERT_TRUE(probe->Send(kMsgLock, lock_payload(key, 100), key).ok());
    auto granted = probe->Recv();
    ASSERT_TRUE(granted.ok()) << granted.status().ToString();
    EXPECT_EQ(granted->type, kMsgOk)
        << "lock " << key << " leaked by a dead session";
  }
  (void)probe->Send(kMsgGoodbye, "");

  size_t fds = 0;
  const auto fd_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    fds = 0;
    for (auto it = std::filesystem::directory_iterator("/proc/self/fd");
         it != std::filesystem::directory_iterator(); ++it) {
      ++fds;
    }
    if (fds <= fd_baseline || std::chrono::steady_clock::now() > fd_deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_LE(fds, fd_baseline) << "fds leaked after chaos";
}

}  // namespace
}  // namespace bess
