// WAL crash-recovery torture harness.
//
// Each iteration forks a child that runs commit workloads against the
// database while a seeded crashpoint (SIGKILL — no unwind, no flush) is
// armed on a random file I/O point. The parent then reopens the database,
// which runs ARIES restart recovery, and asserts the invariants that define
// crash consistency:
//
//   1. Durability: every commit the child acknowledged is present.
//   2. Atomicity: all objects of the multi-page commit group carry the same
//      value — a crash never exposes half a transaction.
//   3. No phantoms: the recovered value never exceeds the last attempt.
//   4. Recovery is idempotent: killing the process *during recovery* and
//      recovering again yields the same consistent state.
//
// Everything is driven by one base seed (env BESS_TORTURE_SEED), and each
// iteration derives its own; failures print the iteration seed so any run
// reproduces exactly. Iteration count: env BESS_TORTURE_ITERS (default 200,
// a few seconds — the CI "torture" label budget).
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "object/database.h"
#include "os/fault_injection.h"
#include "util/random.h"

namespace bess {
namespace {

constexpr int kObjects = 6;          // one commit touches all of these
constexpr uint32_t kObjectSize = 1200;  // ~2 data pages per commit group
constexpr int kMaxTxnsPerChild = 500;   // bound if the crashpoint never fires

struct PipeRecord {
  uint64_t tag;  // 0 = attempting value, 1 = value acknowledged committed
  uint64_t value;
};

std::string RootName(int i) { return "o" + std::to_string(i); }

// The child workload: open (recovery may run — and may be the thing that
// crashes), then repeatedly bump the shared counter in every object inside
// one transaction, reporting attempts and acks through the pipe.
[[noreturn]] void RunCrashChild(const std::string& dir, uint64_t seed,
                                int report_fd, bool recovery_only) {
  Random rng(seed);
  static const char* kPoints[] = {"file.writeat", "file.sync", "file.append",
                                  "file.readat"};
  // Recovery-crash children die fast (low nth, reads included); workload
  // children let the open finish more often (reads excluded).
  const char* point = recovery_only
                          ? kPoints[rng.Uniform(4)]
                          : kPoints[rng.Uniform(3)];
  const int nth = static_cast<int>(
      recovery_only ? rng.Range(1, 25) : rng.Range(1, 60));
  fault::FaultRegistry::Instance().Arm(point,
                                       fault::FaultSpec::CrashAtNth(nth));

  Database::Options o;
  o.dir = dir;
  o.create = false;
  auto dbr = Database::Open(o);
  if (!dbr.ok()) ::_exit(3);
  if (recovery_only) ::_exit(0);  // crashpoint never fired during recovery
  auto db = std::move(*dbr);
  auto fid = db->FindFile("f");
  if (!fid.ok()) ::_exit(3);

  std::string body(kObjectSize, '\0');
  for (int t = 0; t < kMaxTxnsPerChild; ++t) {
    auto txn = db->Begin();
    if (!txn.ok()) ::_exit(3);
    Slot* slots[kObjects];
    uint64_t cur = 0;
    for (int i = 0; i < kObjects; ++i) {
      auto s = db->GetRoot(RootName(i));
      if (!s.ok()) ::_exit(3);
      slots[i] = *s;
      cur = *reinterpret_cast<const uint64_t*>(slots[i]->dp);
    }
    const uint64_t next = cur + 1;
    PipeRecord attempt{0, next};
    if (::write(report_fd, &attempt, sizeof(attempt)) != sizeof(attempt)) {
      ::_exit(3);
    }
    // Same value into every object, plus a value-derived fill so a torn
    // page would corrupt more than just the counter word.
    memset(body.data(), static_cast<char>('A' + next % 26), body.size());
    memcpy(body.data(), &next, sizeof(next));
    for (int i = 0; i < kObjects; ++i) {
      memcpy(reinterpret_cast<void*>(slots[i]->dp), body.data(), body.size());
    }
    if (!db->Commit(*txn).ok()) ::_exit(3);
    PipeRecord acked{1, next};
    if (::write(report_fd, &acked, sizeof(acked)) != sizeof(acked)) {
      ::_exit(3);
    }
  }
  ::_exit(0);  // the crashpoint never fired: clean exit, still verified
}

class TortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bess_torture_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Creates the database with kObjects root objects all holding value 0.
  void SeedDatabase() {
    Database::Options o;
    o.dir = dir_.string();
    o.create = true;
    auto dbr = Database::Open(o);
    ASSERT_TRUE(dbr.ok()) << dbr.status().ToString();
    auto db = std::move(*dbr);
    auto file = db->CreateFile("f");
    ASSERT_TRUE(file.ok());
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    std::string body(kObjectSize, 'A');
    uint64_t zero = 0;
    memcpy(body.data(), &zero, sizeof(zero));
    for (int i = 0; i < kObjects; ++i) {
      auto slot = db->CreateObject(*file, kRawBytesType, kObjectSize,
                                   body.data());
      ASSERT_TRUE(slot.ok());
      ASSERT_TRUE(db->SetRoot(RootName(i), *slot).ok());
    }
    ASSERT_TRUE(db->Commit(*txn).ok());
  }

  // Forks a crash child and collects what it reported before dying.
  // Returns false only on harness failure (child hit an unexpected error).
  bool RunChild(uint64_t seed, bool recovery_only, uint64_t* max_attempt,
                uint64_t* max_acked) {
    int pipefd[2];
    EXPECT_EQ(::pipe(pipefd), 0);
    const pid_t pid = ::fork();
    EXPECT_GE(pid, 0);
    if (pid == 0) {
      ::close(pipefd[0]);
      RunCrashChild(dir_.string(), seed, pipefd[1], recovery_only);
    }
    ::close(pipefd[1]);
    PipeRecord rec;
    for (;;) {
      const ssize_t n = ::read(pipefd[0], &rec, sizeof(rec));
      if (n != sizeof(rec)) break;  // EOF: the child died (or finished)
      if (rec.tag == 0) {
        *max_attempt = std::max(*max_attempt, rec.value);
      } else {
        *max_acked = std::max(*max_acked, rec.value);
      }
    }
    ::close(pipefd[0]);
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    const bool killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    EXPECT_TRUE(killed || clean)
        << "child failed unexpectedly, status=" << status << " seed=" << seed;
    return killed || clean;
  }

  // Reopens the database (running recovery) and asserts the ARIES
  // invariants; returns the recovered counter value.
  uint64_t VerifyConsistent(uint64_t max_attempt, uint64_t max_acked,
                            uint64_t seed) {
    Database::Options o;
    o.dir = dir_.string();
    o.create = false;
    auto dbr = Database::Open(o);
    EXPECT_TRUE(dbr.ok()) << "recovery failed: " << dbr.status().ToString()
                          << " seed=" << seed;
    if (!dbr.ok()) return 0;
    auto db = std::move(*dbr);
    uint64_t value = 0;
    for (int i = 0; i < kObjects; ++i) {
      auto s = db->GetRoot(RootName(i));
      EXPECT_TRUE(s.ok()) << "root lost, seed=" << seed;
      if (!s.ok()) return 0;
      const uint64_t v = *reinterpret_cast<const uint64_t*>((*s)->dp);
      const char* body = reinterpret_cast<const char*>((*s)->dp);
      if (i == 0) {
        value = v;
      } else {
        // Atomicity: one commit updates all objects or none.
        EXPECT_EQ(v, value) << "torn commit visible at object " << i
                            << ", seed=" << seed;
      }
      // The fill bytes must match the counter (no partial page survived).
      const char want = static_cast<char>('A' + v % 26);
      EXPECT_EQ(body[sizeof(uint64_t)], want)
          << "page fill torn at object " << i << ", seed=" << seed;
      EXPECT_EQ(body[kObjectSize - 1], want)
          << "page tail torn at object " << i << ", seed=" << seed;
    }
    // Durability: acked commits survived. No phantoms: nothing beyond the
    // last attempt materialized.
    EXPECT_GE(value, max_acked) << "acked commit lost, seed=" << seed;
    EXPECT_LE(value, max_attempt) << "phantom commit, seed=" << seed;
    return value;
  }

  std::filesystem::path dir_;
};

TEST_F(TortureTest, RandomizedCrashpoints) {
  uint64_t base_seed = 0xBE55BE55ull;
  if (const char* env = std::getenv("BESS_TORTURE_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  int iters = 200;
  if (const char* env = std::getenv("BESS_TORTURE_ITERS")) {
    iters = std::atoi(env);
  }
  SCOPED_TRACE("base seed " + std::to_string(base_seed) +
               " (set BESS_TORTURE_SEED to reproduce)");
  SeedDatabase();

  Random seeder(base_seed);
  uint64_t floor_value = 0;   // recovered value is monotone across crashes
  uint64_t max_attempt = 0;
  uint64_t max_acked = 0;
  for (int iter = 0; iter < iters; ++iter) {
    const uint64_t seed = seeder.Next();
    ASSERT_TRUE(RunChild(seed, /*recovery_only=*/false, &max_attempt,
                         &max_acked))
        << "iter=" << iter << " seed=" << seed;

    // Every third iteration, also kill a process *while it recovers* —
    // recovery must be restartable (repeating history is idempotent).
    if (iter % 3 == 2) {
      const uint64_t rseed = seeder.Next();
      uint64_t ignored_a = 0, ignored_b = 0;
      ASSERT_TRUE(RunChild(rseed, /*recovery_only=*/true, &ignored_a,
                           &ignored_b))
          << "iter=" << iter << " recovery seed=" << rseed;
    }

    const uint64_t value = VerifyConsistent(max_attempt, max_acked, seed);
    ASSERT_GE(value, floor_value)
        << "recovered state went backwards, iter=" << iter
        << " seed=" << seed;
    floor_value = value;
    if (::testing::Test::HasFailure()) {
      FAIL() << "stopping after first failing iteration " << iter
             << ", seed=" << seed << " (base " << base_seed << ")";
    }
  }
}

}  // namespace
}  // namespace bess
