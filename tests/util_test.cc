// Tests for Status/Result, Slice encoding, CRC32C, and Random.
#include <gtest/gtest.h>

#include "util/crc32c.h"
#include "util/random.h"
#include "util/slice.h"
#include "util/status.h"

namespace bess {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing widget");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing widget");
  EXPECT_EQ(s.ToString(), "NotFound: missing widget");
}

TEST(StatusTest, CopyIsCheapAndEqualByCode) {
  Status a = Status::Corruption("x");
  Status b = a;
  EXPECT_TRUE(b.IsCorruption());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, Status::Corruption("different message"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IOError("disk on fire"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status Fails() { return Status::Busy("nope"); }
Status Propagates() {
  BESS_RETURN_IF_ERROR(Fails());
  return Status::OK();
}
Result<int> Seven() { return 7; }
Status UsesAssign(int* out) {
  BESS_ASSIGN_OR_RETURN(int v, Seven());
  *out = v;
  return Status::OK();
}

TEST(ResultTest, Macros) {
  EXPECT_TRUE(Propagates().IsBusy());
  int v = 0;
  EXPECT_TRUE(UsesAssign(&v).ok());
  EXPECT_EQ(v, 7);
}

TEST(SliceTest, BasicViews) {
  std::string s = "hello world";
  Slice sl(s);
  EXPECT_EQ(sl.size(), 11u);
  sl.remove_prefix(6);
  EXPECT_EQ(sl.ToString(), "world");
  EXPECT_EQ(Slice("abc").compare(Slice("abd")), -1);
  EXPECT_EQ(Slice("abc"), Slice("abc"));
  EXPECT_NE(Slice("abc"), Slice("ab"));
}

TEST(SliceTest, FixedEncodingRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  PutLengthPrefixed(&buf, Slice("payload"));
  Decoder dec(buf);
  EXPECT_EQ(dec.GetFixed16(), 0xBEEF);
  EXPECT_EQ(dec.GetFixed32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.GetFixed64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(dec.GetLengthPrefixed().ToString(), "payload");
  EXPECT_TRUE(dec.ok());
  EXPECT_EQ(dec.remaining(), 0u);
}

TEST(SliceTest, DecoderDetectsTruncation) {
  std::string buf;
  PutFixed32(&buf, 100);  // length prefix promising 100 bytes
  Decoder dec(buf);
  Slice payload = dec.GetLengthPrefixed();
  EXPECT_FALSE(dec.ok());
  EXPECT_TRUE(payload.empty());
  // Further reads stay failed and return zeros.
  EXPECT_EQ(dec.GetFixed64(), 0u);
  EXPECT_FALSE(dec.ok());
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  unsigned char zeros[32] = {0};
  EXPECT_EQ(crc32c::Value(zeros, sizeof(zeros)), 0x8A9136AAu);
  // "123456789" -> 0xE3069283.
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, ExtendMatchesWhole) {
  const char* data = "some longer piece of data for crc";
  const size_t n = strlen(data);
  uint32_t whole = crc32c::Value(data, n);
  uint32_t part = crc32c::Extend(crc32c::Value(data, 10), data + 10, n - 10);
  EXPECT_EQ(whole, part);
}

TEST(Crc32cTest, MaskRoundTrip) {
  uint32_t crc = crc32c::Value("abc", 3);
  EXPECT_NE(crc, crc32c::Mask(crc));
  EXPECT_EQ(crc, crc32c::Unmask(crc32c::Mask(crc)));
}

TEST(RandomTest, DeterministicPerSeed) {
  Random a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformStaysInRange) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(17), 17u);
    uint64_t v = r.Range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RandomTest, SkewedPrefersLowValues) {
  Random r(99);
  int low = 0;
  const int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    if (r.Skewed(100, 0.9) < 20) ++low;
  }
  // With skew, the low 20% of keys should draw well over 20% of accesses.
  EXPECT_GT(low, kTrials / 3);
}

}  // namespace
}  // namespace bess
