// Tests for the shared-memory operation mode (§4.1.2, Figure 4): SMT frame
// agreement across processes, SVMA pointer translation, the two-level clock,
// reference-count pinning, and crash cleanup.
#include <gtest/gtest.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>

#include "cache/shared_cache.h"
#include "os/file.h"

namespace bess {
namespace {

// A file-backed page store usable from several processes at once.
class FilePageStore : public SegmentStore {
 public:
  explicit FilePageStore(const std::string& path) {
    auto f = File::Open(path);
    file_ = std::move(*f);
  }
  Status FetchSlotted(SegmentId, void*, uint32_t*) override {
    return Status::NotSupported("raw page store");
  }
  Status FetchPages(uint16_t, uint16_t, PageId first, uint32_t count,
                    void* buf) override {
    return file_.ReadAt(static_cast<uint64_t>(first) * kPageSize, buf,
                        static_cast<size_t>(count) * kPageSize);
  }
  Status WritePages(uint16_t, uint16_t, PageId first, uint32_t count,
                    const void* buf) override {
    return file_.WriteAt(static_cast<uint64_t>(first) * kPageSize, buf,
                         static_cast<size_t>(count) * kPageSize);
  }

 private:
  File file_;
};

class SharedCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    shm_name_ = "/bess_test_" + std::to_string(::getpid()) + "_" +
                info->name();
    dir_ = std::filesystem::temp_directory_path() /
           ("bess_shc_" + std::to_string(::getpid()) + "_" + info->name());
    std::filesystem::create_directories(dir_);
    store_path_ = (dir_ / "pages").string();
    // 64 pages of recognizable data.
    auto f = File::Open(store_path_);
    ASSERT_TRUE(f.ok());
    for (uint32_t p = 0; p < 64; ++p) {
      std::string page(kPageSize, static_cast<char>('A' + (p % 26)));
      memcpy(page.data(), &p, sizeof(p));
      ASSERT_TRUE(
          f->WriteAt(static_cast<uint64_t>(p) * kPageSize, page.data(),
                     kPageSize)
              .ok());
    }
  }
  void TearDown() override {
    ::shm_unlink(shm_name_.c_str());
    std::filesystem::remove_all(dir_);
  }

  SharedCache::Geometry SmallGeo() {
    SharedCache::Geometry geo;
    geo.frame_count = 4;
    geo.vframe_count = 32;
    geo.smt_capacity = 64;
    return geo;
  }

  static PageAddr Page(uint32_t p) { return PageAddr{1, 0, p}; }

  std::string shm_name_;
  std::filesystem::path dir_;
  std::string store_path_;
};

TEST_F(SharedCacheTest, FixReadsCorrectPages) {
  auto cache = SharedCache::Create(shm_name_, SmallGeo());
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  FilePageStore store(store_path_);
  auto space = SharedPageSpace::Open(std::move(*cache), &store);
  ASSERT_TRUE(space.ok());

  for (uint32_t p = 0; p < 4; ++p) {
    auto addr = (*space)->Fix(Page(p), false);
    ASSERT_TRUE(addr.ok()) << addr.status().ToString();
    uint32_t got;
    memcpy(&got, *addr, sizeof(got));
    EXPECT_EQ(got, p);
  }
  EXPECT_EQ((*space)->stats().misses, 4u);
  // Re-fix: all hits, same addresses.
  auto again = (*space)->Fix(Page(2), false);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*space)->stats().hits, 1u);
}

TEST_F(SharedCacheTest, WritesFlushThroughStore) {
  auto cache = SharedCache::Create(shm_name_, SmallGeo());
  ASSERT_TRUE(cache.ok());
  FilePageStore store(store_path_);
  auto space = SharedPageSpace::Open(std::move(*cache), &store);
  ASSERT_TRUE(space.ok());

  auto addr = (*space)->Fix(Page(5), /*for_write=*/true);
  ASSERT_TRUE(addr.ok());
  memcpy(*addr, "SHAREDWRITE", 11);
  ASSERT_TRUE((*space)->FlushDirty().ok());

  std::string check(kPageSize, '\0');
  FilePageStore verify(store_path_);
  ASSERT_TRUE(verify.FetchPages(1, 0, 5, 1, check.data()).ok());
  EXPECT_EQ(check.substr(0, 11), "SHAREDWRITE");
}

TEST_F(SharedCacheTest, ReplacementEvictsAndDataSurvives) {
  auto cache = SharedCache::Create(shm_name_, SmallGeo());
  ASSERT_TRUE(cache.ok());
  FilePageStore store(store_path_);
  auto space = SharedPageSpace::Open(std::move(*cache), &store);
  ASSERT_TRUE(space.ok());

  // 12 pages through a 4-slot cache: the clock must evict.
  for (uint32_t p = 0; p < 12; ++p) {
    auto addr = (*space)->Fix(Page(p), true);
    ASSERT_TRUE(addr.ok()) << "page " << p << ": "
                           << addr.status().ToString();
    memcpy(static_cast<char*>(*addr) + 64, &p, sizeof(p));
  }
  EXPECT_GT((*space)->stats().evictions, 0u);
  ASSERT_TRUE((*space)->FlushDirty().ok());
  // Everything is durable despite the churn.
  for (uint32_t p = 0; p < 12; ++p) {
    auto addr = (*space)->Fix(Page(p), false);
    ASSERT_TRUE(addr.ok());
    uint32_t got;
    memcpy(&got, static_cast<char*>(*addr) + 64, sizeof(got));
    EXPECT_EQ(got, p) << "page " << p;
  }
}

TEST_F(SharedCacheTest, PointerSurvivesReplacementViaRefault) {
  auto cache = SharedCache::Create(shm_name_, SmallGeo());
  ASSERT_TRUE(cache.ok());
  FilePageStore store(store_path_);
  auto space = SharedPageSpace::Open(std::move(*cache), &store);
  ASSERT_TRUE(space.ok());

  auto addr = (*space)->Fix(Page(0), false);
  ASSERT_TRUE(addr.ok());
  char* held = static_cast<char*>(*addr);
  // Push page 0 out (cache churn + our own clock sweeps).
  for (uint32_t p = 1; p < 12; ++p) {
    ASSERT_TRUE((*space)->Fix(Page(p), false).ok());
  }
  // The held pointer may be invalid/protected now; touching it refaults and
  // transparently rebinds (Figure 4's P1-accesses-C scenario).
  uint32_t got;
  memcpy(&got, held, sizeof(got));
  EXPECT_EQ(got, 0u);
  EXPECT_GT((*space)->stats().second_chances + (*space)->stats().remaps, 0u);
}

TEST_F(SharedCacheTest, SvmaOffsetsAgreeAcrossProcesses) {
  auto cache = SharedCache::Create(shm_name_, SmallGeo());
  ASSERT_TRUE(cache.ok());

  int sync_pipe[2], result_pipe[2];
  ASSERT_EQ(pipe(sync_pipe), 0);
  ASSERT_EQ(pipe(result_pipe), 0);

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: attach, fix page 7, report its SVMA offset and write a marker
    // through shared memory.
    FilePageStore store(store_path_);
    auto attached = SharedCache::Attach(shm_name_);
    if (!attached.ok()) _exit(2);
    auto space = SharedPageSpace::Open(std::move(*attached), &store);
    if (!space.ok()) _exit(2);
    auto addr = (*space)->Fix(Page(7), true);
    if (!addr.ok()) _exit(2);
    auto svma = (*space)->ToSvma(*addr);
    if (!svma.ok()) _exit(2);
    uint64_t off = *svma;
    memcpy(static_cast<char*>(*addr) + 128, "FROMCHILD", 9);
    if (write(result_pipe[1], &off, sizeof(off)) != sizeof(off)) _exit(2);
    char go;
    (void)!read(sync_pipe[0], &go, 1);  // hold the process alive until told
    _exit(0);
  }

  FilePageStore store(store_path_);
  auto space = SharedPageSpace::Open(std::move(*cache), &store);
  ASSERT_TRUE(space.ok());
  uint64_t child_svma = 0;
  ASSERT_EQ(read(result_pipe[0], &child_svma, sizeof(child_svma)),
            (ssize_t)sizeof(child_svma));

  // Parent maps the same page: same SVMA offset (same virtual frame), and
  // the child's write is visible through the shared slot.
  auto addr = (*space)->Fix(Page(7), false);
  ASSERT_TRUE(addr.ok());
  auto svma = (*space)->ToSvma(*addr);
  ASSERT_TRUE(svma.ok());
  EXPECT_EQ(*svma, child_svma) << "SMT frame assignment differs";
  EXPECT_EQ(memcmp(static_cast<char*>(*addr) + 128, "FROMCHILD", 9), 0);
  // And FromSvma round-trips.
  EXPECT_EQ((*space)->FromSvma(*svma), *addr);

  ASSERT_EQ(write(sync_pipe[1], "x", 1), 1);
  int wstatus;
  waitpid(pid, &wstatus, 0);
  EXPECT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0);
}

TEST_F(SharedCacheTest, BoundSlotsCannotBeUnilaterallyReplaced) {
  auto cache = SharedCache::Create(shm_name_, SmallGeo());
  ASSERT_TRUE(cache.ok());

  int hold_pipe[2], ready_pipe[2];
  ASSERT_EQ(pipe(hold_pipe), 0);
  ASSERT_EQ(pipe(ready_pipe), 0);

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: bind all four slots and hold them accessible.
    FilePageStore store(store_path_);
    auto attached = SharedCache::Attach(shm_name_);
    if (!attached.ok()) _exit(2);
    auto space = SharedPageSpace::Open(std::move(*attached), &store);
    if (!space.ok()) _exit(2);
    for (uint32_t p = 0; p < 4; ++p) {
      if (!(*space)->Fix(Page(p), false).ok()) _exit(2);
    }
    if (write(ready_pipe[1], "r", 1) != 1) _exit(2);
    char go;
    (void)!read(hold_pipe[0], &go, 1);
    _exit(0);
  }

  char r;
  ASSERT_EQ(read(ready_pipe[0], &r, 1), 1);

  // Parent: every slot is bound by the child; we may not steal any.
  FilePageStore store(store_path_);
  auto space = SharedPageSpace::Open(std::move(*cache), &store);
  ASSERT_TRUE(space.ok());
  auto addr = (*space)->Fix(Page(20), false);
  EXPECT_TRUE(addr.status().IsBusy()) << addr.status().ToString();

  // Release the child; its exit unbinds, and the fix succeeds.
  ASSERT_EQ(write(hold_pipe[1], "x", 1), 1);
  int wstatus;
  waitpid(pid, &wstatus, 0);
  addr = (*space)->Fix(Page(20), false);
  EXPECT_TRUE(addr.ok()) << addr.status().ToString();
}

TEST_F(SharedCacheTest, CrashCleanupReleasesDeadProcessState) {
  auto cache = SharedCache::Create(shm_name_, SmallGeo());
  ASSERT_TRUE(cache.ok());

  int ready_pipe[2];
  ASSERT_EQ(pipe(ready_pipe), 0);
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    FilePageStore store(store_path_);
    auto attached = SharedCache::Attach(shm_name_);
    if (!attached.ok()) _exit(2);
    auto space = SharedPageSpace::Open(std::move(*attached), &store);
    if (!space.ok()) _exit(2);
    auto addr = (*space)->Fix(Page(3), false);
    if (!addr.ok()) _exit(2);
    if (!(*space)->LatchPage(Page(3)).ok()) _exit(2);
    if (write(ready_pipe[1], "r", 1) != 1) _exit(2);
    // Die without releasing anything (simulated crash; no destructors).
    _exit(0);
  }
  char r;
  ASSERT_EQ(read(ready_pipe[0], &r, 1), 1);
  int wstatus;
  waitpid(pid, &wstatus, 0);

  FilePageStore store(store_path_);
  // Attaching runs cleanup: the dead process's binding and latch go away.
  auto space = SharedPageSpace::Open(std::move(*cache), &store);
  ASSERT_TRUE(space.ok());
  SharedCache* c = (*space)->cache();
  SmtEntry* entry = c->FindEntry(Page(3).Pack());
  ASSERT_NE(entry, nullptr);
  const uint32_t slot = entry->slot.load();
  ASSERT_NE(slot, kNoFrame);
  EXPECT_EQ(c->slot(slot)->pins.load(), 0u);
  EXPECT_FALSE(c->slot(slot)->latch.is_locked());
}

}  // namespace
}  // namespace bess
