// Integration tests for the distributed architecture (paper §3): client/
// server data service, inter-transaction caching, callback locking, the
// node server's shared cache, and two-phase commit across servers.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <thread>

#include "bess/bess_internal.h"
#include "object/database.h"
#include "os/fault_injection.h"
#include "server/bess_server.h"
#include "server/node_server.h"
#include "server/remote_client.h"

namespace bess {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    base_ = std::filesystem::temp_directory_path() /
            ("bess_srv_" + std::to_string(::getpid()) + "_" + info->name());
    std::filesystem::remove_all(base_);
    std::filesystem::create_directories(base_);
  }
  void TearDown() override {
    fault::FaultRegistry::Instance().DisarmAll();
    fault::FaultRegistry::Instance().ResetCounters();
    clients_.clear();
    node_.reset();
    server_.reset();
    server2_.reset();
    db_.reset();
    db2_.reset();
    std::filesystem::remove_all(base_);
  }

  void StartServer(uint16_t db_id = 1, int lock_timeout_ms = 300) {
    Database::Options o;
    o.dir = (base_ / ("db" + std::to_string(db_id))).string();
    o.db_id = db_id;
    o.create = true;
    auto db = Database::Open(o);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);

    BessServer::Options so;
    so.socket_path = (base_ / "server.sock").string();
    so.lock_timeout_ms = lock_timeout_ms;
    server_ = std::make_unique<BessServer>(so);
    ASSERT_TRUE(server_->AddDatabase(db_.get()).ok());
    ASSERT_TRUE(server_->Start().ok());
  }

  RemoteClient* Connect(bool cache_inter_txn = true,
                        const std::string& path = "") {
    RemoteClient::Options o;
    o.server_path = path.empty() ? (base_ / "server.sock").string() : path;
    o.db_id = 1;
    o.cache_inter_txn = cache_inter_txn;
    o.lock_timeout_ms = 300;
    auto c = RemoteClient::Connect(o);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    clients_.push_back(std::move(*c));
    return clients_.back().get();
  }

  std::filesystem::path base_;
  std::unique_ptr<Database> db_, db2_;
  std::unique_ptr<BessServer> server_, server2_;
  std::unique_ptr<NodeServer> node_;
  std::vector<std::unique_ptr<RemoteClient>> clients_;
};

TEST_F(ServerTest, ClientCreatesServerPersists) {
  StartServer();
  RemoteClient* c = Connect();
  ASSERT_TRUE(c->Begin().ok());
  auto file = c->CreateFile("people");
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  const char payload[] = "remote object";
  auto slot = c->CreateObject(*file, kRawBytesType, sizeof(payload), payload);
  ASSERT_TRUE(slot.ok()) << slot.status().ToString();
  ASSERT_TRUE(c->SetRoot("entry", *slot).ok());
  ASSERT_TRUE(c->Commit().ok());

  // A second client sees it through the server.
  RemoteClient* c2 = Connect();
  ASSERT_TRUE(c2->Begin().ok());
  auto root = c2->GetRoot("entry");
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_STREQ(reinterpret_cast<const char*>((*root)->dp), payload);
  ASSERT_TRUE(c2->Commit().ok());

  // And it is durable on the server's disk.
  clients_.clear();
  server_.reset();
  auto count = db_->CountObjects(*file);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
}

TEST_F(ServerTest, InterTransactionCachingSkipsServer) {
  StartServer();
  RemoteClient* writer = Connect();
  ASSERT_TRUE(writer->Begin().ok());
  auto file = writer->CreateFile("f");
  ASSERT_TRUE(file.ok());
  uint64_t v = 9;
  auto slot = writer->CreateObject(*file, kRawBytesType, 8, &v);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(writer->SetRoot("x", *slot).ok());
  ASSERT_TRUE(writer->Commit().ok());

  RemoteClient* reader = Connect(/*cache_inter_txn=*/true);
  ASSERT_TRUE(reader->Begin().ok());
  auto root = reader->GetRoot("x");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*reinterpret_cast<uint64_t*>((*root)->dp), 9u);
  ASSERT_TRUE(reader->Commit().ok());

  const auto stats1 = reader->stats();
  // Second transaction touches the same data: cached pages and cached locks
  // mean no fetch and no lock RPC (paper §3).
  ASSERT_TRUE(reader->Begin().ok());
  Slot* again = *root;  // reference survives across transactions
  EXPECT_EQ(*reinterpret_cast<uint64_t*>(again->dp), 9u);
  ASSERT_TRUE(reader->Commit().ok());
  const auto stats2 = reader->stats();
  EXPECT_EQ(stats2.lock_rpcs, stats1.lock_rpcs);
  auto mstats = reader->mapper()->stats();
  EXPECT_GT(mstats.slotted_faults, 0u);

  // The no-caching client refetches every transaction (node-less mode).
  RemoteClient* cold = Connect(/*cache_inter_txn=*/false);
  ASSERT_TRUE(cold->Begin().ok());
  auto r1 = cold->GetRoot("x");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*reinterpret_cast<uint64_t*>((*r1)->dp), 9u);
  ASSERT_TRUE(cold->Commit().ok());
  const uint64_t faults_before = cold->mapper()->stats().slotted_faults;
  ASSERT_TRUE(cold->Begin().ok());
  auto r2 = cold->GetRoot("x");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*reinterpret_cast<uint64_t*>((*r2)->dp), 9u);
  ASSERT_TRUE(cold->Commit().ok());
  EXPECT_GT(cold->mapper()->stats().slotted_faults, faults_before)
      << "cache should have been dropped between transactions";
}

TEST_F(ServerTest, CallbackTransfersCachedLock) {
  StartServer();
  RemoteClient* a = Connect();
  ASSERT_TRUE(a->Begin().ok());
  auto file = a->CreateFile("f");
  ASSERT_TRUE(file.ok());
  uint64_t v = 1;
  auto slot_a = a->CreateObject(*file, kRawBytesType, 8, &v);
  ASSERT_TRUE(slot_a.ok());
  ASSERT_TRUE(a->SetRoot("x", *slot_a).ok());
  ASSERT_TRUE(a->Commit().ok());
  // A's locks (incl. X on the segment) are now cached, not in use.

  RemoteClient* b = Connect();
  ASSERT_TRUE(b->Begin().ok());
  auto root_b = b->GetRoot("x");  // S lock: conflicts with A's cached X
  ASSERT_TRUE(root_b.ok()) << root_b.status().ToString();
  *reinterpret_cast<uint64_t*>((*root_b)->dp) = 2;
  Status commit = b->Commit();
  ASSERT_TRUE(commit.ok()) << commit.ToString();

  const auto server_stats = server_->stats();
  EXPECT_GT(server_stats.callbacks_sent, 0u);
  EXPECT_GT(server_stats.callbacks_released, 0u);
  const auto a_stats = a->stats();
  EXPECT_GT(a_stats.callbacks_received, 0u);
  EXPECT_GT(a_stats.callbacks_released, 0u);

  // A's cached copy was dropped with the lock: it re-reads B's value.
  ASSERT_TRUE(a->Begin().ok());
  auto root_a = a->GetRoot("x");
  ASSERT_TRUE(root_a.ok());
  EXPECT_EQ(*reinterpret_cast<uint64_t*>((*root_a)->dp), 2u);
  ASSERT_TRUE(a->Commit().ok());
}

TEST_F(ServerTest, CallbackDeniedWhileLockInUse) {
  StartServer(1, /*lock_timeout_ms=*/250);
  RemoteClient* a = Connect();
  ASSERT_TRUE(a->Begin().ok());
  auto file = a->CreateFile("f");
  ASSERT_TRUE(file.ok());
  uint64_t v = 1;
  auto slot = a->CreateObject(*file, kRawBytesType, 8, &v);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(a->SetRoot("x", *slot).ok());
  ASSERT_TRUE(a->Commit().ok());

  // A holds the object in an ACTIVE transaction now.
  ASSERT_TRUE(a->Begin().ok());
  auto mine = a->GetRoot("x");
  ASSERT_TRUE(mine.ok());
  *reinterpret_cast<uint64_t*>((*mine)->dp) = 10;  // X page, in use

  // B's conflicting write times out: the callback is denied (§3).
  RemoteClient* b = Connect();
  ASSERT_TRUE(b->Begin().ok());
  auto theirs = b->GetRoot("x");
  if (theirs.ok()) {
    *reinterpret_cast<uint64_t*>((*theirs)->dp) = 20;
    Status s = b->Commit();
    EXPECT_FALSE(s.ok());
  }  // else: even the read lock was refused — also acceptable
  const auto server_stats = server_->stats();
  EXPECT_GT(server_stats.callbacks_denied, 0u);

  ASSERT_TRUE(a->Commit().ok());
  // After A's transaction ends, B can get through.
  ASSERT_TRUE(b->Begin().ok());
  auto retry = b->GetRoot("x");
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  *reinterpret_cast<uint64_t*>((*retry)->dp) = 20;
  ASSERT_TRUE(b->Commit().ok());
}

TEST_F(ServerTest, NodeServerCachesForLocalClients) {
  StartServer();
  NodeServer::Options no;
  no.socket_path = (base_ / "node.sock").string();
  no.upstream_path = (base_ / "server.sock").string();
  auto node = NodeServer::Start(no);
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  node_ = std::move(*node);

  // Seed data through a direct client.
  RemoteClient* seeder = Connect();
  ASSERT_TRUE(seeder->Begin().ok());
  auto file = seeder->CreateFile("f");
  ASSERT_TRUE(file.ok());
  uint64_t v = 5;
  auto slot = seeder->CreateObject(*file, kRawBytesType, 8, &v);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(seeder->SetRoot("x", *slot).ok());
  ASSERT_TRUE(seeder->Commit().ok());

  // Two applications on the node; the second is served from the node cache.
  RemoteClient* app1 = Connect(true, no.socket_path);
  ASSERT_TRUE(app1->Begin().ok());
  auto r1 = app1->GetRoot("x");
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(*reinterpret_cast<uint64_t*>((*r1)->dp), 5u);
  ASSERT_TRUE(app1->Commit().ok());

  const auto node_stats1 = node_->stats();
  EXPECT_GT(node_stats1.upstream_fetches, 0u);

  RemoteClient* app2 = Connect(true, no.socket_path);
  ASSERT_TRUE(app2->Begin().ok());
  auto r2 = app2->GetRoot("x");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(*reinterpret_cast<uint64_t*>((*r2)->dp), 5u);
  ASSERT_TRUE(app2->Commit().ok());

  const auto node_stats2 = node_->stats();
  EXPECT_GT(node_stats2.cache_hits, node_stats1.cache_hits)
      << "second application should hit the node cache";
}

TEST_F(ServerTest, TwoPhaseCommitAcrossServers) {
  StartServer(1);
  // Second server owning database 2.
  Database::Options o2;
  o2.dir = (base_ / "db2").string();
  o2.db_id = 2;
  o2.create = true;
  auto db2 = Database::Open(o2);
  ASSERT_TRUE(db2.ok());
  db2_ = std::move(*db2);
  BessServer::Options so2;
  so2.socket_path = (base_ / "server2.sock").string();
  server2_ = std::make_unique<BessServer>(so2);
  ASSERT_TRUE(server2_->AddDatabase(db2_.get()).ok());
  ASSERT_TRUE(server2_->Start().ok());

  RemoteClient* c = Connect();
  ASSERT_TRUE(c->AddServer(so2.socket_path, {2}).ok());

  // One transaction touching both databases.
  ASSERT_TRUE(c->Begin().ok());
  auto f1 = c->CreateFile("local");
  ASSERT_TRUE(f1.ok());
  uint64_t v1 = 100;
  auto s1 = c->CreateObject(*f1, kRawBytesType, 8, &v1);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(c->SetRoot("one", *s1).ok());
  ASSERT_TRUE(c->Commit().ok());

  // Write pages in db2 through the same client's mapper: create a segment
  // remotely on server 2. (CreateObject helpers target db 1; for the 2PC
  // path we write into db2 via a second client connected primarily to it.)
  RemoteClient::Options oc2;
  oc2.server_path = so2.socket_path;
  oc2.db_id = 2;
  auto c2r = RemoteClient::Connect(oc2);
  ASSERT_TRUE(c2r.ok());
  RemoteClient* c2 = c2r->get() ? c2r->get() : nullptr;
  ASSERT_NE(c2, nullptr);
  ASSERT_TRUE(c2->Begin().ok());
  auto f2 = c2->CreateFile("remote");
  ASSERT_TRUE(f2.ok());
  uint64_t v2 = 200;
  auto s2 = c2->CreateObject(*f2, kRawBytesType, 8, &v2);
  ASSERT_TRUE(s2.ok());
  ASSERT_TRUE(c2->SetRoot("two", *s2).ok());
  ASSERT_TRUE(c2->Commit().ok());
  clients_.push_back(std::move(*c2r));

  // Both servers have their data durable.
  auto count1 = db_->CountObjects(*f1);
  auto count2 = db2_->CountObjects(*f2);
  ASSERT_TRUE(count1.ok() && count2.ok());
  EXPECT_EQ(*count1, 1u);
  EXPECT_EQ(*count2, 1u);
}

TEST_F(ServerTest, PreparedTransactionsSurviveAsPresumedAbort) {
  StartServer();
  auto file = [&] {
    auto f = db_->CreateFile("f");
    return *f;
  }();
  // Prepare a page set directly (simulating a coordinator that dies before
  // phase 2); after restart the transaction is presumed aborted.
  std::vector<PageImage> pages;
  PageImage img;
  img.db = 1;
  img.area = 0;
  img.page = 100;  // not an allocated object page: content is arbitrary
  img.bytes.assign(kPageSize, 'Z');
  pages.push_back(img);
  ASSERT_TRUE(db_->PreparePageSet(777, pages).ok());
  // The page is NOT visible on disk (nothing forced in phase 1).
  std::string check(kPageSize, '\0');
  ASSERT_TRUE(db_->ReadRawPages(0, 100, 1, check.data()).ok());
  EXPECT_NE(check[0], 'Z');
  // Commit of the prepared txn forces the pages.
  ASSERT_TRUE(db_->CommitPrepared(777).ok());
  ASSERT_TRUE(db_->ReadRawPages(0, 100, 1, check.data()).ok());
  EXPECT_EQ(check[0], 'Z');
  // Unknown gtid: presumed abort.
  EXPECT_TRUE(db_->CommitPrepared(999).IsNotFound());
  (void)file;
}

// Callback locking must stay correct when the network is slow: injected
// latency on every client->server send stretches each RPC, yet the lock
// timeout still fires for the blocked writer and the denied callback is
// reported, while the lock holder's own transaction commits normally.
TEST_F(ServerTest, LockTimeoutAndCallbackDenialUnderSocketLatency) {
  StartServer(1, /*lock_timeout_ms=*/250);
  RemoteClient* a = Connect();
  ASSERT_TRUE(a->Begin().ok());
  auto file = a->CreateFile("f");
  ASSERT_TRUE(file.ok());
  uint64_t v = 1;
  auto slot = a->CreateObject(*file, kRawBytesType, 8, &v);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(a->SetRoot("x", *slot).ok());
  ASSERT_TRUE(a->Commit().ok());

  // Every send on a client socket (named after the server path) now stalls
  // 2ms; server-side sockets are unnamed and unaffected.
  fault::FaultSpec lag;
  lag.action = fault::FaultAction::kLatency;
  lag.latency_us = 2000;
  lag.detail_filter = "server.sock";
  fault::FaultRegistry::Instance().Arm("sock.send", lag);

  // A holds the object in an active transaction.
  ASSERT_TRUE(a->Begin().ok());
  auto mine = a->GetRoot("x");
  ASSERT_TRUE(mine.ok());
  *reinterpret_cast<uint64_t*>((*mine)->dp) = 10;

  // B's conflicting access still times out cleanly under latency.
  RemoteClient* b = Connect();
  ASSERT_TRUE(b->Begin().ok());
  auto theirs = b->GetRoot("x");
  if (theirs.ok()) {
    *reinterpret_cast<uint64_t*>((*theirs)->dp) = 20;
    EXPECT_FALSE(b->Commit().ok());
  } else {
    ASSERT_TRUE(b->Abort().ok());
  }
  EXPECT_GT(server_->stats().callbacks_denied, 0u);
  EXPECT_GT(fault::FaultRegistry::Instance().hits("sock.send"), 0u)
      << "latency injection never matched a client send";

  // The holder is slowed but not broken.
  ASSERT_TRUE(a->Commit().ok());
  fault::FaultRegistry::Instance().DisarmAll();

  ASSERT_TRUE(b->Begin().ok());
  auto retry = b->GetRoot("x");
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  ASSERT_TRUE(b->Commit().ok());
}

// A transport failure in the middle of an idempotent RPC is retried through
// a fresh session; the caller never sees the failure. The active transaction
// is poisoned (its locks died with the old session), so commit refuses — and
// the next transaction runs normally.
TEST_F(ServerTest, RpcRetriesAndReconnectsAfterTransportFailure) {
  StartServer();
  RemoteClient* a = Connect();
  ASSERT_TRUE(a->Begin().ok());
  auto file = a->CreateFile("f");
  ASSERT_TRUE(file.ok());
  uint64_t v = 7;
  auto slot = a->CreateObject(*file, kRawBytesType, 8, &v);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(a->SetRoot("x", *slot).ok());
  ASSERT_TRUE(a->Commit().ok());

  RemoteClient* b = Connect();
  ASSERT_TRUE(b->Begin().ok());
  // The next reply on a client main channel is torn away mid-RPC.
  fault::FaultSpec spec = fault::FaultSpec::FailNth(1);
  spec.detail_filter = "server.sock";
  fault::FaultRegistry::Instance().Arm("sock.recv", spec);

  auto root = b->GetRoot("x");  // idempotent: retried transparently
  fault::FaultRegistry::Instance().DisarmAll();
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_EQ(*reinterpret_cast<uint64_t*>((*root)->dp), 7u);
  const auto stats = b->stats();
  EXPECT_GE(stats.rpc_retries, 1u);
  EXPECT_GE(stats.reconnects, 1u);

  // The transaction that lived through the reconnect lost its 2PL guarantee.
  EXPECT_FALSE(b->Commit().ok());

  // The client itself is fully healthy again.
  ASSERT_TRUE(b->Begin().ok());
  auto again = b->GetRoot("x");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(*reinterpret_cast<uint64_t*>((*again)->dp), 7u);
  ASSERT_TRUE(b->Commit().ok());
}

// Losing the *reply* to a commit leaves the client unsure whether it
// applied. The ctid makes the retry safe: the server recognizes the replay,
// answers OK without applying twice, and exactly one commit is visible.
TEST_F(ServerTest, CommitReplayedAfterLostReplyAppliesOnce) {
  StartServer();
  RemoteClient* c = Connect();
  ASSERT_TRUE(c->Begin().ok());
  auto file = c->CreateFile("f");
  ASSERT_TRUE(file.ok());
  uint64_t v = 1;
  auto slot = c->CreateObject(*file, kRawBytesType, 8, &v);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(c->SetRoot("x", *slot).ok());
  ASSERT_TRUE(c->Commit().ok());

  ASSERT_TRUE(c->Begin().ok());
  auto mine = c->GetRoot("x");
  ASSERT_TRUE(mine.ok());
  *reinterpret_cast<uint64_t*>((*mine)->dp) = 2;
  // The commit is applied server-side, but its reply never arrives.
  fault::FaultSpec spec = fault::FaultSpec::FailNth(1);
  spec.detail_filter = "server.sock";
  fault::FaultRegistry::Instance().Arm("sock.recv", spec);
  Status s = c->Commit();
  fault::FaultRegistry::Instance().DisarmAll();
  ASSERT_TRUE(s.ok()) << s.ToString();
  const auto cstats = c->stats();
  EXPECT_GE(cstats.rpc_retries, 1u);
  EXPECT_GE(cstats.reconnects, 1u);
  EXPECT_GE(server_->stats().commit_dedupes, 1u)
      << "the replayed commit should have been recognized, not re-applied";

  // Exactly-once: the new value is there, and there is exactly one object.
  RemoteClient* d = Connect();
  ASSERT_TRUE(d->Begin().ok());
  auto root = d->GetRoot("x");
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_EQ(*reinterpret_cast<uint64_t*>((*root)->dp), 2u);
  ASSERT_TRUE(d->Commit().ok());
  clients_.clear();
  server_.reset();
  auto count = db_->CountObjects(*file);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
}

// 2PC coordinator death between prepare and decision: both participants are
// left in doubt. When the coordinator's connections drop, each server's
// dead-session cleanup presumed-aborts the prepared transaction and releases
// its locks — no update becomes visible, and other clients proceed.
TEST_F(ServerTest, CoordinatorDeathAtDecisionPresumedAbort) {
  StartServer(1);
  Database::Options o2;
  o2.dir = (base_ / "db2").string();
  o2.db_id = 2;
  o2.create = true;
  auto db2 = Database::Open(o2);
  ASSERT_TRUE(db2.ok());
  db2_ = std::move(*db2);
  BessServer::Options so2;
  so2.socket_path = (base_ / "server2.sock").string();
  server2_ = std::make_unique<BessServer>(so2);
  ASSERT_TRUE(server2_->AddDatabase(db2_.get()).ok());
  ASSERT_TRUE(server2_->Start().ok());

  // Seed one object per database and capture the db2 object's OID so the
  // coordinator can reach it through an inter-database reference.
  RemoteClient* c1 = Connect();
  ASSERT_TRUE(c1->Begin().ok());
  auto f1 = c1->CreateFile("f1");
  ASSERT_TRUE(f1.ok());
  uint64_t v1 = 100;
  auto s1 = c1->CreateObject(*f1, kRawBytesType, 8, &v1);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(c1->SetRoot("one", *s1).ok());
  ASSERT_TRUE(c1->Commit().ok());

  RemoteClient::Options oc2;
  oc2.server_path = so2.socket_path;
  oc2.db_id = 2;
  auto c2r = RemoteClient::Connect(oc2);
  ASSERT_TRUE(c2r.ok());
  RemoteClient* c2 = c2r->get();
  ASSERT_TRUE(c2->Begin().ok());
  auto f2 = c2->CreateFile("f2");
  ASSERT_TRUE(f2.ok());
  uint64_t v2 = 200;
  auto s2 = c2->CreateObject(*f2, kRawBytesType, 8, &v2);
  ASSERT_TRUE(s2.ok());
  ASSERT_TRUE(c2->SetRoot("two", *s2).ok());
  ASSERT_TRUE(c2->Commit().ok());
  auto oid2 = c2->OidOf(*s2);
  ASSERT_TRUE(oid2.ok());
  clients_.push_back(std::move(*c2r));

  // The doomed coordinator: writes in both databases, prepares both, then
  // "forgets" its decision (injected failure at the decision point) and its
  // process dies (connections close when the client is destroyed).
  {
    RemoteClient::Options oc;
    oc.server_path = (base_ / "server.sock").string();
    oc.db_id = 1;
    auto coordr = RemoteClient::Connect(oc);
    ASSERT_TRUE(coordr.ok());
    RemoteClient* coord = coordr->get();
    ASSERT_TRUE(coord->AddServer(so2.socket_path, {2}).ok());
    ASSERT_TRUE(coord->Begin().ok());
    auto r1 = coord->GetRoot("one");
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    auto r2 = coord->Deref(*oid2);
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
    *reinterpret_cast<uint64_t*>((*r1)->dp) = 111;
    *reinterpret_cast<uint64_t*>((*r2)->dp) = 222;
    fault::FaultRegistry::Instance().Arm(
        "client.2pc.decision",
        fault::FaultSpec::FailNth(1, StatusCode::kIOError));
    Status s = coord->Commit();
    fault::FaultRegistry::Instance().DisarmAll();
    EXPECT_FALSE(s.ok());
    EXPECT_GT(fault::FaultRegistry::Instance().hits("client.2pc.decision"), 0u)
        << "the transaction never reached the 2PC decision point";
  }  // coordinator dies here; both sessions drop

  // Each participant reaps the dead session and resolves in doubt ->

  // aborted. Poll: session teardown is asynchronous.
  for (int i = 0; i < 200; ++i) {
    if (server_->stats().sessions_reaped > 0 &&
        server2_->stats().sessions_reaped > 0) {
      break;
    }
    ::usleep(10 * 1000);
  }
  EXPECT_GT(server_->stats().sessions_reaped, 0u);
  EXPECT_GT(server2_->stats().sessions_reaped, 0u);

  // Neither update became visible, and both objects are writable again
  // (locks and prepared state were cleaned up).
  RemoteClient* check1 = Connect();
  ASSERT_TRUE(check1->Begin().ok());
  auto root1 = check1->GetRoot("one");
  ASSERT_TRUE(root1.ok()) << root1.status().ToString();
  EXPECT_EQ(*reinterpret_cast<uint64_t*>((*root1)->dp), 100u);
  *reinterpret_cast<uint64_t*>((*root1)->dp) = 101;
  ASSERT_TRUE(check1->Commit().ok());

  RemoteClient::Options oc3;
  oc3.server_path = so2.socket_path;
  oc3.db_id = 2;
  auto check2r = RemoteClient::Connect(oc3);
  ASSERT_TRUE(check2r.ok());
  RemoteClient* check2 = check2r->get();
  ASSERT_TRUE(check2->Begin().ok());
  auto root2 = check2->GetRoot("two");
  ASSERT_TRUE(root2.ok()) << root2.status().ToString();
  EXPECT_EQ(*reinterpret_cast<uint64_t*>((*root2)->dp), 200u);
  *reinterpret_cast<uint64_t*>((*root2)->dp) = 201;
  ASSERT_TRUE(check2->Commit().ok());
  clients_.push_back(std::move(*check2r));
}

// The second resolution path for in-doubt transactions: the participant
// itself restarts. Restart recovery presumed-aborts prepared transactions
// (kPrepare with no decision), so nothing of the page set survives.
TEST_F(ServerTest, PreparedStateResolvedByRestartRecovery) {
  Database::Options o;
  o.dir = (base_ / "db1").string();
  o.db_id = 1;
  o.create = true;
  auto dbr = Database::Open(o);
  ASSERT_TRUE(dbr.ok());
  db_ = std::move(*dbr);

  std::vector<PageImage> pages;
  PageImage img;
  img.db = 1;
  img.area = 0;
  img.page = 100;
  img.bytes.assign(kPageSize, 'Q');
  pages.push_back(img);
  ASSERT_TRUE(db_->PreparePageSet(4242, pages).ok());

  // The coordinator never decides; the storage manager restarts.
  db_.reset();
  o.create = false;
  auto reopened = Database::Open(o);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  db_ = std::move(*reopened);

  // Presumed abort: the transaction is unknown and its pages never forced.
  EXPECT_TRUE(db_->CommitPrepared(4242).IsNotFound());
  std::string check(kPageSize, '\0');
  ASSERT_TRUE(db_->ReadRawPages(0, 100, 1, check.data()).ok());
  EXPECT_NE(check[0], 'Q');
}

// Two clients fight over one object: A holds it in an active transaction,
// so B's lock waits time out server-side (kDeadlock). B's exponential
// backoff with jitter must carry it past A's transaction instead of
// surfacing the first timeout to the application.
TEST_F(ServerTest, LockRetryBackoffOutlastsContention) {
  StartServer(1, /*lock_timeout_ms=*/150);
  RemoteClient* a = Connect();
  ASSERT_TRUE(a->Begin().ok());
  auto file = a->CreateFile("f");
  ASSERT_TRUE(file.ok());
  uint64_t v = 1;
  auto slot = a->CreateObject(*file, kRawBytesType, 8, &v);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(a->SetRoot("x", *slot).ok());
  ASSERT_TRUE(a->Commit().ok());

  // A pins the object in an ACTIVE transaction: callbacks get denied.
  ASSERT_TRUE(a->Begin().ok());
  auto mine = a->GetRoot("x");
  ASSERT_TRUE(mine.ok());
  *reinterpret_cast<uint64_t*>((*mine)->dp) = 10;

  // B retries with backoff; A commits ~250 ms in, well inside B's retry
  // budget (~150 ms server wait per attempt + 25..400 ms of backoff).
  RemoteClient::Options bo;
  bo.server_path = (base_ / "server.sock").string();
  bo.db_id = 1;
  bo.lock_timeout_ms = 150;
  bo.lock_retries = 6;
  bo.lock_backoff_ms = 50;
  auto br = RemoteClient::Connect(bo);
  ASSERT_TRUE(br.ok()) << br.status().ToString();
  clients_.push_back(std::move(*br));
  RemoteClient* b = clients_.back().get();

  std::thread release_a([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    EXPECT_TRUE(a->Commit().ok());
  });
  ASSERT_TRUE(b->Begin().ok());
  auto theirs = b->GetRoot("x");
  release_a.join();
  ASSERT_TRUE(theirs.ok()) << theirs.status().ToString();
  *reinterpret_cast<uint64_t*>((*theirs)->dp) = 20;
  Status commit = b->Commit();
  EXPECT_TRUE(commit.ok()) << commit.ToString();

  // The win came through the backoff path, not first-try luck.
  EXPECT_GT(b->stats().lock_backoffs, 0u);
#if BESS_METRICS_ENABLED
  EXPECT_GT(Snapshot().counter("client.lock.backoff"), 0u);
#endif
}

// bess::OpenOptions carries the callback timeout into the server, and an
// unresponsive lock holder (its callback replies stuck behind injected
// socket latency) is presumed dead: its session is torn down, its locks
// freed, and the waiting client gets through.
TEST_F(ServerTest, CallbackTimeoutTearsDownUnresponsiveHolder) {
  Database::Options o;
  o.dir = (base_ / "db1").string();
  o.db_id = 1;
  o.create = true;
  auto dbr = Database::Open(o);
  ASSERT_TRUE(dbr.ok());
  db_ = std::move(*dbr);

  OpenOptions open;
  open.socket_path = (base_ / "server.sock").string();
  open.lock_timeout_ms = 2000;
  open.callback_timeout_ms = 25;
  const BessServer::Options so = open.server_options();
  EXPECT_EQ(so.lock_timeout_ms, 2000);
  EXPECT_EQ(so.callback_timeout_ms, 25);
  server_ = std::make_unique<BessServer>(so);
  ASSERT_TRUE(server_->AddDatabase(db_.get()).ok());
  ASSERT_TRUE(server_->Start().ok());

  RemoteClient* a = Connect();
  ASSERT_TRUE(a->Begin().ok());
  auto file = a->CreateFile("f");
  ASSERT_TRUE(file.ok());
  uint64_t v = 1;
  auto slot = a->CreateObject(*file, kRawBytesType, 8, &v);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(a->SetRoot("x", *slot).ok());
  ASSERT_TRUE(a->Commit().ok());  // A caches X locks, transaction idle

  RemoteClient* b = Connect();

  // Every client->server send (including A's callback replies) now stalls
  // 80 ms — far past the 25 ms callback window. The server must stop
  // waiting on the ghost, reap A's session, and grant B from the freed lock.
  fault::FaultSpec slow;
  slow.action = fault::FaultAction::kLatency;
  slow.latency_us = 80000;
  slow.detail_filter = open.socket_path;
  fault::FaultRegistry::Instance().Arm("sock.send", slow);

  ASSERT_TRUE(b->Begin().ok());
  auto theirs = b->GetRoot("x");
  ASSERT_TRUE(theirs.ok()) << theirs.status().ToString();
  *reinterpret_cast<uint64_t*>((*theirs)->dp) = 2;
  Status commit = b->Commit();
  fault::FaultRegistry::Instance().DisarmAll();
  EXPECT_TRUE(commit.ok()) << commit.ToString();

  const auto stats = server_->stats();
  EXPECT_GT(stats.callback_timeouts, 0u);
  EXPECT_GT(stats.sessions_reaped, 0u);
#if BESS_METRICS_ENABLED
  EXPECT_GT(Snapshot().counter("srv.callback.timeout"), 0u);
#endif
}

// The maintenance opcode end to end: a client asks the server to scrub its
// database and gets the sweep's report back over the wire.
TEST_F(ServerTest, ScrubOverRpc) {
  StartServer();
  RemoteClient* c = Connect();
  ASSERT_TRUE(c->Begin().ok());
  auto file = c->CreateFile("f");
  ASSERT_TRUE(file.ok());
  uint64_t v = 7;
  auto slot = c->CreateObject(*file, kRawBytesType, 8, &v);
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(c->SetRoot("x", *slot).ok());
  ASSERT_TRUE(c->Commit().ok());

  auto report = c->Scrub();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->pages_scanned, 0u);
  EXPECT_EQ(report->verify_failures, 0u);
  EXPECT_EQ(report->repaired, 0u);
  EXPECT_EQ(report->quarantined, 0u);
}

TEST_F(ServerTest, IndexRoundTripOverRpc) {
  StartServer();
  RemoteClient* c = Connect();
  ASSERT_TRUE(c->IndexCreate("remote").ok());
  // Duplicate creation surfaces the server-side catalog error.
  EXPECT_FALSE(c->IndexCreate("remote").ok());

  // Enough entries to split leaves and exercise the scan's batch stitching
  // (> kIndexScanMaxEntries would need 5k+ RPC puts; splits suffice here).
  std::map<std::string, std::string> shadow;
  char kb[16], vb[16];
  for (int k = 0; k < 500; ++k) {
    snprintf(kb, sizeof kb, "key%04d", k);
    snprintf(vb, sizeof vb, "val%04d", k);
    ASSERT_TRUE(c->IndexPut("remote", kb, vb).ok());
    shadow[kb] = vb;
  }
  for (int k = 0; k < 500; k += 3) {
    snprintf(kb, sizeof kb, "key%04d", k);
    bool existed = false;
    ASSERT_TRUE(c->IndexDelete("remote", kb, &existed).ok());
    EXPECT_TRUE(existed);
    shadow.erase(kb);
  }

  std::string v;
  auto found = c->IndexGet("remote", "key0001", &v);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(*found);
  EXPECT_EQ(v, "val0001");
  found = c->IndexGet("remote", "key0000", &v);
  ASSERT_TRUE(found.ok());
  EXPECT_FALSE(*found) << "deleted key visible over RPC";

  // A second connection sees the same tree (shared server-side runtime).
  RemoteClient* c2 = Connect();
  std::map<std::string, std::string> got;
  ASSERT_TRUE(c2->IndexScan("remote", "", "",
                            [&](Slice k, Slice val) {
                              got[k.ToString()] = val.ToString();
                              return Status::OK();
                            })
                  .ok());
  EXPECT_EQ(got, shadow);

  // Bounded scan honors the [lo, hi] window.
  got.clear();
  ASSERT_TRUE(c2->IndexScan("remote", "key0100", "key0110",
                            [&](Slice k, Slice val) {
                              got[k.ToString()] = val.ToString();
                              return Status::OK();
                            })
                  .ok());
  for (const auto& [k, val] : got) {
    EXPECT_GE(k, std::string("key0100"));
    EXPECT_LE(k, std::string("key0110"));
  }
  EXPECT_EQ(got.size(), 8u);  // 11 keys in window minus 102/105/108 deleted

  ASSERT_TRUE(c->IndexDrop("remote").ok());
  EXPECT_FALSE(c2->IndexGet("remote", "key0001", &v).ok());
}

}  // namespace
}  // namespace bess
