// Tests for very large objects: byte-range read/write/insert/delete/append
// (paper §2.1), model-checked against a std::string reference, plus the
// compression-hook path (§2.4).
#include <gtest/gtest.h>

#include <map>

#include "hooks/hooks.h"
#include "lob/large_object.h"
#include "util/random.h"
#include "vm/mem_store.h"

namespace bess {
namespace {

// Bump allocator over the in-memory page space.
class BumpAllocator : public ExtentAllocator {
 public:
  Result<DiskSegment> AllocExtent(uint16_t area, uint32_t pages) override {
    (void)area;
    DiskSegment seg;
    seg.first_page = next_;
    seg.page_count = pages;
    next_ += pages;
    ++live_;
    return seg;
  }
  Status FreeExtent(uint16_t area, PageId first_page) override {
    (void)area;
    (void)first_page;
    --live_;
    return Status::OK();
  }
  int live() const { return live_; }

 private:
  PageId next_ = 0;
  int live_ = 0;
};

class LargeObjectTest : public ::testing::Test {
 protected:
  void TearDown() override { HookRegistry::Instance().Clear(); }

  Result<LargeObject> Make(uint64_t size_hint = 0) {
    LargeObject::Options opts;
    opts.db = 1;
    opts.area = 0;
    opts.extent_pages = 2;  // small extents exercise splitting sooner
    return LargeObject::Create(&store_, &alloc_, opts, size_hint);
  }

  InMemoryStore store_;
  BumpAllocator alloc_;
};

std::string Pattern(size_t n, uint64_t seed = 1) {
  Random rng(seed);
  std::string s(n, '\0');
  for (auto& c : s) c = static_cast<char>('a' + rng.Uniform(26));
  return s;
}

TEST_F(LargeObjectTest, AppendAndReadBack) {
  auto lob = Make();
  ASSERT_TRUE(lob.ok()) << lob.status().ToString();
  const std::string data = Pattern(50000);
  ASSERT_TRUE(lob->Append(data).ok());
  auto size = lob->Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, data.size());
  auto back = lob->Read(0, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
  // Partial reads.
  auto mid = lob->Read(12345, 678);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(*mid, data.substr(12345, 678));
  // Read past EOF is short, not an error.
  auto tail = lob->Read(data.size() - 10, 100);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->size(), 10u);
}

TEST_F(LargeObjectTest, PersistsThroughReopen) {
  auto lob = Make();
  ASSERT_TRUE(lob.ok());
  const std::string data = Pattern(30000, 2);
  ASSERT_TRUE(lob->Append(data).ok());
  LobRoot root = lob->root();

  LargeObject::Options opts;
  opts.db = 1;
  opts.area = 0;
  auto reopened = LargeObject::Open(&store_, &alloc_, opts, root);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto back = reopened->Read(0, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(LargeObjectTest, OverwriteWithinObject) {
  auto lob = Make();
  ASSERT_TRUE(lob.ok());
  ASSERT_TRUE(lob->Append(std::string(20000, 'x')).ok());
  ASSERT_TRUE(lob->Write(7000, std::string(6000, 'Y')).ok());
  auto back = lob->Read(0, 20000);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->substr(0, 7000), std::string(7000, 'x'));
  EXPECT_EQ(back->substr(7000, 6000), std::string(6000, 'Y'));
  EXPECT_EQ(back->substr(13000), std::string(7000, 'x'));
  EXPECT_TRUE(lob->Write(19999, std::string(2, 'z')).IsInvalidArgument());
}

TEST_F(LargeObjectTest, InsertShiftsTail) {
  auto lob = Make();
  ASSERT_TRUE(lob.ok());
  ASSERT_TRUE(lob->Append("hello world").ok());
  ASSERT_TRUE(lob->Insert(5, ", big").ok());
  auto back = lob->Read(0, 100);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "hello, big world");
  // Insert at the very start.
  ASSERT_TRUE(lob->Insert(0, ">> ").ok());
  back = lob->Read(0, 100);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, ">> hello, big world");
}

TEST_F(LargeObjectTest, DeleteClosesGap) {
  auto lob = Make();
  ASSERT_TRUE(lob.ok());
  const std::string data = Pattern(40000, 3);
  ASSERT_TRUE(lob->Append(data).ok());
  ASSERT_TRUE(lob->Delete(10000, 15000).ok());
  std::string expect = data.substr(0, 10000) + data.substr(25000);
  auto size = lob->Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, expect.size());
  auto back = lob->Read(0, expect.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, expect);
  EXPECT_TRUE(lob->CheckInvariants().ok());
}

TEST_F(LargeObjectTest, TruncateAndDestroy) {
  auto lob = Make();
  ASSERT_TRUE(lob.ok());
  ASSERT_TRUE(lob->Append(Pattern(25000, 4)).ok());
  ASSERT_TRUE(lob->Truncate(100).ok());
  auto size = lob->Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 100u);
  ASSERT_TRUE(lob->Destroy().ok());
  EXPECT_EQ(alloc_.live(), 0) << "extents leaked";
}

TEST_F(LargeObjectTest, SizeHintWidensExtents) {
  auto small = Make(0);
  auto big = Make(64ull << 20);  // 64 MB hint
  ASSERT_TRUE(small.ok() && big.ok());
  const std::string data = Pattern(200000, 5);
  ASSERT_TRUE(small->Append(data).ok());
  ASSERT_TRUE(big->Append(data).ok());
  auto small_extents = small->ExtentCount();
  auto big_extents = big->ExtentCount();
  ASSERT_TRUE(small_extents.ok() && big_extents.ok());
  EXPECT_GT(*small_extents, *big_extents);
}

TEST_F(LargeObjectTest, CompressionHooksRoundTrip) {
  // A toy run-length "compressor" registered exactly as a user would (§2.4).
  auto rle_compress = [](Event, const EventContext& ctx) {
    std::string out;
    const std::string& in = *ctx.buffer;
    for (size_t i = 0; i < in.size();) {
      size_t j = i;
      while (j < in.size() && in[j] == in[i] && j - i < 255) ++j;
      out.push_back(static_cast<char>(j - i));
      out.push_back(in[i]);
      i = j;
    }
    *ctx.buffer = out;
    return Status::OK();
  };
  auto rle_expand = [](Event, const EventContext& ctx) {
    std::string out;
    const std::string& in = *ctx.buffer;
    for (size_t i = 0; i + 1 < in.size(); i += 2) {
      out.append(static_cast<size_t>(static_cast<unsigned char>(in[i])),
                 in[i + 1]);
    }
    *ctx.buffer = out;
    return Status::OK();
  };
  // Highly compressible content.
  std::string data;
  for (int i = 0; i < 500; ++i) data += std::string(400, 'a' + (i % 26));

  // Control: how many pages does the raw form cost?
  auto control = Make(data.size());
  ASSERT_TRUE(control.ok());
  const size_t raw_before = store_.pages_written();
  ASSERT_TRUE(control->Append(data).ok());
  const size_t raw_pages = store_.pages_written() - raw_before;

  HookRegistry::Instance().Register(Event::kLargeObjectStore, rle_compress);
  HookRegistry::Instance().Register(Event::kLargeObjectFetch, rle_expand);

  auto lob = Make(data.size());
  ASSERT_TRUE(lob.ok());
  const size_t store_before = store_.pages_written();
  ASSERT_TRUE(lob->Append(data).ok());
  auto back = lob->Read(0, data.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, data);
  // The compressed form must occupy well under half the raw pages.
  const size_t pages_used = store_.pages_written() - store_before;
  EXPECT_LT(pages_used, raw_pages / 2)
      << "compressed " << pages_used << " vs raw " << raw_pages;
}

// Property test: random byte-range operation sequences match a std::string
// reference model exactly.
class LobPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LobPropertyTest, MatchesStringModel) {
  InMemoryStore store;
  BumpAllocator alloc;
  LargeObject::Options opts;
  opts.db = 1;
  opts.area = 0;
  opts.extent_pages = 1;  // stress extent churn
  auto lobr = LargeObject::Create(&store, &alloc, opts);
  ASSERT_TRUE(lobr.ok());
  LargeObject lob = std::move(*lobr);

  Random rng(GetParam());
  std::string model;
  for (int step = 0; step < 60; ++step) {
    const int op = static_cast<int>(rng.Uniform(5));
    switch (op) {
      case 0: {  // append
        std::string data = Pattern(rng.Range(1, 9000), rng.Next());
        ASSERT_TRUE(lob.Append(data).ok());
        model += data;
        break;
      }
      case 1: {  // insert
        if (model.empty()) break;
        const uint64_t at = rng.Uniform(model.size() + 1);
        std::string data = Pattern(rng.Range(1, 5000), rng.Next());
        ASSERT_TRUE(lob.Insert(at, data).ok());
        model.insert(at, data);
        break;
      }
      case 2: {  // delete
        if (model.empty()) break;
        const uint64_t at = rng.Uniform(model.size());
        const uint64_t len = rng.Range(1, 6000);
        ASSERT_TRUE(lob.Delete(at, len).ok());
        model.erase(at, std::min<uint64_t>(len, model.size() - at));
        break;
      }
      case 3: {  // overwrite
        if (model.size() < 2) break;
        const uint64_t at = rng.Uniform(model.size() - 1);
        const uint64_t len =
            std::min<uint64_t>(rng.Range(1, 4000), model.size() - at);
        std::string data = Pattern(len, rng.Next());
        ASSERT_TRUE(lob.Write(at, data).ok());
        model.replace(at, len, data);
        break;
      }
      case 4: {  // random read check
        if (model.empty()) break;
        const uint64_t at = rng.Uniform(model.size());
        const uint64_t len = rng.Range(1, 8000);
        auto got = lob.Read(at, len);
        ASSERT_TRUE(got.ok());
        ASSERT_EQ(*got, model.substr(at, len)) << "step " << step;
        break;
      }
    }
    auto size = lob.Size();
    ASSERT_TRUE(size.ok());
    ASSERT_EQ(*size, model.size()) << "step " << step;
    if (step % 10 == 0) {
      ASSERT_TRUE(lob.CheckInvariants().ok()) << "step " << step;
    }
  }
  // Final byte-for-byte comparison.
  auto all = lob.Read(0, model.size() + 1);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LobPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace bess
