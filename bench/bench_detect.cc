// E5 (paper §2.3): update detection — hardware (page protection) vs the
// software approach (explicit dirty calls) vs the conservative-compiler
// model.
//
// Hardware detection costs one fault per page per transaction, regardless
// of how many stores land on the page; the software approach costs one
// function call per *update site* and loses updates when a call is
// forgotten; the conservative model (a compiler that cannot see whether a
// callee writes) over-locks: every object passed by pointer is X-locked.
#include "workload.h"

using namespace bessbench;

int main() {
  TempDir dir("detect");
  Database::Options o;
  o.dir = dir.path();
  o.create = true;
  o.outbound_capacity = 480;
  auto dbr = Database::Open(o);
  if (!dbr.ok()) return 1;
  auto db = std::move(*dbr);
  auto part_type = db->RegisterType(PartType());
  auto file = db->CreateFile("parts");

  GraphOptions gopt;
  gopt.parts = 20000;
  auto txn0 = db->Begin();
  auto parts = BuildGraph(db.get(), *file, *part_type, gopt);
  if (!parts.ok()) return 1;
  if (!db->Commit(*txn0).ok()) return 1;

  PrintHeader("E5: update detection (§2.3)",
              "mode                        writes   faults   locks   ms");

  // Sweep write fractions: touch N parts, update a fraction of them.
  for (double write_frac : {0.01, 0.1, 0.5, 1.0}) {
    const int kTouch = 5000;
    Random rng(9);

    // --- Hardware: stores fault once per page; read-only touches free. ------
    {
      auto txn = db->Begin();
      auto f0 = db->mapper()->stats().write_faults;
      auto l0 = db->locks()->stats().acquires;
      int writes = 0;
      double secs = TimeIt([&] {
        for (int i = 0; i < kTouch; ++i) {
          Part* p = reinterpret_cast<Part*>(
              (*parts)[rng.Uniform(parts->size())]->dp);
          if (rng.Bernoulli(write_frac)) {
            p->payload[0]++;
            ++writes;
          } else {
            volatile uint64_t v = p->payload[0];
            (void)v;
          }
        }
      });
      auto f1 = db->mapper()->stats().write_faults;
      auto l1 = db->locks()->stats().acquires;
      (void)db->Commit(*txn);
      printf("hardware   (frac=%4.2f)     %6d   %6llu  %6llu  %6.1f\n",
             write_frac, writes, (unsigned long long)(f1 - f0),
             (unsigned long long)(l1 - l0), secs * 1e3);
    }

    // --- Software: explicit MarkDirty per update site. -----------------------
    {
      Database::Options o2 = o;
      o2.dir = dir.Sub("sw");
      o2.create = !File::Exists(o2.dir + "/area_0.bess");
      o2.mapper.detect_writes = false;
      static std::unique_ptr<Database> sw_db;
      static std::vector<Slot*> sw_parts;
      if (sw_db == nullptr) {
        auto r = Database::Open(o2);
        if (!r.ok()) return 1;
        sw_db = std::move(*r);
        auto tp = sw_db->RegisterType(PartType());
        auto f = sw_db->CreateFile("parts");
        auto t = sw_db->Begin();
        auto ps = BuildGraph(sw_db.get(), *f, *tp, gopt);
        if (!ps.ok()) return 1;
        sw_parts = *ps;
        if (!sw_db->Commit(*t).ok()) return 1;
      }
      auto txn = sw_db->Begin();
      Random rng2(9);
      int writes = 0;
      auto l0 = sw_db->locks()->stats().acquires;
      double secs = TimeIt([&] {
        for (int i = 0; i < kTouch; ++i) {
          Slot* s = sw_parts[rng2.Uniform(sw_parts.size())];
          Part* p = reinterpret_cast<Part*>(s->dp);
          if (rng2.Bernoulli(write_frac)) {
            // The programmer must remember this call before every update —
            // "cumbersome and error prone" (§2.3).
            (void)sw_db->mapper()->MarkDirty(p, sizeof(Part));
            p->payload[0]++;
            ++writes;
          } else {
            volatile uint64_t v = p->payload[0];
            (void)v;
          }
        }
      });
      auto l1 = sw_db->locks()->stats().acquires;
      (void)sw_db->Commit(*txn);
      printf("software   (frac=%4.2f)     %6d        0  %6llu  %6.1f\n",
             write_frac, writes, (unsigned long long)(l1 - l0), secs * 1e3);

      // --- Conservative compiler: every touched object X-locked. ------------
      auto txn2 = sw_db->Begin();
      Random rng3(9);
      auto c0 = sw_db->locks()->stats().acquires;
      double csecs = TimeIt([&] {
        for (int i = 0; i < kTouch; ++i) {
          Slot* s = sw_parts[rng3.Uniform(sw_parts.size())];
          Part* p = reinterpret_cast<Part*>(s->dp);
          // The compiler cannot tell whether the callee writes: it must
          // conservatively request exclusive access for every access.
          (void)sw_db->mapper()->MarkDirty(p, sizeof(Part));
          if (rng3.Bernoulli(write_frac)) p->payload[0]++;
          else {
            volatile uint64_t v = p->payload[0];
            (void)v;
          }
        }
      });
      auto c1 = sw_db->locks()->stats().acquires;
      (void)sw_db->Commit(*txn2);
      printf("conservative (frac=%4.2f)   %6d        0  %6llu  %6.1f\n",
             write_frac, kTouch, (unsigned long long)(c1 - c0), csecs * 1e3);
    }
  }
  printf("\nExpectation: hardware detection's fault count tracks touched\n"
         "pages (not stores) and read-mostly work costs nothing; the\n"
         "conservative software model locks an order of magnitude more.\n");
  WriteMetricsSidecar("bench_detect");
  return 0;
}
