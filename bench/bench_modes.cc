// E8 (paper §4, §6): the operation modes — copy on access vs shared memory.
//
// "Copy on access has the advantage that user processes do not need to
// synchronize their accesses to their private caches, but inter-process
// communication is expensive. In-place access offers the potential for high
// performance, especially for short transactions, since it avoids
// interprocess communication and the cost of copying data to a private
// space and back to the cache. However, it incurs the cost of synchronizing
// concurrent access to the shared cache."
//
// Setup: a page file served by a node-server-like process over Unix-domain
// sockets (copy on access) and, alternatively, mapped into a shared cache
// (shared memory mode). Worker processes run short transactions (R reads +
// W writes over a working set); we sweep the transaction length and report
// transactions/second per mode.
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include "cache/private_pool.h"
#include "cache/shared_cache.h"
#include "obs/metrics.h"
#include "os/socket.h"
#include "wal/log_manager.h"
#include "bess/bess_internal.h"
#include "workload.h"

using namespace bessbench;

namespace {

constexpr uint32_t kDbPages = 256;
constexpr int kWorkers = 2;

// Minimal page server: one thread per connection, serving fetch/write from
// a shared file — the IPC path of copy-on-access mode (Figure 3, app B).
class PageServer {
 public:
  PageServer(const std::string& sock_path, const std::string& file_path)
      : file_path_(file_path) {
    // Durability for shipped commits: page images go through a WAL and are
    // forced before the ack, like the real server (no-steal/force, §3).
    auto wal = LogManager::Open(file_path + ".wal");
    if (wal.ok()) wal_ = std::move(*wal);
    auto l = MsgListener::Listen(sock_path);
    listener_ = std::move(*l);
    accept_thread_ = std::thread([this] {
      for (;;) {
        auto sock = listener_.AcceptTimeout(100);
        if (!sock.ok()) {
          if (sock.status().IsBusy() && running_.load()) continue;
          break;
        }
        threads_.emplace_back(
            [this, s = std::make_shared<MsgSocket>(std::move(*sock))] {
              Serve(s.get());
            });
      }
    });
  }
  ~PageServer() {
    running_.store(false);
    if (accept_thread_.joinable()) accept_thread_.join();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

 private:
  void Serve(MsgSocket* sock) {
    auto f = File::Open(file_path_);
    if (!f.ok()) return;
    std::string page(kPageSize, '\0');
    for (;;) {
      auto msg = sock->Recv();
      if (!msg.ok() || msg->type == kMsgGoodbye) break;
      Decoder dec(msg->payload);
      if (msg->type == kMsgFetchPages) {
        (void)dec.GetFixed16();
        (void)dec.GetFixed16();
        const PageId first = dec.GetFixed32();
        const uint32_t count = dec.GetFixed32();
        std::string out(static_cast<size_t>(count) * kPageSize, '\0');
        (void)f->ReadAt(static_cast<uint64_t>(first) * kPageSize, out.data(),
                        out.size());
        (void)sock->Send(kMsgOk, out);
      } else if (msg->type == kMsgCommit) {
        auto pages = DecodePageSet(msg->payload);
        if (pages.ok()) {
          if (wal_ != nullptr) {
            std::lock_guard<std::mutex> guard(wal_mutex_);
            for (const PageImage& img : *pages) {
              LogRecord rec;
              rec.type = LogRecordType::kPageWrite;
              rec.page = PageAddr{img.db, img.area, img.page};
              rec.after = img.bytes;
              (void)wal_->Append(rec);
            }
            LogRecord commit;
            commit.type = LogRecordType::kCommit;
            (void)wal_->AppendAndFlush(commit);
          }
          for (const PageImage& img : *pages) {
            (void)f->WriteAt(static_cast<uint64_t>(img.page) * kPageSize,
                             img.bytes.data(), kPageSize);
          }
        }
        (void)sock->Send(kMsgOk, "");
      }
    }
  }

  std::string file_path_;
  std::unique_ptr<LogManager> wal_;
  std::mutex wal_mutex_;
  MsgListener listener_;
  std::thread accept_thread_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{true};
};

// Copy-on-access client store: fetches over the socket; writes ship as a
// commit page set (and the send/recv copies are the mode's inherent cost).
// The mutex serializes the request/reply pairs: with the pool's bgwriter
// enabled, its flush thread shares this socket with foreground fetches.
class SocketStore : public SegmentStore {
 public:
  explicit SocketStore(const std::string& path) {
    auto s = MsgSocket::Connect(path);
    sock_ = std::move(*s);
  }
  Status FetchSlotted(SegmentId, void*, uint32_t*) override {
    return Status::NotSupported("page bench");
  }
  Status FetchPages(uint16_t db, uint16_t area, PageId first, uint32_t count,
                    void* buf) override {
    std::string payload;
    PutFixed16(&payload, db);
    PutFixed16(&payload, area);
    PutFixed32(&payload, first);
    PutFixed32(&payload, count);
    std::lock_guard<std::mutex> guard(mu_);
    BESS_RETURN_IF_ERROR(sock_.Send(kMsgFetchPages, payload));
    BESS_ASSIGN_OR_RETURN(Message reply, sock_.Recv());
    memcpy(buf, reply.payload.data(), reply.payload.size());
    return Status::OK();
  }
  Status WritePages(uint16_t db, uint16_t area, PageId first, uint32_t count,
                    const void* buf) override {
    std::vector<PageImage> pages;
    for (uint32_t i = 0; i < count; ++i) {
      PageImage img;
      img.db = db;
      img.area = area;
      img.page = first + i;
      img.bytes.assign(static_cast<const char*>(buf) +
                           static_cast<size_t>(i) * kPageSize,
                       kPageSize);
      pages.push_back(std::move(img));
    }
    std::string payload;
    EncodePageSet(pages, &payload);
    std::lock_guard<std::mutex> guard(mu_);
    BESS_RETURN_IF_ERROR(sock_.Send(kMsgCommit, payload));
    BESS_ASSIGN_OR_RETURN(Message reply, sock_.Recv());
    (void)reply;
    return Status::OK();
  }

 private:
  std::mutex mu_;
  MsgSocket sock_;
};

struct WorkerArgs {
  int txns;
  int reads_per_txn;
  int writes_per_txn;
  uint64_t seed;
  /// Eviction-pressure variant (E8b): caches sized below the working set,
  /// one flush at the end (a long transaction) instead of one per txn.
  uint32_t cache_frames = 64;       ///< per-worker private pool frames
  uint32_t shm_frames = kDbPages;   ///< shared-cache slots
  bool long_txn = false;
  bool bgwriter = false;
};

// One copy-on-access worker process: private pool + IPC per miss; commit
// flushes dirty pages back over the socket and drops the cache (short
// transactions, no inter-transaction cache, matching §4.1.1's private pool).
void RunCoaWorker(const std::string& sock_path, const std::string& pool_path,
                  const WorkerArgs& args, int result_fd) {
  SocketStore store(sock_path);
  PrivateBufferPool::Options popts;
  popts.enable_bgwriter = args.bgwriter;
  popts.bgwriter_interval_ms = 1;
  auto pool =
      PrivateBufferPool::Open(pool_path, args.cache_frames, &store, popts);
  if (!pool.ok()) _exit(2);
  Random rng(args.seed);
  for (int t = 0; t < args.txns; ++t) {
    for (int r = 0; r < args.reads_per_txn; ++r) {
      auto addr =
          (*pool)->Fix(PageAddr{1, 0, static_cast<PageId>(
                                          rng.Uniform(kDbPages))},
                       false);
      if (!addr.ok()) _exit(2);
      volatile char c = *static_cast<char*>(*addr);
      (void)c;
    }
    for (int w = 0; w < args.writes_per_txn; ++w) {
      auto addr =
          (*pool)->Fix(PageAddr{1, 0, static_cast<PageId>(
                                          rng.Uniform(kDbPages))},
                       true);
      if (!addr.ok()) _exit(2);
      (*static_cast<uint64_t*>(*addr))++;
    }
    if (!args.long_txn && !(*pool)->FlushDirty().ok()) _exit(2);
  }
  if (args.long_txn && !(*pool)->FlushDirty().ok()) _exit(2);
  char done = 'd';
  (void)!write(result_fd, &done, 1);
  _exit(0);
}

// One shared-memory worker: in-place access, latches for write atomicity —
// no IPC, no copies (§4.1.2).
void RunShmWorker(const std::string& shm_name, const std::string& file_path,
                  const WorkerArgs& args, int result_fd) {
  auto cache = SharedCache::Attach(shm_name);
  if (!cache.ok()) _exit(2);
  // The store is only needed for misses/evictions: direct file access
  // (the node server's LocalStore role).
  class FileStore : public SegmentStore {
   public:
    explicit FileStore(const std::string& path) {
      auto f = File::Open(path);
      file_ = std::move(*f);
    }
    Status FetchSlotted(SegmentId, void*, uint32_t*) override {
      return Status::NotSupported("");
    }
    Status FetchPages(uint16_t, uint16_t, PageId first, uint32_t count,
                      void* buf) override {
      return file_.ReadAt(static_cast<uint64_t>(first) * kPageSize, buf,
                          static_cast<size_t>(count) * kPageSize);
    }
    Status WritePages(uint16_t, uint16_t, PageId first, uint32_t count,
                      const void* buf) override {
      return file_.WriteAt(static_cast<uint64_t>(first) * kPageSize, buf,
                           static_cast<size_t>(count) * kPageSize);
    }
    File file_;
  } store(file_path);

  SharedPageSpace::Options sopts;
  sopts.enable_bgwriter = args.bgwriter;
  sopts.bgwriter_interval_ms = 1;
  auto space = SharedPageSpace::Open(std::move(*cache), &store, sopts);
  if (!space.ok()) _exit(2);
  Random rng(args.seed);
  for (int t = 0; t < args.txns; ++t) {
    for (int r = 0; r < args.reads_per_txn; ++r) {
      const PageAddr page{1, 0, static_cast<PageId>(rng.Uniform(kDbPages))};
      auto addr = (*space)->Fix(page, false);
      if (!addr.ok()) _exit(2);
      volatile char c = *static_cast<char*>(*addr);
      (void)c;
    }
    for (int w = 0; w < args.writes_per_txn; ++w) {
      const PageAddr page{1, 0, static_cast<PageId>(rng.Uniform(kDbPages))};
      auto addr = (*space)->Fix(page, true);
      if (!addr.ok()) _exit(2);
      if (!(*space)->LatchPage(page).ok()) _exit(2);
      (*static_cast<uint64_t*>(*addr))++;
      (void)(*space)->UnlatchPage(page);
    }
    // In-place: nothing to ship; durability is the node server's batch
    // flush, outside the transaction's critical path here.
  }
  (void)(*space)->FlushDirty();
  char done = 'd';
  (void)!write(result_fd, &done, 1);
  _exit(0);
}

double RunMode(bool shared_mode, const TempDir& dir, const WorkerArgs& args,
               int workers = kWorkers) {
  const std::string file_path = dir.Sub("pages.db");
  {
    auto f = File::Open(file_path);
    std::string zero(kPageSize, '\0');
    for (uint32_t p = 0; p < kDbPages; ++p) {
      (void)f->WriteAt(static_cast<uint64_t>(p) * kPageSize, zero.data(),
                       kPageSize);
    }
  }
  const std::string sock_path = dir.Sub("ps.sock");
  const std::string shm_name =
      "/bess_modes_" + std::to_string(::getpid());

  std::unique_ptr<PageServer> server;
  SharedCache creator;  // keeps the shm alive in shared mode
  if (shared_mode) {
    SharedCache::Geometry geo;
    geo.frame_count = args.shm_frames;
    geo.vframe_count = kDbPages * 2;
    geo.smt_capacity = 1024;
    auto c = SharedCache::Create(shm_name, geo);
    if (!c.ok()) exit(1);
    creator = std::move(*c);
  } else {
    server = std::make_unique<PageServer>(sock_path, file_path);
  }

  int pipefd[2];
  if (pipe(pipefd) != 0) exit(1);

  const double secs = TimeIt([&] {
    std::vector<pid_t> pids;
    for (int w = 0; w < workers; ++w) {
      WorkerArgs wa = args;
      wa.seed = static_cast<uint64_t>(w) * 104729 + 7;
      pid_t pid = fork();
      if (pid == 0) {
        close(pipefd[0]);
        if (shared_mode) {
          RunShmWorker(shm_name, file_path, wa, pipefd[1]);
        } else {
          RunCoaWorker(sock_path, dir.Sub("pool_" + std::to_string(w)), wa,
                       pipefd[1]);
        }
      }
      pids.push_back(pid);
    }
    for (pid_t pid : pids) {
      int status;
      waitpid(pid, &status, 0);
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        fprintf(stderr, "worker failed\n");
        exit(1);
      }
    }
  });
  close(pipefd[0]);
  close(pipefd[1]);
  ::shm_unlink(shm_name.c_str());
  return secs;
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  // Materialize the default (MAP_SHARED) registry before any fork so the
  // worker processes aggregate into this process's metrics block.
  obs::Registry::Default();
  PrintHeader(
      "E8: operation modes — copy on access vs shared memory (§4, §6)",
      "txn shape (R+W)   copy-on-access txn/s   shared-memory txn/s   "
      "speedup");

  struct Shape {
    int reads, writes, txns;
  };
  for (const Shape s : {Shape{2, 1, 400}, Shape{8, 2, 300},
                        Shape{32, 8, 150}}) {
    TempDir dir("modes");
    WorkerArgs args{s.txns, s.reads, s.writes, 0};
    const double coa = RunMode(false, dir, args);
    const double shm = RunMode(true, dir, args);
    const double total_txns = static_cast<double>(s.txns) * kWorkers;
    printf("%6d+%-6d     %18.0f   %19.0f   %6.1fx\n", s.reads, s.writes,
           total_txns / coa, total_txns / shm, coa / shm);
  }
  printf("\nExpectation: shared memory wins decisively — it pays neither\n"
         "the IPC round trips nor the private-pool copy on fetch and\n"
         "write-back. The gap widens with the number of dirty pages a\n"
         "transaction must ship; its cost is only the latch per write\n"
         "(§4.1). Copy-on-access remains the safe default for untrusted\n"
         "code: processes never touch shared control state.\n");

  // E8b: the same crossover under eviction pressure — working set (256
  // pages) at 2x the cache (128 frames), one long transaction, so every
  // miss must evict and dirty victims need write-back. The bgwriter's
  // claim: foreground faults never pay that write synchronously.
  PrintHeader(
      "E8b: eviction pressure (working set 2x cache) — bgwriter off vs on",
      "mode             bgwriter   txn/s   sync-writebacks   bg-flushed");
  struct PressureRow {
    bool shared_mode;
    bool bgwriter;
  };
  bool bgwriter_claim_ok = true;
  for (const PressureRow row :
       {PressureRow{false, false}, PressureRow{false, true},
        PressureRow{true, false}, PressureRow{true, true}}) {
    TempDir dir("modes_pressure");
    WorkerArgs args{/*txns=*/40, /*reads=*/32, /*writes=*/16, 0};
    args.cache_frames = kDbPages / 2;
    args.shm_frames = kDbPages / 2;
    args.long_txn = true;
    args.bgwriter = row.bgwriter;
    const Stats before = Snapshot();
    const double secs = RunMode(row.shared_mode, dir, args, /*workers=*/1);
    const Stats delta = StatsDelta(before, Snapshot());
    const uint64_t sync_wb = delta.counter("cache.evict.sync_writeback");
    const uint64_t bg_flushed = delta.counter("cache.bgwriter.flushed");
    printf("%-15s   %8s   %5.0f   %15llu   %10llu\n",
           row.shared_mode ? "shared-memory" : "copy-on-access",
           row.bgwriter ? "on" : "off", args.txns / secs,
           static_cast<unsigned long long>(sync_wb),
           static_cast<unsigned long long>(bg_flushed));
    if (row.bgwriter && (sync_wb != 0 || bg_flushed == 0)) {
      bgwriter_claim_ok = false;
    }
  }
  printf("\nExpectation: with the bgwriter off, dirty victims are written\n"
         "back synchronously inside the faulting thread. With it on, the\n"
         "flush-ahead keeps clean victims available: sync-writebacks drop\n"
         "to zero and the same work rides the background thread instead\n"
         "(cache.bgwriter.flushed).\n");
  WriteMetricsSidecar("bench_modes");
  if (!bgwriter_claim_ok) {
    fprintf(stderr,
            "FAIL: bgwriter-enabled phase issued synchronous write-backs "
            "(or never flushed)\n");
    return 1;
  }
  return 0;
}
