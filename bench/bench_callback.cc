// E6 (paper §3, refs [17,19,32,13]): inter-transaction caching with
// callback locking.
//
// Workloads follow the client-server caching literature: each client has a
// private region plus a shared region with a configurable write
// probability. We compare clients that cache data+locks across
// transactions (with the server reclaiming via callbacks) against clients
// that drop everything at commit (the paper's node-less behaviour), and
// report transactions/second and messages per transaction.
#include "bess/bess_internal.h"
#include "workload.h"

using namespace bessbench;

namespace {

struct WorkloadResult {
  double txn_per_sec;
  double rpcs_per_txn;
  uint64_t callbacks;
};

WorkloadResult RunClients(const std::string& server_path, int nclients,
                          int txns_per_client, bool caching,
                          double shared_prob, double write_prob,
                          BessServer* server) {
  const auto server0 = server->stats();
  std::vector<std::thread> threads;
  std::atomic<uint64_t> total_rpcs{0};
  std::atomic<int> done_txns{0};

  double secs = TimeIt([&] {
    for (int c = 0; c < nclients; ++c) {
      threads.emplace_back([&, c] {
        RemoteClient::Options o;
        o.server_path = server_path;
        o.db_id = 1;
        o.cache_inter_txn = caching;
        o.lock_timeout_ms = 2000;
        auto client = RemoteClient::Connect(o);
        if (!client.ok()) {
          fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
          return;
        }
        auto priv = (*client)->GetRoot("priv_" + std::to_string(c));
        auto shared = (*client)->GetRoot("shared");
        if (!priv.ok() || !shared.ok()) {
          fprintf(stderr, "roots: %s / %s\n",
                  priv.status().ToString().c_str(),
                  shared.status().ToString().c_str());
          return;
        }
        Random rng(static_cast<uint64_t>(c) * 7919 + 13);
        for (int t = 0; t < txns_per_client; ++t) {
          if (!(*client)->Begin().ok()) return;
          // Touch 8 objects: mostly private, sometimes shared.
          for (int i = 0; i < 8; ++i) {
            const bool use_shared = rng.Bernoulli(shared_prob);
            Slot* region = use_shared ? *shared : *priv;
            Part* p = reinterpret_cast<Part*>(region->dp);
            if (rng.Bernoulli(write_prob)) {
              p->payload[i % 4]++;
            } else {
              volatile uint64_t v = p->payload[i % 4];
              (void)v;
            }
          }
          Status s = (*client)->Commit();
          if (s.ok()) done_txns.fetch_add(1);
          else {
            fprintf(stderr, "commit: %s\n", s.ToString().c_str());
            (void)(*client)->Abort();
          }
        }
        total_rpcs.fetch_add((*client)->stats().rpcs);
      });
    }
    for (auto& t : threads) t.join();
  });

  const auto server1 = server->stats();
  WorkloadResult r;
  const int txns = done_txns.load();
  r.txn_per_sec = txns / secs;
  r.rpcs_per_txn = txns == 0 ? 0 : static_cast<double>(total_rpcs.load()) / txns;
  r.callbacks = server1.callbacks_sent - server0.callbacks_sent;
  return r;
}

}  // namespace

int main() {
  TempDir dir("callback");
  Database::Options o;
  o.dir = dir.Sub("db");
  o.db_id = 1;
  o.create = true;
  auto dbr = Database::Open(o);
  if (!dbr.ok()) return 1;
  auto db = std::move(*dbr);

  BessServer::Options so;
  so.socket_path = dir.Sub("server.sock");
  so.lock_timeout_ms = 3000;
  BessServer server(so);
  (void)server.AddDatabase(db.get());
  if (!server.Start().ok()) return 1;

  // Seed: one private object per client (each in its own segment via a
  // dedicated file) and one shared object.
  const int kClients = std::getenv("CB_CLIENTS") ? atoi(std::getenv("CB_CLIENTS")) : 4;
  {
    auto part_type = db->RegisterType(PartType());
    auto txn = db->Begin();
    for (int c = 0; c < kClients; ++c) {
      auto f = db->CreateFile("priv_" + std::to_string(c));
      auto s = db->CreateObject(*f, *part_type, sizeof(Part));
      if (!s.ok()) return 1;
      (void)db->SetRoot("priv_" + std::to_string(c), *s);
    }
    auto fs = db->CreateFile("sharedf");
    auto s = db->CreateObject(*fs, *part_type, sizeof(Part));
    if (!s.ok()) return 1;
    (void)db->SetRoot("shared", *s);
    if (!db->Commit(*txn).ok()) return 1;
    (void)db->mapper()->Reset();  // the server keeps no mapped copies
  }

  PrintHeader("E6: callback locking vs no inter-transaction caching (§3)",
              "workload              caching   txn/s    rpc/txn   callbacks");
  struct Case {
    const char* name;
    double shared_prob;
    double write_prob;
  };
  const Case cases[] = {
      {"private (0% shared)", 0.0, 0.3},
      {"hot-read (20% sh, r/o)", 0.2, 0.0},
      {"hot-write (20% sh, 30%w)", 0.2, 0.3},
  };
  const int kTxns = std::getenv("CB_TXNS") ? atoi(std::getenv("CB_TXNS")) : 50;
  for (const Case& c : cases) {
    for (bool caching : {true, false}) {
      WorkloadResult r =
          RunClients(so.socket_path, kClients, kTxns, caching, c.shared_prob,
                     c.write_prob, &server);
      printf("%-22s  %-7s  %7.0f   %7.2f   %9llu\n", c.name,
             caching ? "yes" : "no", r.txn_per_sec, r.rpcs_per_txn,
             (unsigned long long)r.callbacks);
      fflush(stdout);
    }
  }
  printf("\nExpectation: with private or read-shared data, caching cuts\n"
         "messages per transaction toward zero and multiplies throughput;\n"
         "write-shared data forces callbacks, narrowing the gap — the\n"
         "classic callback-locking profile [13, 32].\n");
  server.Stop();
  WriteMetricsSidecar("bench_callback");
  return 0;
}
