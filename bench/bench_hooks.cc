// E12 (paper §2.4): primitive events and hook functions.
//
// Measures the dispatch overhead of the extensibility mechanism: firing an
// event with 0 hooks (the common case: one atomic load), with registered
// hooks, and the paper's own motivating example — counting transaction
// commits without touching application code or BeSS internals.
#include "hooks/hooks.h"
#include "workload.h"

using namespace bessbench;

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  HookRegistry& reg = HookRegistry::Instance();
  reg.Clear();

  PrintHeader("E12: hook dispatch overhead (§2.4)",
              "configuration                         ns/event");

  const int kEvents = 2000000;
  EventContext ctx;

  double none = TimeIt([&] {
    for (int i = 0; i < kEvents; ++i) {
      (void)FireEvent(Event::kTransactionCommit, ctx);
    }
  });
  printf("no hooks registered                    %8.2f\n",
         none / kEvents * 1e9);

  std::atomic<uint64_t> counter{0};
  uint64_t id1 = reg.Register(Event::kTransactionCommit,
                              [&](Event, const EventContext&) {
                                counter.fetch_add(1,
                                                  std::memory_order_relaxed);
                                return Status::OK();
                              });
  double one = TimeIt([&] {
    for (int i = 0; i < kEvents; ++i) {
      (void)FireEvent(Event::kTransactionCommit, ctx);
    }
  });
  printf("1 hook (commit counter)                %8.2f\n",
         one / kEvents * 1e9);

  std::vector<uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(reg.Register(Event::kTransactionCommit,
                               [&](Event, const EventContext&) {
                                 counter.fetch_add(1,
                                                   std::memory_order_relaxed);
                                 return Status::OK();
                               }));
  }
  double four = TimeIt([&] {
    for (int i = 0; i < kEvents; ++i) {
      (void)FireEvent(Event::kTransactionCommit, ctx);
    }
  });
  printf("4 hooks                                %8.2f\n",
         four / kEvents * 1e9);
  reg.Unregister(id1);
  for (uint64_t id : ids) reg.Unregister(id);

  // The paper's scenario: count commits across a real workload, without
  // modifying the application or BeSS (§2.4).
  PrintHeader("E12b: counting commits via a hook (paper's §2.4 scenario)",
              "metric                        value");
  counter.store(0);
  uint64_t hook_id = reg.Register(Event::kTransactionCommit,
                                  [&](Event, const EventContext&) {
                                    counter.fetch_add(1);
                                    return Status::OK();
                                  });
  TempDir dir("hooks");
  Database::Options o;
  o.dir = dir.path();
  o.create = true;
  auto db = Database::Open(o);
  if (!db.ok()) return 1;
  auto file = (*db)->CreateFile("f");
  const int kTxns = 200;
  double with_hook = TimeIt([&] {
    for (int t = 0; t < kTxns; ++t) {
      auto txn = (*db)->Begin();
      uint64_t v = static_cast<uint64_t>(t);
      (void)(*db)->CreateObject(*file, kRawBytesType, 64, &v);
      if (!(*db)->Commit(*txn).ok()) exit(1);
    }
  });
  reg.Unregister(hook_id);
  double without = TimeIt([&] {
    for (int t = 0; t < kTxns; ++t) {
      auto txn = (*db)->Begin();
      uint64_t v = static_cast<uint64_t>(t);
      (void)(*db)->CreateObject(*file, kRawBytesType, 64, &v);
      if (!(*db)->Commit(*txn).ok()) exit(1);
    }
  });
  printf("commits counted by hook       %llu / %d\n",
         (unsigned long long)counter.load(), kTxns);
  printf("txn time with hook            %8.2f ms\n",
         with_hook / kTxns * 1e3);
  printf("txn time without hook         %8.2f ms\n",
         without / kTxns * 1e3);
  printf("\nExpectation: a never-hooked event costs one atomic load; the\n"
         "per-transaction overhead of a registered commit hook is noise\n"
         "against real transaction work.\n");
  WriteMetricsSidecar("bench_hooks");
  return 0;
}
