// E14 (paper §4): multi-client commit throughput scaling.
//
// The paper's performance claim rests on many clients committing through
// one server without serializing on a single code path. This bench drives
// 1, 2, 4 and 8 client threads — each with its own RemoteClient connection
// and its own file/object, so the workload has no *logical* contention —
// and reports total commits/sec. What limits scaling is purely the commit
// path's physical contention: the WAL tail (amortized by group commit: one
// fsync serves a whole batch of committers), the lock table (hash-sharded),
// and the server's session/dedup bookkeeping (sharded + atomic).
//
// The bench injects a fixed 500us latency into every fsync (the fault
// layer's kLatency action on "file.sync"). Container filesystems ack
// fdatasync in a few microseconds, which leaves group commit nothing to
// amortize and makes the 1-client baseline pure noise; a disk-like fsync
// cost makes the scaling ratio measure the batching effect itself,
// independent of the host.
//
// `scripts/check_bench_scale.sh` parses this output and fails when
// 8-client throughput is below 2x the 1-client throughput, or when the
// group-commit batch size never exceeded 1 under the 8-client load.
#include <thread>

#include "obs/stats.h"
#include "os/fault_injection.h"
#include "server/bess_server.h"
#include "server/remote_client.h"
#include "bess/bess_internal.h"
#include "workload.h"

using namespace bessbench;

namespace {

constexpr int kCommitsPerClient = 300;

struct ScaleServer {
  std::unique_ptr<Database> db;
  std::unique_ptr<BessServer> server;
  std::string path;
};

ScaleServer StartServer(const TempDir& dir) {
  ScaleServer s;
  Database::Options o;
  o.dir = dir.Sub("db");
  o.db_id = 1;
  o.create = true;
  auto db = Database::Open(o);
  if (!db.ok()) {
    fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    exit(1);
  }
  s.db = std::move(*db);
  BessServer::Options so;
  so.socket_path = dir.Sub("srv.sock");
  s.server = std::make_unique<BessServer>(so);
  (void)s.server->AddDatabase(s.db.get());
  if (!s.server->Start().ok()) exit(1);
  s.path = so.socket_path;
  return s;
}

struct Client {
  std::unique_ptr<RemoteClient> rc;
  Slot* slot = nullptr;
};

// Connects and seeds one private object per client so the measured loop has
// no lock conflicts and no object creation — just update + commit.
Client MakeClient(const std::string& server_path, int n, int i) {
  Client c;
  RemoteClient::Options o;
  o.server_path = server_path;
  o.db_id = 1;
  auto rc = RemoteClient::Connect(o);
  if (!rc.ok()) {
    fprintf(stderr, "connect: %s\n", rc.status().ToString().c_str());
    exit(1);
  }
  c.rc = std::move(*rc);
  if (!c.rc->Begin().ok()) exit(1);
  auto f = c.rc->CreateFile("scale_" + std::to_string(n) + "_" +
                            std::to_string(i));
  if (!f.ok()) exit(1);
  uint64_t v = 0;
  auto slot = c.rc->CreateObject(*f, kRawBytesType, 64, &v);
  if (!slot.ok()) exit(1);
  if (!c.rc->Commit().ok()) exit(1);
  c.slot = *slot;
  return c;
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  TempDir dir("scale");
  ScaleServer srv = StartServer(dir);

  // Simulate a disk: every fsync costs 500us on top of whatever the host
  // filesystem charges. Armed after StartServer so recovery isn't slowed.
  fault::FaultSpec slow_fsync;
  slow_fsync.action = fault::FaultAction::kLatency;
  slow_fsync.latency_us = 500;
  fault::FaultRegistry::Instance().Arm("file.sync", slow_fsync);

  PrintHeader("E14: multi-client commit scaling (§4)",
              "clients   commits   secs    commits/sec   batch-p50   fsyncs");
  for (int n : {1, 2, 4, 8}) {
    std::vector<Client> clients;
    for (int i = 0; i < n; ++i) {
      clients.push_back(MakeClient(srv.path, n, i));
    }
    const Stats before = Snapshot();
    const double secs = TimeIt([&] {
      std::vector<std::thread> threads;
      for (int i = 0; i < n; ++i) {
        threads.emplace_back([&, i] {
          Client& c = clients[static_cast<size_t>(i)];
          for (int k = 0; k < kCommitsPerClient; ++k) {
            if (!c.rc->Begin().ok()) exit(1);
            uint64_t* v = reinterpret_cast<uint64_t*>(c.slot->dp);
            (*v)++;
            if (!c.rc->Commit().ok()) exit(1);
          }
        });
      }
      for (auto& t : threads) t.join();
    });
    const Stats delta = StatsDelta(before, Snapshot());
    const HistogramSnapshot* batch =
        delta.histogram("wal.group_commit.batch_size");
    const double p50 = batch == nullptr ? 0.0 : batch->p50();
    const HistogramSnapshot* fsync = delta.histogram("wal.fsync");
    const uint64_t fsyncs = fsync == nullptr ? 0 : fsync->count;
    const double total = static_cast<double>(n) * kCommitsPerClient;
    printf("%7d   %7.0f   %5.2f   %11.1f   %9.2f   %6llu\n", n, total, secs,
           total / secs, p50, static_cast<unsigned long long>(fsyncs));
  }

  WriteMetricsSidecar("bench_scale");
  return 0;
}
