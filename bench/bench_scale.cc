// E14 (paper §4): multi-client commit throughput scaling.
//
// The paper's performance claim rests on many clients committing through
// one server without serializing on a single code path. This bench drives
// 1, 2, 4 and 8 client threads — each with its own RemoteClient connection
// and its own file/object, so the workload has no *logical* contention —
// and reports total commits/sec. What limits scaling is purely the commit
// path's physical contention: the WAL tail (amortized by group commit: one
// fsync serves a whole batch of committers), the lock table (hash-sharded),
// and the server's session/dedup bookkeeping (sharded + atomic).
//
// The bench injects a fixed 500us latency into every fsync (the fault
// layer's kLatency action on "file.sync"). Container filesystems ack
// fdatasync in a few microseconds, which leaves group commit nothing to
// amortize and makes the 1-client baseline pure noise; a disk-like fsync
// cost makes the scaling ratio measure the batching effect itself,
// independent of the host.
//
// `scripts/check_bench_scale.sh` parses this output and fails when
// 8-client throughput is below 2x the 1-client throughput, or when the
// group-commit batch size never exceeded 1 under the 8-client load.
//
// E15 (DESIGN.md §11): open-loop latency sweep over the epoll server.
// A fixed arrival rate of pings is spread across 64 → 1024 simulated
// clients (raw pipelined connections, a few driver threads, not a thread
// per client), and request latency is measured against each ping's
// *scheduled* send time — the open-loop convention, so server-side queueing
// is charged to the server rather than hidden by a stalled closed loop.
// Reported per sweep point: exact p50/p99, the process thread count (the
// O(workers)-not-O(connections) claim), and the `server.reactor.*` counter
// deltas (wakeups + reply-batch size: the batched-dispatch proof). Besides
// stdout, writes the BENCH_scale.json gate artifact.
#include <poll.h>

#include <algorithm>
#include <thread>

#include "obs/stats.h"
#include "os/fault_injection.h"
#include "server/bess_server.h"
#include "server/remote_client.h"
#include "bess/bess_internal.h"
#include "workload.h"

using namespace bessbench;

namespace {

constexpr int kCommitsPerClient = 300;

struct ScaleServer {
  std::unique_ptr<Database> db;
  std::unique_ptr<BessServer> server;
  std::string path;
};

ScaleServer StartServer(const TempDir& dir) {
  ScaleServer s;
  Database::Options o;
  o.dir = dir.Sub("db");
  o.db_id = 1;
  o.create = true;
  auto db = Database::Open(o);
  if (!db.ok()) {
    fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    exit(1);
  }
  s.db = std::move(*db);
  BessServer::Options so;
  so.socket_path = dir.Sub("srv.sock");
  // E14 measures what the *commit path* serializes on, so the worker pool
  // must not be the bottleneck: provision one blocking-work slot per client
  // (the default pool sizes off hardware concurrency, which in a 1-core CI
  // container would cap concurrent commits — and group-commit batches — at
  // 2 regardless of the WAL's behaviour).
  so.worker_threads = 8;
  s.server = std::make_unique<BessServer>(so);
  (void)s.server->AddDatabase(s.db.get());
  if (!s.server->Start().ok()) exit(1);
  s.path = so.socket_path;
  return s;
}

struct Client {
  std::unique_ptr<RemoteClient> rc;
  Slot* slot = nullptr;
};

// Connects and seeds one private object per client so the measured loop has
// no lock conflicts and no object creation — just update + commit.
Client MakeClient(const std::string& server_path, int n, int i) {
  Client c;
  RemoteClient::Options o;
  o.server_path = server_path;
  o.db_id = 1;
  auto rc = RemoteClient::Connect(o);
  if (!rc.ok()) {
    fprintf(stderr, "connect: %s\n", rc.status().ToString().c_str());
    exit(1);
  }
  c.rc = std::move(*rc);
  if (!c.rc->Begin().ok()) exit(1);
  auto f = c.rc->CreateFile("scale_" + std::to_string(n) + "_" +
                            std::to_string(i));
  if (!f.ok()) exit(1);
  uint64_t v = 0;
  auto slot = c.rc->CreateObject(*f, kRawBytesType, 64, &v);
  if (!slot.ok()) exit(1);
  if (!c.rc->Commit().ok()) exit(1);
  c.slot = *slot;
  return c;
}

// ---- E15: open-loop ping sweep ---------------------------------------------

constexpr int kDrivers = 4;
constexpr uint64_t kTotalRatePerSec = 4000;  // arrivals across all clients
constexpr double kSweepSecs = 2.0;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One simulated client: a pipelined non-blocking connection with its own
/// send/recv continuations and ping schedule.
struct SimClient {
  MsgSocket sock;
  SendContinuation send_cont;
  RecvContinuation recv_cont;
  uint64_t next_send_ns = 0;
  uint64_t sent = 0;
  uint64_t received = 0;
};

struct SweepPoint {
  int clients = 0;
  uint64_t sent = 0;
  uint64_t received = 0;
  double p50_us = 0;
  double p99_us = 0;
  int threads = 0;
  uint64_t wakeups = 0;
  double batch_p50 = 0;
  uint64_t batch_max = 0;
};

int ProcessThreads() {
  FILE* f = fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  int threads = -1;
  while (fgets(line, sizeof(line), f) != nullptr) {
    if (sscanf(line, "Threads: %d", &threads) == 1) break;
  }
  fclose(f);
  return threads;
}

double Percentile(std::vector<uint64_t>& ns, double p) {
  if (ns.empty()) return 0;
  std::sort(ns.begin(), ns.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(ns.size() - 1));
  return static_cast<double>(ns[idx]) / 1e3;  // us
}

/// Drives `count` clients open-loop: pings are queued at their scheduled
/// times regardless of how fast replies come back, replies drain on poll
/// readiness, and each latency sample is reply_time - scheduled_time.
void DriveClients(const std::string& server_path, int count,
                  uint64_t interval_ns, uint64_t start_ns, uint64_t stop_ns,
                  std::vector<uint64_t>* latencies_ns, uint64_t* sent_out,
                  uint64_t* received_out) {
  std::vector<SimClient> clients(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    auto sock = MsgSocket::Connect(server_path);
    if (!sock.ok()) {
      fprintf(stderr, "connect: %s\n", sock.status().ToString().c_str());
      exit(1);
    }
    clients[static_cast<size_t>(i)].sock = std::move(*sock);
    SimClient& c = clients[static_cast<size_t>(i)];
    if (!c.sock.Send(kMsgHello, "").ok()) exit(1);
    auto hello = c.sock.Recv();
    if (!hello.ok() || hello->type != kMsgOk) exit(1);
    if (!c.sock.SetNonBlocking(true).ok()) exit(1);
    // Stagger first arrivals uniformly across one interval so the sweep
    // offers a smooth rate instead of N-at-once bursts.
    c.next_send_ns =
        start_ns + interval_ns * static_cast<uint64_t>(i) /
                       static_cast<uint64_t>(count);
  }

  std::vector<pollfd> pfds(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    pfds[static_cast<size_t>(i)].fd = clients[static_cast<size_t>(i)].sock.fd();
  }

  uint64_t in_flight = 0;
  for (;;) {
    const uint64_t now = NowNs();
    bool sending = now < stop_ns;
    if (!sending && in_flight == 0) break;

    uint64_t next_event = stop_ns + 1000000000ull;  // drain grace: 1s
    for (auto& c : clients) {
      if (sending) {
        while (c.next_send_ns <= now) {
          // The stamp is the *scheduled* time: open-loop latency includes
          // any delay the generator itself incurred under load.
          std::string payload;
          PutFixed64(&payload, c.next_send_ns);
          MsgSocket::QueueFrame(kMsgPing, ++c.sent, payload, &c.send_cont);
          in_flight++;
          c.next_send_ns += interval_ns;
        }
        next_event = std::min(next_event, c.next_send_ns);
      }
      if (!c.send_cont.empty()) (void)c.sock.TrySend(&c.send_cont);
    }

    // Wait for readable replies, but never past the next scheduled send.
    const uint64_t wake = sending ? std::min(next_event, stop_ns) : next_event;
    const uint64_t now2 = NowNs();
    int timeout_ms =
        wake > now2 ? static_cast<int>((wake - now2) / 1000000ull) + 1 : 0;
    for (auto& p : pfds) {
      p.events = POLLIN;
      p.revents = 0;
    }
    int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (!sending && ready == 0) break;  // drain grace expired: lost replies

    if (ready > 0) {
      for (int i = 0; i < count; ++i) {
        if (pfds[static_cast<size_t>(i)].revents == 0) continue;
        SimClient& c = clients[static_cast<size_t>(i)];
        for (;;) {
          Message msg;
          Status s = c.sock.TryRecv(&msg, &c.recv_cont);
          if (s.IsWouldBlock()) break;
          if (!s.ok()) {
            // Dead connection: write off its in-flight pings so the drain
            // loop can still terminate, and stop polling it.
            const uint64_t lost = c.sent - c.received;
            in_flight -= std::min(in_flight, lost);
            c.received = c.sent;
            pfds[static_cast<size_t>(i)].fd = -1;
            break;
          }
          if (msg.type == kMsgOk && msg.payload.size() == 8) {
            const uint64_t stamp = DecodeFixed64(msg.payload.data());
            latencies_ns->push_back(NowNs() - stamp);
          }
          c.received++;
          if (in_flight > 0) in_flight--;
        }
      }
    }
  }

  for (auto& c : clients) {
    *sent_out += c.sent;
    *received_out += c.received;
    (void)c.sock.Send(kMsgGoodbye, "");
    c.sock.Close();
  }
}

SweepPoint RunSweepPoint(const std::string& server_path, int n) {
  SweepPoint pt;
  pt.clients = n;
  const uint64_t interval_ns =
      static_cast<uint64_t>(n) * 1000000000ull / kTotalRatePerSec;

  std::vector<std::vector<uint64_t>> lat(kDrivers);
  std::vector<uint64_t> sent(kDrivers, 0), received(kDrivers, 0);
  const Stats before = Snapshot();
  // Connect/handshake slack before the measured window opens: n blocking
  // handshakes must all land first or the first pings start pre-delayed.
  const uint64_t start =
      NowNs() + 100000000ull + static_cast<uint64_t>(n) * 500000ull;
  const uint64_t stop =
      start + static_cast<uint64_t>(kSweepSecs * 1e9);
  std::vector<std::thread> drivers;
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      DriveClients(server_path, n / kDrivers, interval_ns,
                   start + interval_ns * static_cast<uint64_t>(d) / kDrivers,
                   stop, &lat[static_cast<size_t>(d)],
                   &sent[static_cast<size_t>(d)],
                   &received[static_cast<size_t>(d)]);
    });
  }
  // Sample the thread count mid-sweep, while all n connections are live.
  std::this_thread::sleep_for(std::chrono::duration<double>(kSweepSecs / 2));
  pt.threads = ProcessThreads();
  for (auto& t : drivers) t.join();

  const Stats delta = StatsDelta(before, Snapshot());
  pt.wakeups = delta.counter("server.reactor.wakeup");
  const HistogramSnapshot* batch = delta.histogram("server.reactor.batch_size");
  pt.batch_p50 = batch == nullptr ? 0 : batch->p50();
  pt.batch_max = batch == nullptr ? 0 : batch->max_bound();

  std::vector<uint64_t> all;
  for (int d = 0; d < kDrivers; ++d) {
    all.insert(all.end(), lat[static_cast<size_t>(d)].begin(),
               lat[static_cast<size_t>(d)].end());
    pt.sent += sent[static_cast<size_t>(d)];
    pt.received += received[static_cast<size_t>(d)];
  }
  pt.p50_us = Percentile(all, 0.50);
  pt.p99_us = Percentile(all, 0.99);
  return pt;
}

// ---- E16: overload sweep past capacity (DESIGN.md §12) ----------------------
//
// A dedicated server whose worker pool is the deterministic bottleneck:
// kOverloadWorkers workers, each reply costing kOverloadServiceUs of
// simulated latency, gives a capacity of workers / service_time requests
// per second, independent of the host. The sweep offers 0.5x, 1x, 2x and
// 4x that capacity open-loop with every ping carrying a deadline budget,
// and classifies each reply: kMsgOk is goodput, kDeadlineExceeded /
// kRetryLater are sheds. Graceful degradation means goodput past capacity
// holds near the peak (never collapses), accepted-request p99 stays
// bounded by the deadline (the server sheds stale work instead of serving
// an ever-growing queue), and every request gets exactly one reply.

constexpr int kOverloadWorkers = 4;
constexpr uint32_t kOverloadServiceUs = 1000;   // => capacity 4000 req/s
constexpr uint32_t kOverloadDeadlineMs = 50;
constexpr int kOverloadClients = 64;
constexpr double kOverloadSecs = 2.0;

struct OverloadPoint {
  uint64_t offered = 0;  ///< requests/sec across all clients
  uint64_t sent = 0;
  uint64_t received = 0;
  uint64_t ok = 0;
  uint64_t shed_deadline = 0;
  uint64_t shed_retry = 0;
  double goodput_per_sec = 0;
  double p50_us = 0;  ///< accepted (kMsgOk) replies only
  double p99_us = 0;
};

/// Open-loop driver for the overload sweep: like DriveClients, but every
/// ping carries the deadline budget and replies are classified instead of
/// just counted — only accepted replies contribute latency samples.
void DriveOverload(const std::string& server_path, int count,
                   uint64_t interval_ns, uint64_t start_ns, uint64_t stop_ns,
                   std::vector<uint64_t>* ok_lat_ns, OverloadPoint* agg) {
  std::vector<SimClient> clients(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    auto sock = MsgSocket::Connect(server_path);
    if (!sock.ok()) {
      fprintf(stderr, "connect: %s\n", sock.status().ToString().c_str());
      exit(1);
    }
    SimClient& c = clients[static_cast<size_t>(i)];
    c.sock = std::move(*sock);
    if (!c.sock.Send(kMsgHello, "").ok()) exit(1);
    auto hello = c.sock.Recv();
    if (!hello.ok() || hello->type != kMsgOk) exit(1);
    if (!c.sock.SetNonBlocking(true).ok()) exit(1);
    c.next_send_ns = start_ns + interval_ns * static_cast<uint64_t>(i) /
                                    static_cast<uint64_t>(count);
  }

  std::vector<pollfd> pfds(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    pfds[static_cast<size_t>(i)].fd = clients[static_cast<size_t>(i)].sock.fd();
  }

  uint64_t in_flight = 0;
  for (;;) {
    const uint64_t now = NowNs();
    bool sending = now < stop_ns;
    if (!sending && in_flight == 0) break;

    uint64_t next_event = stop_ns + 1000000000ull;  // drain grace: 1s
    for (auto& c : clients) {
      if (sending) {
        while (c.next_send_ns <= now) {
          std::string payload;
          PutFixed64(&payload, c.next_send_ns);
          MsgSocket::QueueFrame(kMsgPing, ++c.sent, payload, &c.send_cont,
                                kOverloadDeadlineMs);
          in_flight++;
          c.next_send_ns += interval_ns;
        }
        next_event = std::min(next_event, c.next_send_ns);
      }
      if (!c.send_cont.empty()) (void)c.sock.TrySend(&c.send_cont);
    }

    const uint64_t wake = sending ? std::min(next_event, stop_ns) : next_event;
    const uint64_t now2 = NowNs();
    int timeout_ms =
        wake > now2 ? static_cast<int>((wake - now2) / 1000000ull) + 1 : 0;
    for (auto& p : pfds) {
      p.events = POLLIN;
      p.revents = 0;
    }
    int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (!sending && ready == 0) break;  // drain grace expired: lost replies

    if (ready > 0) {
      for (int i = 0; i < count; ++i) {
        if (pfds[static_cast<size_t>(i)].revents == 0) continue;
        SimClient& c = clients[static_cast<size_t>(i)];
        for (;;) {
          Message msg;
          Status s = c.sock.TryRecv(&msg, &c.recv_cont);
          if (s.IsWouldBlock()) break;
          if (!s.ok()) {
            const uint64_t lost = c.sent - c.received;
            in_flight -= std::min(in_flight, lost);
            c.received = c.sent;
            pfds[static_cast<size_t>(i)].fd = -1;
            break;
          }
          if (msg.type == kMsgOk && msg.payload.size() == 8) {
            agg->ok++;
            const uint64_t stamp = DecodeFixed64(msg.payload.data());
            ok_lat_ns->push_back(NowNs() - stamp);
          } else if (msg.type == kMsgError) {
            const Status shed = DecodeStatusReply(msg);
            if (shed.IsDeadlineExceeded()) {
              agg->shed_deadline++;
            } else {
              agg->shed_retry++;
            }
          }
          c.received++;
          if (in_flight > 0) in_flight--;
        }
      }
    }
  }

  for (auto& c : clients) {
    agg->sent += c.sent;
    agg->received += c.received;
    (void)c.sock.Send(kMsgGoodbye, "");
    c.sock.Close();
  }
}

OverloadPoint RunOverloadPoint(const std::string& server_path,
                               uint64_t offered_per_sec) {
  const uint64_t interval_ns = static_cast<uint64_t>(kOverloadClients) *
                               1000000000ull / offered_per_sec;
  std::vector<std::vector<uint64_t>> lat(kDrivers);
  std::vector<OverloadPoint> parts(kDrivers);
  const uint64_t start = NowNs() + 100000000ull;
  const uint64_t stop = start + static_cast<uint64_t>(kOverloadSecs * 1e9);
  std::vector<std::thread> drivers;
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      DriveOverload(server_path, kOverloadClients / kDrivers, interval_ns,
                    start + interval_ns * static_cast<uint64_t>(d) / kDrivers,
                    stop, &lat[static_cast<size_t>(d)],
                    &parts[static_cast<size_t>(d)]);
    });
  }
  for (auto& t : drivers) t.join();

  OverloadPoint pt;
  pt.offered = offered_per_sec;
  std::vector<uint64_t> all;
  for (int d = 0; d < kDrivers; ++d) {
    const OverloadPoint& p = parts[static_cast<size_t>(d)];
    pt.sent += p.sent;
    pt.received += p.received;
    pt.ok += p.ok;
    pt.shed_deadline += p.shed_deadline;
    pt.shed_retry += p.shed_retry;
    all.insert(all.end(), lat[static_cast<size_t>(d)].begin(),
               lat[static_cast<size_t>(d)].end());
  }
  pt.goodput_per_sec = static_cast<double>(pt.ok) / kOverloadSecs;
  pt.p50_us = Percentile(all, 0.50);
  pt.p99_us = Percentile(all, 0.99);
  return pt;
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  TempDir dir("scale");
  ScaleServer srv = StartServer(dir);

  // Simulate a disk: every fsync costs 500us on top of whatever the host
  // filesystem charges. Armed after StartServer so recovery isn't slowed.
  fault::FaultSpec slow_fsync;
  slow_fsync.action = fault::FaultAction::kLatency;
  slow_fsync.latency_us = 500;
  fault::FaultRegistry::Instance().Arm("file.sync", slow_fsync);

  PrintHeader("E14: multi-client commit scaling (§4)",
              "clients   commits   secs    commits/sec   batch-p50   fsyncs");
  for (int n : {1, 2, 4, 8}) {
    std::vector<Client> clients;
    for (int i = 0; i < n; ++i) {
      clients.push_back(MakeClient(srv.path, n, i));
    }
    const Stats before = Snapshot();
    const double secs = TimeIt([&] {
      std::vector<std::thread> threads;
      for (int i = 0; i < n; ++i) {
        threads.emplace_back([&, i] {
          Client& c = clients[static_cast<size_t>(i)];
          for (int k = 0; k < kCommitsPerClient; ++k) {
            if (!c.rc->Begin().ok()) exit(1);
            uint64_t* v = reinterpret_cast<uint64_t*>(c.slot->dp);
            (*v)++;
            if (!c.rc->Commit().ok()) exit(1);
          }
        });
      }
      for (auto& t : threads) t.join();
    });
    const Stats delta = StatsDelta(before, Snapshot());
    const HistogramSnapshot* batch =
        delta.histogram("wal.group_commit.batch_size");
    const double p50 = batch == nullptr ? 0.0 : batch->p50();
    const HistogramSnapshot* fsync = delta.histogram("wal.fsync");
    const uint64_t fsyncs = fsync == nullptr ? 0 : fsync->count;
    const double total = static_cast<double>(n) * kCommitsPerClient;
    printf("%7d   %7.0f   %5.2f   %11.1f   %9.2f   %6llu\n", n, total, secs,
           total / secs, p50, static_cast<unsigned long long>(fsyncs));
  }

  PrintHeader(
      "E15: open-loop latency sweep, epoll server (DESIGN.md §11)",
      "clients      sent  received   p50-us    p99-us  threads  wakeups"
      "  batch-p50  batch-max");
  std::vector<SweepPoint> sweep;
  for (int n : {64, 256, 1024}) {
    SweepPoint pt = RunSweepPoint(srv.path, n);
    printf("%7d  %8llu  %8llu  %7.0f  %8.0f  %7d  %7llu  %9.2f  %9llu\n",
           pt.clients, (unsigned long long)pt.sent,
           (unsigned long long)pt.received, pt.p50_us, pt.p99_us, pt.threads,
           (unsigned long long)pt.wakeups, pt.batch_p50,
           (unsigned long long)pt.batch_max);
    sweep.push_back(pt);
  }
  printf(
      "\nExpectation: one event thread + a fixed worker pool serve every\n"
      "connection, so the thread count stays flat from 64 to 1024 clients\n"
      "while the arrival rate is held constant; reply batches > 1 show the\n"
      "reactor coalescing dispatch per wakeup instead of one syscall round\n"
      "trip per message.\n");

  // E16: overload sweep against a dedicated server whose worker pool is the
  // deterministic bottleneck (capacity = workers / service time), with the
  // overload-protection layer on. The shed counts are the degradation made
  // visible: every refused request got an explicit kDeadlineExceeded or
  // kRetryLater reply rather than silence or a growing queue.
  const uint64_t capacity = static_cast<uint64_t>(kOverloadWorkers) *
                            1000000ull / kOverloadServiceUs;
  ScaleServer ovl;
  {
    Database::Options dbo;
    dbo.dir = dir.Sub("ovl_db");
    dbo.db_id = 1;
    dbo.create = true;
    auto db = Database::Open(dbo);
    if (!db.ok()) exit(1);
    ovl.db = std::move(*db);
    BessServer::Options so;
    so.socket_path = dir.Sub("ovl.sock");
    so.worker_threads = kOverloadWorkers;
    so.simulated_latency_us = kOverloadServiceUs;
    so.max_inflight_global = 64;
    so.idle_timeout_ms = 0;  // the sweep itself controls connection life
    ovl.server = std::make_unique<BessServer>(so);
    (void)ovl.server->AddDatabase(ovl.db.get());
    if (!ovl.server->Start().ok()) exit(1);
    ovl.path = so.socket_path;
  }

  PrintHeader(
      "E16: overload sweep past capacity (DESIGN.md §12)",
      "offered/s      sent  received        ok  shed-dl  shed-rl"
      "  goodput/s   p50-us   p99-us");
  std::vector<OverloadPoint> overload;
  for (uint64_t rate : {capacity / 2, capacity, 2 * capacity, 4 * capacity}) {
    OverloadPoint pt = RunOverloadPoint(ovl.path, rate);
    printf("%9llu  %8llu  %8llu  %8llu  %7llu  %7llu  %9.1f  %7.0f  %7.0f\n",
           (unsigned long long)pt.offered, (unsigned long long)pt.sent,
           (unsigned long long)pt.received, (unsigned long long)pt.ok,
           (unsigned long long)pt.shed_deadline,
           (unsigned long long)pt.shed_retry, pt.goodput_per_sec, pt.p50_us,
           pt.p99_us);
    overload.push_back(pt);
  }
  printf(
      "\nExpectation: goodput climbs to capacity (%llu/s here: %d workers x\n"
      "%uus service) and *stays near it* past saturation instead of\n"
      "collapsing; the surplus is shed with explicit kDeadlineExceeded /\n"
      "kRetryLater replies, so accepted-request p99 stays bounded by the\n"
      "%ums deadline budget and sent == received at every point.\n",
      (unsigned long long)capacity, kOverloadWorkers, kOverloadServiceUs,
      kOverloadDeadlineMs);

  // The persistent gate artifact: flat keys, one per line, awk-parseable.
  {
    std::string out_dir = ".";
    if (const char* env = ::getenv("BESS_METRICS_DIR")) out_dir = env;
    const std::string path = out_dir + "/BENCH_scale.json";
    FILE* f = fopen(path.c_str(), "w");
    if (f == nullptr) {
      fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    fprintf(f, "{\n");
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& pt = sweep[i];
      fprintf(f,
              "  \"open_loop_%d_sent\": %llu,\n"
              "  \"open_loop_%d_received\": %llu,\n"
              "  \"open_loop_%d_p50_us\": %.1f,\n"
              "  \"open_loop_%d_p99_us\": %.1f,\n"
              "  \"open_loop_%d_threads\": %d,\n"
              "  \"open_loop_%d_reactor_wakeups\": %llu,\n"
              "  \"open_loop_%d_reactor_batch_p50\": %.2f,\n"
              "  \"open_loop_%d_reactor_batch_max\": %llu,\n",
              pt.clients, (unsigned long long)pt.sent, pt.clients,
              (unsigned long long)pt.received, pt.clients, pt.p50_us,
              pt.clients, pt.p99_us, pt.clients, pt.threads, pt.clients,
              (unsigned long long)pt.wakeups, pt.clients, pt.batch_p50,
              pt.clients, (unsigned long long)pt.batch_max);
    }
    fprintf(f, "  \"overload_capacity_per_sec\": %llu,\n",
            (unsigned long long)capacity);
    for (size_t i = 0; i < overload.size(); ++i) {
      const OverloadPoint& pt = overload[i];
      fprintf(f,
              "  \"overload_%llu_sent\": %llu,\n"
              "  \"overload_%llu_received\": %llu,\n"
              "  \"overload_%llu_ok\": %llu,\n"
              "  \"overload_%llu_shed_deadline\": %llu,\n"
              "  \"overload_%llu_shed_retry\": %llu,\n"
              "  \"overload_%llu_goodput_per_sec\": %.1f,\n"
              "  \"overload_%llu_p50_us\": %.1f,\n"
              "  \"overload_%llu_p99_us\": %.1f%s\n",
              (unsigned long long)pt.offered, (unsigned long long)pt.sent,
              (unsigned long long)pt.offered, (unsigned long long)pt.received,
              (unsigned long long)pt.offered, (unsigned long long)pt.ok,
              (unsigned long long)pt.offered,
              (unsigned long long)pt.shed_deadline,
              (unsigned long long)pt.offered,
              (unsigned long long)pt.shed_retry,
              (unsigned long long)pt.offered, pt.goodput_per_sec,
              (unsigned long long)pt.offered, pt.p50_us,
              (unsigned long long)pt.offered, pt.p99_us,
              i + 1 == overload.size() ? "" : ",");
    }
    fprintf(f, "}\n");
    fclose(f);
  }

  WriteMetricsSidecar("bench_scale");
  return 0;
}
