// E3 (paper §2.1, refs [3,4]): very-large-object byte-range operations.
//
// BeSS stores a very large object as variable-size extents indexed by a
// positional structure: insert/delete at an arbitrary offset rewrites only
// the extents at the edit point. The baseline is the flat layout every
// simple blob store uses: any insert/delete rewrites the whole tail.
#include "lob/large_object.h"
#include "vm/mem_store.h"
#include "workload.h"

using namespace bessbench;

namespace {

class CountingAllocator : public ExtentAllocator {
 public:
  Result<DiskSegment> AllocExtent(uint16_t, uint32_t pages) override {
    DiskSegment seg;
    seg.first_page = next_;
    seg.page_count = pages;
    next_ += pages;
    return seg;
  }
  Status FreeExtent(uint16_t, PageId) override { return Status::OK(); }

 private:
  PageId next_ = 0;
};

// Flat baseline: the object is one contiguous byte run on "disk"; edits
// rewrite everything from the edit point onward.
class FlatBlob {
 public:
  explicit FlatBlob(InMemoryStore* store) : store_(store) {}

  void Append(const std::string& data) {
    bytes_ += data;
    RewriteFrom(bytes_.size() - data.size());
  }
  void Insert(uint64_t off, const std::string& data) {
    bytes_.insert(off, data);
    RewriteFrom(off);
  }
  void Delete(uint64_t off, uint64_t len) {
    bytes_.erase(off, len);
    RewriteFrom(off);
  }
  std::string Read(uint64_t off, uint64_t len) {
    return bytes_.substr(off, len);
  }
  uint64_t pages_written() const { return pages_written_; }

 private:
  void RewriteFrom(uint64_t off) {
    const uint32_t first = static_cast<uint32_t>(off / kPageSize);
    const uint32_t last =
        static_cast<uint32_t>((bytes_.size() + kPageSize - 1) / kPageSize);
    std::string page(kPageSize, '\0');
    for (uint32_t p = first; p < last; ++p) {
      const size_t start = static_cast<size_t>(p) * kPageSize;
      const size_t n = std::min(kPageSize, bytes_.size() - start);
      memcpy(page.data(), bytes_.data() + start, n);
      (void)store_->WritePages(1, 1, p, 1, page.data());
      ++pages_written_;
    }
  }

  InMemoryStore* store_;
  std::string bytes_;
  uint64_t pages_written_ = 0;
};

std::string Blob(size_t n, uint64_t seed) {
  Random rng(seed);
  std::string s(n, '\0');
  for (auto& c : s) c = static_cast<char>(rng.Next());
  return s;
}

}  // namespace

int main() {
  PrintHeader("E3: byte-range operations on very large objects (§2.1)",
              "object-size   op        bess ms  bess pgs   flat ms  flat pgs");

  for (size_t object_mb : {1, 4, 16}) {
    const size_t size = object_mb << 20;
    InMemoryStore store;
    CountingAllocator alloc;
    LargeObject::Options opts;
    opts.db = 1;
    opts.area = 0;
    auto lobr = LargeObject::Create(&store, &alloc, opts, size);
    if (!lobr.ok()) return 1;
    LargeObject lob = std::move(*lobr);

    InMemoryStore flat_store;
    FlatBlob flat(&flat_store);

    const std::string initial = Blob(size, 1);
    double bess_fill = TimeIt([&] { (void)lob.Append(initial); });
    double flat_fill = TimeIt([&] { flat.Append(initial); });
    printf("%8zuMB   append*   %7.1f  %8llu   %7.1f  %8llu\n", object_mb,
           bess_fill * 1e3, (unsigned long long)store.pages_written(),
           flat_fill * 1e3, (unsigned long long)flat.pages_written());

    // Insert 1 KB in the middle.
    const std::string small = Blob(1024, 2);
    uint64_t b0 = store.pages_written(), f0 = flat.pages_written();
    double bess_ins =
        TimeIt([&] { (void)lob.Insert(size / 2, small); });
    double flat_ins = TimeIt([&] { flat.Insert(size / 2, small); });
    printf("%8zuMB   insert    %7.2f  %8llu   %7.1f  %8llu\n", object_mb,
           bess_ins * 1e3, (unsigned long long)(store.pages_written() - b0),
           flat_ins * 1e3,
           (unsigned long long)(flat.pages_written() - f0));

    // Delete 100 KB near the front.
    b0 = store.pages_written();
    f0 = flat.pages_written();
    double bess_del = TimeIt([&] { (void)lob.Delete(4096, 100 * 1024); });
    double flat_del = TimeIt([&] { flat.Delete(4096, 100 * 1024); });
    printf("%8zuMB   delete    %7.2f  %8llu   %7.1f  %8llu\n", object_mb,
           bess_del * 1e3, (unsigned long long)(store.pages_written() - b0),
           flat_del * 1e3,
           (unsigned long long)(flat.pages_written() - f0));

    // Random 64 KB reads (size changed by the edits above: re-query it).
    auto cur = lob.Size();
    if (!cur.ok()) return 1;
    const uint64_t readable = *cur - 65536;
    Random rng(3);
    double bess_read = TimeIt([&] {
      for (int i = 0; i < 20; ++i) {
        auto r = lob.Read(rng.Uniform(readable), 65536);
        if (!r.ok()) exit(1);
      }
    });
    double flat_read = TimeIt([&] {
      for (int i = 0; i < 20; ++i) {
        (void)flat.Read(rng.Uniform(readable), 65536);
      }
    });
    printf("%8zuMB   read64K   %7.2f         -   %7.2f         -\n",
           object_mb, bess_read / 20 * 1e3, flat_read / 20 * 1e3);
  }
  printf("\n(*) append writes everything once in both designs.\n"
         "Expectation: insert/delete cost is O(extent) for BeSS and O(tail)\n"
         "for the flat layout — the gap grows linearly with object size.\n");
  WriteMetricsSidecar("bench_largeobj");
  return 0;
}
