// E7 (paper §3): distributed commit with two-phase commit, and deadlock
// resolution by timeout.
//
// Measures commit latency as the transaction's page set spans 1..3 servers
// (1 server = one-phase commit; more = 2PC with the client library
// coordinating for its first server), at several simulated link latencies.
// Also demonstrates timeout-based deadlock detection: two clients locking
// two objects in opposite orders; one of them aborts within the timeout.
#include "bess/bess_internal.h"
#include "workload.h"

using namespace bessbench;

namespace {

struct Cluster {
  std::vector<std::unique_ptr<Database>> dbs;
  std::vector<std::unique_ptr<BessServer>> servers;
  std::vector<std::string> paths;
};

Cluster StartCluster(const TempDir& dir, int n) {
  Cluster c;
  for (int i = 0; i < n; ++i) {
    Database::Options o;
    o.dir = dir.Sub("db" + std::to_string(i + 1));
    o.db_id = static_cast<uint16_t>(i + 1);
    o.create = true;
    auto db = Database::Open(o);
    if (!db.ok()) exit(1);
    BessServer::Options so;
    so.socket_path = dir.Sub("srv" + std::to_string(i + 1) + ".sock");
    auto server = std::make_unique<BessServer>(so);
    (void)server->AddDatabase(db->get());
    if (!server->Start().ok()) exit(1);
    c.dbs.push_back(std::move(*db));
    c.servers.push_back(std::move(server));
    c.paths.push_back(so.socket_path);
  }
  return c;
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  TempDir dir("twophase");
  Cluster cluster = StartCluster(dir, 3);

  PrintHeader("E7: distributed commit latency (§3)",
              "servers   link-latency   ms/commit   protocol");
  for (uint32_t latency_us : {0u, 200u, 1000u}) {
    for (int nservers = 1; nservers <= 3; ++nservers) {
      RemoteClient::Options o;
      o.server_path = cluster.paths[0];
      o.db_id = 1;
      o.simulated_latency_us = latency_us;
      auto client = RemoteClient::Connect(o);
      if (!client.ok()) return 1;
      for (int s = 1; s < nservers; ++s) {
        (void)(*client)->AddServer(cluster.paths[static_cast<size_t>(s)],
                                   {static_cast<uint16_t>(s + 1)});
      }
      // One object per participating database. The primary connection can
      // create objects; for the others we write raw committed pages via the
      // same client's mapper by installing segments granted per server.
      // Simpler and equivalent: create one client per database once, then
      // do the multi-db write through page sets — here we use the fact
      // that the client's Commit() partitions its dirty pages by owner.
      std::vector<std::unique_ptr<RemoteClient>> writers;
      std::vector<Slot*> slots;
      for (int s = 0; s < nservers; ++s) {
        RemoteClient::Options wo;
        wo.server_path = cluster.paths[static_cast<size_t>(s)];
        wo.db_id = static_cast<uint16_t>(s + 1);
        wo.simulated_latency_us = latency_us;
        auto w = RemoteClient::Connect(wo);
        if (!w.ok()) return 1;
        if (!(*w)->Begin().ok()) return 1;
        auto f = (*w)->CreateFile("f" + std::to_string(latency_us) + "_" +
                                  std::to_string(nservers) + "_" +
                                  std::to_string(s));
        if (!f.ok()) return 1;
        uint64_t v = 0;
        auto slot = (*w)->CreateObject(*f, kRawBytesType, 8, &v);
        if (!slot.ok()) return 1;
        if (!(*w)->Commit().ok()) return 1;
        slots.push_back(*slot);
        writers.push_back(std::move(*w));
      }

      const int kCommits = std::getenv("B2PC_N") ? atoi(std::getenv("B2PC_N")) : 20;
      double secs = TimeIt([&] {
        for (int i = 0; i < kCommits; ++i) {
          // Update the object at every writer, then commit each; for the
          // multi-server row we measure the 2PC done by writers[0] when it
          // owns pages of several databases. Since each writer talks to one
          // server, emulate the distributed transaction by preparing all
          // and committing all (what RemoteClient::Commit does when its
          // page set spans peers).
          for (int s = 0; s < nservers; ++s) {
            (void)writers[static_cast<size_t>(s)]->Begin();
            uint64_t* v = reinterpret_cast<uint64_t*>(
                slots[static_cast<size_t>(s)]->dp);
            (*v)++;
          }
          for (int s = 0; s < nservers; ++s) {
            if (!writers[static_cast<size_t>(s)]->Commit().ok()) exit(1);
          }
        }
      });
      printf("%7d   %9uus   %9.2f   %s\n", nservers, latency_us,
             secs / kCommits * 1e3, nservers == 1 ? "1PC" : "1PC x n");
    }
  }

  // --- A true 2PC commit through one client owning pages on two servers. -----
  PrintHeader("E7b: one transaction spanning two servers (true 2PC)",
              "case                         ms/commit");
  {
    RemoteClient::Options o;
    o.server_path = cluster.paths[0];
    o.db_id = 1;
    auto client = RemoteClient::Connect(o);
    if (!client.ok()) return 1;
    (void)(*client)->AddServer(cluster.paths[1], {2});

    if (!(*client)->Begin().ok()) return 1;
    auto f1 = (*client)->CreateFile("span");
    if (!f1.ok()) return 1;
    uint64_t v = 0;
    auto s1 = (*client)->CreateObject(*f1, kRawBytesType, 8, &v);
    if (!s1.ok()) return 1;
    if (!(*client)->Commit().ok()) return 1;

    // A db2 object accessed through the same client (its mapper will hold
    // dirty pages of both databases at commit time).
    RemoteClient::Options o2;
    o2.server_path = cluster.paths[1];
    o2.db_id = 2;
    auto seeder = RemoteClient::Connect(o2);
    if (!seeder.ok()) return 1;
    if (!(*seeder)->Begin().ok()) return 1;
    auto f2 = (*seeder)->CreateFile("span2");
    auto s2 = (*seeder)->CreateObject(*f2, kRawBytesType, 8, &v);
    if (!f2.ok() || !s2.ok()) return 1;
    auto oid2 = (*seeder)->OidOf(*s2);
    if (!(*seeder)->Commit().ok()) return 1;
    if (!oid2.ok()) return 1;

    auto remote2 = (*client)->Deref(*oid2);
    if (!remote2.ok()) {
      fprintf(stderr, "deref: %s\n", remote2.status().ToString().c_str());
      return 1;
    }
    const int kCommits = 20;
    double secs = TimeIt([&] {
      for (int i = 0; i < kCommits; ++i) {
        (void)(*client)->Begin();
        (*reinterpret_cast<uint64_t*>((*s1)->dp))++;
        (*reinterpret_cast<uint64_t*>((*remote2)->dp))++;
        Status s = (*client)->Commit();
        if (!s.ok()) {
          fprintf(stderr, "2pc commit: %s\n", s.ToString().c_str());
          exit(1);
        }
      }
    });
    printf("2 servers, prepare+commit    %9.2f\n", secs / kCommits * 1e3);
  }

  // --- Deadlock resolution by timeout (§3). -----------------------------------
  PrintHeader("E7c: deadlock detection by timeout (§3)",
              "outcome");
  {
    RemoteClient::Options o;
    o.server_path = cluster.paths[0];
    o.db_id = 1;
    o.lock_timeout_ms = 400;
    auto a = RemoteClient::Connect(o);
    auto b = RemoteClient::Connect(o);
    if (!a.ok() || !b.ok()) return 1;
    if (!(*a)->Begin().ok()) return 1;
    auto f = (*a)->CreateFile("dead");
    uint64_t v = 0;
    auto x = (*a)->CreateObject(*f, kRawBytesType, 8, &v);
    if (!(*a)->Commit().ok()) return 1;
    if (!(*b)->Begin().ok()) return 1;
    auto fy = (*b)->CreateFile("dead2");
    auto y = (*b)->CreateObject(*fy, kRawBytesType, 8, &v);
    if (!(*b)->Commit().ok()) return 1;
    auto yoid = (*b)->OidOf(*y);
    auto xoid = (*a)->OidOf(*x);
    if (!yoid.ok() || !xoid.ok()) return 1;

    (void)(*a)->Begin();
    (void)(*b)->Begin();
    (*reinterpret_cast<uint64_t*>((*x)->dp))++;  // A locks X
    auto yb = (*b)->Deref(*yoid);
    if (!yb.ok()) return 1;
    (*reinterpret_cast<uint64_t*>((*yb)->dp))++;  // B locks Y

    // Cross: A wants Y, B wants X — a cycle only timeouts can break.
    std::thread tb([&] {
      auto xb = (*b)->Deref(*xoid);
      if (xb.ok()) {
        (*reinterpret_cast<uint64_t*>((*xb)->dp))++;
      }
      (void)(*b)->Commit();
    });
    auto ya = (*a)->Deref(*yoid);
    if (ya.ok()) {
      (*reinterpret_cast<uint64_t*>((*ya)->dp))++;
    }
    Status sa = (*a)->Commit();
    tb.join();
    printf("cycle resolved: at least one transaction aborted (A commit: %s)\n",
           sa.ToString().c_str());
  }

  for (auto& s : cluster.servers) s->Stop();
  printf("\nExpectation: commit latency grows with participants and link\n"
         "latency (two phases = two round trips per participant); lock\n"
         "cycles across clients resolve within the timeout (§3).\n");
  WriteMetricsSidecar("bench_commit2pc");
  return 0;
}
