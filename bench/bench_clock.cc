// E10 (paper §4.2): replacement policy — BeSS's protection-state clock vs
// the textbook clock and LRU.
//
// Under memory mapping, a function-call cache only learns about accesses
// that arrive through Fix(); everything the application does through raw
// pointers is invisible. The trace below makes that distinction matter: the
// Fix stream is a cold sequential sweep (no recency signal at all), while a
// small hot set is hammered through raw pointers between fixes. A policy
// that can observe the touches keeps the hot set resident; one that cannot
// evicts it during every sweep and pays a refetch on its next use.
//
// Each cache runs against its own store; the metric is store fetches for
// the hot set (lower = the policy protected the working set).
#include "baseline/replacement.h"
#include "cache/private_pool.h"
#include "vm/mem_store.h"
#include "bess/bess_internal.h"
#include "workload.h"

using namespace bessbench;

namespace {

constexpr uint32_t kDbPages = 256;
constexpr uint32_t kHotPages = 8;

void Seed(InMemoryStore* store) {
  std::string page(kPageSize, 'x');
  for (uint32_t p = 0; p < kDbPages; ++p) {
    (void)store->WritePages(1, 0, p, 1, page.data());
  }
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  PrintHeader(
      "E10: replacement under memory mapping (§4.2)",
      "cache-frames   hot-refetches: bess-clock   classic-clock   lru");

  TempDir dir("clock");
  for (uint32_t frames : {16u, 32u, 64u}) {
    const int kSweeps = 20;

    // --- BeSS protection-state clock. -----------------------------------------
    InMemoryStore bess_store;
    Seed(&bess_store);
    auto pool = PrivateBufferPool::Open(dir.Sub("p" + std::to_string(frames)),
                                        frames, &bess_store);
    if (!pool.ok()) return 1;
    std::vector<char*> hot_ptrs(kHotPages);
    uint64_t bess_hot_fetches = 0;
    for (uint32_t h = 0; h < kHotPages; ++h) {
      auto addr = (*pool)->Fix(PageAddr{1, 0, h}, false);
      if (!addr.ok()) return 1;
      hot_ptrs[h] = static_cast<char*>(*addr);
      ++bess_hot_fetches;
    }
    for (int sweep = 0; sweep < kSweeps; ++sweep) {
      for (uint32_t p = kHotPages; p < kDbPages; ++p) {
        // Hot pages touched through raw pointers — the pool sees faults on
        // protected frames and keeps granting second chances.
        if (p % 4 == 0) {
          for (uint32_t h = 0; h < kHotPages; ++h) {
            volatile char c = *hot_ptrs[h];
            (void)c;
          }
        }
        auto addr = (*pool)->Fix(PageAddr{1, 0, p}, false);
        if (!addr.ok()) return 1;
      }
      // End of "transaction": use the hot set through Fix once and count
      // whether it had to be refetched.
      const uint64_t misses_before = (*pool)->stats().misses;
      for (uint32_t h = 0; h < kHotPages; ++h) {
        auto addr = (*pool)->Fix(PageAddr{1, 0, h}, false);
        if (!addr.ok()) return 1;
        hot_ptrs[h] = static_cast<char*>(*addr);
      }
      bess_hot_fetches += (*pool)->stats().misses - misses_before;
    }

    // --- Baselines: raw touches never reach them. ------------------------------
    auto run_baseline = [&](PageCacheBase* cache) -> uint64_t {
      uint64_t hot_fetches = 0;
      const uint64_t m0 = cache->stats().misses;
      for (uint32_t h = 0; h < kHotPages; ++h) {
        if (!cache->Fix(PageAddr{1, 0, h}, false).ok()) exit(1);
      }
      hot_fetches += cache->stats().misses - m0;
      for (int sweep = 0; sweep < kSweeps; ++sweep) {
        for (uint32_t p = kHotPages; p < kDbPages; ++p) {
          // (the raw hot touches happen here in reality — invisible)
          if (!cache->Fix(PageAddr{1, 0, p}, false).ok()) exit(1);
        }
        const uint64_t m1 = cache->stats().misses;
        for (uint32_t h = 0; h < kHotPages; ++h) {
          if (!cache->Fix(PageAddr{1, 0, h}, false).ok()) exit(1);
        }
        hot_fetches += cache->stats().misses - m1;
      }
      return hot_fetches;
    };

    InMemoryStore classic_store;
    Seed(&classic_store);
    ClassicClockPool classic(frames, &classic_store);
    const uint64_t classic_hot = run_baseline(&classic);

    InMemoryStore lru_store;
    Seed(&lru_store);
    LruPool lru(frames, &lru_store);
    const uint64_t lru_hot = run_baseline(&lru);

    printf("%12u   %25llu   %13llu   %3llu\n", frames,
           (unsigned long long)bess_hot_fetches,
           (unsigned long long)classic_hot, (unsigned long long)lru_hot);
  }
  printf("\nExpectation: the protection-state clock observes the raw\n"
         "touches (faults on protected frames) and keeps the hot set\n"
         "resident through every sweep; the classic designs last saw the\n"
         "hot pages one sweep ago and evict them — a refetch per page per\n"
         "sweep. This is the paper's reason for deriving recency from the\n"
         "frame protection state (§4.2).\n");
  WriteMetricsSidecar("bench_clock");
  return 0;
}
