// E1 (paper §2.1, §5): pointer dereference cost.
//
// BeSS: references are swizzled virtual-memory pointers to object headers —
// a dereference is two pointer chases (slot, then DP). EOS baseline: every
// dereference is an OID hash-table lookup. Software swizzling baseline:
// an eager conversion pass, then raw pointer chases.
//
// Expectation (paper): BeSS ~ software-swizzled speed on hot traversals
// without paying the eager conversion on everything fetched; OID lookup is
// several times slower per hop.
#include "baseline/oid_store.h"
#include "workload.h"

using namespace bessbench;

int main() {
  TempDir dir("deref");
  Database::Options o;
  o.dir = dir.path();
  o.create = true;
  o.outbound_capacity = 480;  // dense random graph references many segments
  auto dbr = Database::Open(o);
  if (!dbr.ok()) {
    fprintf(stderr, "open: %s\n", dbr.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(*dbr);
  auto part_type = db->RegisterType(PartType());
  auto file = db->CreateFile("parts");
  if (!part_type.ok() || !file.ok()) return 1;

  const int kParts = 20000;
  const int kHops = 2000000;
  GraphOptions gopt;
  gopt.parts = kParts;

  auto txn = db->Begin();
  auto parts = BuildGraph(db.get(), *file, *part_type, gopt);
  if (!parts.ok()) {
    fprintf(stderr, "graph: %s\n", parts.status().ToString().c_str());
    return 1;
  }
  Status commit = db->Commit(*txn);
  if (!commit.ok()) {
    fprintf(stderr, "commit: %s\n", commit.ToString().c_str());
    return 1;
  }

  PrintHeader("E1: dereference cost (hot traversal)",
              "scheme                     ns/hop   relative");

  // --- BeSS: swizzled header pointers (graph already mapped). -----------------
  volatile uint64_t sink = 0;
  double bess_s = TimeIt([&] { sink += Traverse((*parts)[0], kHops); });
  const double bess_ns = bess_s / kHops * 1e9;

  // --- EOS baseline: OID hash lookup per hop. ---------------------------------
  OidStore oid_store;
  std::vector<OidStore::ObjectId> ids(kParts);
  for (int i = 0; i < kParts; ++i) ids[i] = oid_store.Create(sizeof(Part));
  {
    Random rng(gopt.seed);
    for (int i = 0; i < kParts; ++i) {
      Part* p = static_cast<Part*>(oid_store.Deref(ids[i]));
      p->id = static_cast<uint64_t>(i);
      for (int e = 0; e < 3; ++e) {
        int target;
        if (i > 0 && rng.Bernoulli(gopt.locality)) {
          target = static_cast<int>(rng.Uniform(std::min(i, 200))) +
                   std::max(0, i - 200);
        } else {
          target = static_cast<int>(rng.Uniform(kParts));
        }
        p->to[e] = ids[static_cast<size_t>(target)];
      }
    }
  }
  double oid_s = TimeIt([&] {
    Random rng(7);
    uint64_t sum = 0;
    OidStore::ObjectId cur = ids[0];
    for (int i = 0; i < kHops; ++i) {
      const Part* p = static_cast<const Part*>(oid_store.Deref(cur));
      sum += p->id;
      cur = p->to[rng.Next() % 3];  // deref does the hash lookup
      if (cur == 0) cur = ids[0];
    }
    sink += sum;
  });
  const double oid_ns = oid_s / kHops * 1e9;

  // --- Software swizzling: eager conversion, then raw chase. ------------------
  SwizzlingStore sw;
  std::vector<SwizzlingStore::ObjectId> sids(kParts);
  for (int i = 0; i < kParts; ++i) sids[i] = sw.Create(sizeof(Part));
  {
    Random rng(gopt.seed);
    for (int i = 0; i < kParts; ++i) {
      Part* p = static_cast<Part*>(sw.Raw(sids[i]));
      p->id = static_cast<uint64_t>(i);
      for (int e = 0; e < 3; ++e) {
        int target;
        if (i > 0 && rng.Bernoulli(gopt.locality)) {
          target = static_cast<int>(rng.Uniform(std::min(i, 200))) +
                   std::max(0, i - 200);
        } else {
          target = static_cast<int>(rng.Uniform(kParts));
        }
        p->to[e] = SwizzlingStore::PackRef(sids[static_cast<size_t>(target)]);
      }
    }
  }
  double convert_s =
      TimeIt([&] { sink += sw.SwizzleAll({0, 8, 16}); });
  double sw_s = TimeIt([&] {
    Random rng(7);
    uint64_t sum = 0;
    const Part* p = static_cast<const Part*>(sw.Raw(sids[0]));
    for (int i = 0; i < kHops; ++i) {
      sum += p->id;
      uint64_t next = p->to[rng.Next() % 3];
      if (next == 0) next = reinterpret_cast<uint64_t>(sw.Raw(sids[0]));
      p = reinterpret_cast<const Part*>(next);
    }
    sink += sum;
  });
  const double sw_ns = sw_s / kHops * 1e9;

  printf("bess (header pointers)    %7.2f   %5.2fx\n", bess_ns, 1.0);
  printf("oid hash lookup (EOS)     %7.2f   %5.2fx\n", oid_ns,
         oid_ns / bess_ns);
  printf("software swizzled chase   %7.2f   %5.2fx  (+%.1f ms one-time "
         "conversion of %d objects)\n",
         sw_ns, sw_ns / bess_ns, convert_s * 1e3, kParts);

  // --- Cold traversal: faults included (three-wave cost). ---------------------
  PrintHeader("E1b: cold traversal (fault-in included)",
              "scheme                     total ms   slotted/data faults");
  (void)db->mapper()->Reset();
  auto s0 = db->mapper()->stats();
  auto root = db->GetRoot("bench_root");
  if (!root.ok()) return 1;
  double cold_s = TimeIt([&] { sink += Traverse(*root, kHops / 10); });
  auto s1 = db->mapper()->stats();
  printf("bess cold                 %8.2f   %llu / %llu\n", cold_s * 1e3,
         static_cast<unsigned long long>(s1.slotted_faults - s0.slotted_faults),
         static_cast<unsigned long long>(s1.data_faults - s0.data_faults));
  double warm_again = TimeIt([&] { sink += Traverse(*root, kHops / 10); });
  printf("bess warm (same hops)     %8.2f   0 / 0\n", warm_again * 1e3);

  // A short update transaction: pages are clean after the earlier commit,
  // so the first store per page goes through hardware write detection
  // (§2.3) — the sidecar's vm.fault.detect series comes from here.
  auto utxn = db->Begin();
  if (utxn.ok()) {
    Slot* cur = *root;
    for (int i = 0; i < 200 && cur != nullptr; ++i) {
      Part* p = reinterpret_cast<Part*>(cur->dp);
      p->payload[0]++;
      cur = reinterpret_cast<Slot*>(p->to[0]);
    }
    (void)db->Commit(*utxn);
  }

  (void)sink;
  WriteMetricsSidecar("bench_deref");
  return 0;
}
