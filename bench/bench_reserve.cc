// E2 (paper §2.1): address-space reservation — lazy (BeSS) vs greedy
// (ObjectStore/Texas/QuickStore-style, refs [19, 30, 34]).
//
// "Memory address space is reserved in a less greedy fashion ... virtual
// address space for data segments is reserved only when the corresponding
// slotted segments are actually accessed."
//
// We build a wide graph, then touch only a fraction of it and report how
// much address space each policy reserved, how much memory was committed,
// and how many segments were fetched.
#include "workload.h"

using namespace bessbench;

namespace {

struct RunResult {
  uint64_t reserved_mb;
  uint64_t committed_mb;
  uint64_t slotted_faults;
  double seconds;
};

RunResult Run(bool greedy, const std::string& dir, int touch_hops) {
  Database::Options o;
  o.dir = dir;
  o.create = false;
  o.mapper.greedy = greedy;
  auto db = Database::Open(o);
  if (!db.ok()) {
    fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    exit(1);
  }
  auto root = (*db)->GetRoot("bench_root");
  if (!root.ok()) exit(1);
  volatile uint64_t sink = 0;
  const double secs = TimeIt([&] { sink += Traverse(*root, touch_hops); });
  (void)sink;
  auto stats = (*db)->mapper()->stats();
  return RunResult{stats.reserved_bytes >> 20, stats.committed_bytes >> 20,
                   stats.slotted_faults, secs};
}

}  // namespace

int main() {
  TempDir dir("reserve");
  // Build once: a large, low-locality graph (many segments).
  {
    Database::Options o;
    o.dir = dir.path();
    o.create = true;
    o.outbound_capacity = 480;
    auto db = Database::Open(o);
    if (!db.ok()) return 1;
    auto part_type = (*db)->RegisterType(PartType());
    auto file = (*db)->CreateFile("parts");
    GraphOptions gopt;
    gopt.parts = 60000;
    gopt.locality = 0.3;  // traversals that touch everything reach far
    auto txn = (*db)->Begin();
    auto parts = BuildGraph(db->get(), *file, *part_type, gopt);
    if (!parts.ok()) {
      fprintf(stderr, "graph: %s\n", parts.status().ToString().c_str());
      return 1;
    }
    Status s = (*db)->Commit(*txn);
    if (!s.ok()) {
      fprintf(stderr, "commit: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  PrintHeader(
      "E2: address reservation, lazy (BeSS) vs greedy [19,30,34]",
      "policy   touched-hops   reservedMB   committedMB   slotted-fetches   "
      "ms");
  for (int hops : {100, 1000, 10000, 100000}) {
    RunResult lazy = Run(false, dir.path(), hops);
    RunResult greedy = Run(true, dir.path(), hops);
    printf("lazy     %12d   %10llu   %11llu   %15llu   %6.1f\n", hops,
           (unsigned long long)lazy.reserved_mb,
           (unsigned long long)lazy.committed_mb,
           (unsigned long long)lazy.slotted_faults, lazy.seconds * 1e3);
    printf("greedy   %12d   %10llu   %11llu   %15llu   %6.1f\n", hops,
           (unsigned long long)greedy.reserved_mb,
           (unsigned long long)greedy.committed_mb,
           (unsigned long long)greedy.slotted_faults, greedy.seconds * 1e3);
  }
  printf("\nExpectation: for sparse access (few hops) the greedy policy\n"
         "reserves and fetches far more than it uses; the gap closes only\n"
         "when the traversal really touches the whole database.\n");
  WriteMetricsSidecar("bench_reserve");
  return 0;
}
