// E11 (paper §2, ref [3]): disk allocation with the binary buddy system.
//
// Compares the buddy allocator against a first-fit free-list baseline on
// allocation/free throughput and external fragmentation under churn.
#include <algorithm>
#include <list>

#include "storage/buddy.h"
#include "workload.h"

using namespace bessbench;

namespace {

// First-fit baseline over a sorted free list (no coalescing by address
// would be unfair; we coalesce adjacent blocks like a classic heap).
class FirstFit {
 public:
  explicit FirstFit(uint32_t pages) { free_.push_back({0, pages}); }

  Result<uint32_t> Allocate(uint32_t n) {
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if (it->len >= n) {
        const uint32_t at = it->start;
        it->start += n;
        it->len -= n;
        if (it->len == 0) free_.erase(it);
        allocated_[at] = n;
        return at;
      }
    }
    return Status::NoSpace("first-fit: no block");
  }

  Status Free(uint32_t at) {
    auto it = allocated_.find(at);
    if (it == allocated_.end()) return Status::InvalidArgument("bad free");
    Block b{at, it->second};
    allocated_.erase(it);
    auto pos = std::find_if(free_.begin(), free_.end(),
                            [&](const Block& f) { return f.start > at; });
    pos = free_.insert(pos, b);
    // Coalesce with neighbours.
    if (pos != free_.begin()) {
      auto prev = std::prev(pos);
      if (prev->start + prev->len == pos->start) {
        prev->len += pos->len;
        free_.erase(pos);
        pos = prev;
      }
    }
    auto next = std::next(pos);
    if (next != free_.end() && pos->start + pos->len == next->start) {
      pos->len += next->len;
      free_.erase(next);
    }
    return Status::OK();
  }

  uint32_t LargestFree() const {
    uint32_t best = 0;
    for (const Block& b : free_) best = std::max(best, b.len);
    return best;
  }
  uint64_t FreePages() const {
    uint64_t total = 0;
    for (const Block& b : free_) total += b.len;
    return total;
  }

 private:
  struct Block {
    uint32_t start, len;
  };
  std::list<Block> free_;
  std::unordered_map<uint32_t, uint32_t> allocated_;
};

}  // namespace

int main() {
  const uint32_t kPages = 4096;
  const int kOps = 200000;

  PrintHeader("E11: disk segment allocation (§2, ref [3])",
              "allocator   ops/sec      largest-free   frag   internal-waste");

  for (int trial = 0; trial < 2; ++trial) {
    const bool use_buddy = trial == 0;
    Random rng(17);
    BuddyAllocator buddy(kPages);
    FirstFit ff(kPages);
    std::vector<std::pair<uint32_t, uint32_t>> live;  // (addr, requested)
    uint64_t requested_total = 0, granted_total = 0;
    int ops = 0;

    double secs = TimeIt([&] {
      for (int i = 0; i < kOps; ++i) {
        if (live.empty() || rng.Bernoulli(0.55)) {
          const uint32_t want = static_cast<uint32_t>(rng.Range(1, 33));
          if (use_buddy) {
            auto r = buddy.Allocate(want);
            if (r.ok()) {
              live.push_back({*r, want});
              requested_total += want;
              granted_total += buddy.BlockSize(*r);
            }
          } else {
            auto r = ff.Allocate(want);
            if (r.ok()) {
              live.push_back({*r, want});
              requested_total += want;
              granted_total += want;
            }
          }
          ++ops;
        } else {
          const size_t pick = rng.Uniform(live.size());
          if (use_buddy) (void)buddy.Free(live[pick].first);
          else (void)ff.Free(live[pick].first);
          live[pick] = live.back();
          live.pop_back();
          ++ops;
        }
      }
    });

    const double frag =
        use_buddy
            ? buddy.Fragmentation()
            : (ff.FreePages() == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(ff.LargestFree()) /
                             static_cast<double>(ff.FreePages()));
    const double waste =
        granted_total == 0
            ? 0.0
            : 1.0 - static_cast<double>(requested_total) /
                      static_cast<double>(granted_total);
    printf("%-10s  %9.0f   %12u   %4.2f   %6.1f%%\n",
           use_buddy ? "buddy" : "first-fit", ops / secs,
           use_buddy ? buddy.LargestFreeBlock() : ff.LargestFree(), frag,
           waste * 100.0);
  }
  printf("\nExpectation: buddy trades internal waste (power-of-two rounding)\n"
         "for bounded external fragmentation and O(log n) coalescing; the\n"
         "first-fit baseline fragments its free space under churn.\n");
  WriteMetricsSidecar("bench_buddy");
  return 0;
}
