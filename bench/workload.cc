#include "workload.h"

#include <cstdlib>

namespace bessbench {

Result<std::vector<Slot*>> BuildGraph(Database* db, uint16_t file_id,
                                      TypeIdx part_type,
                                      const GraphOptions& options) {
  Random rng(options.seed);
  std::vector<Slot*> parts;
  parts.reserve(static_cast<size_t>(options.parts));

  for (int i = 0; i < options.parts; ++i) {
    Part init{};
    init.id = static_cast<uint64_t>(i);
    BESS_ASSIGN_OR_RETURN(
        Slot * slot, db->CreateObject(file_id, part_type, sizeof(Part), &init));
    parts.push_back(slot);
  }
  // Wire connections: mostly local (recent parts), sometimes anywhere.
  for (int i = 0; i < options.parts; ++i) {
    Part* p = reinterpret_cast<Part*>(parts[static_cast<size_t>(i)]->dp);
    for (int e = 0; e < 3; ++e) {
      int target;
      if (i > 0 && rng.Bernoulli(options.locality)) {
        target = static_cast<int>(rng.Uniform(std::min(i, 200))) +
                 std::max(0, i - 200);
      } else {
        target = static_cast<int>(rng.Uniform(options.parts));
      }
      p->to[e] =
          reinterpret_cast<uint64_t>(parts[static_cast<size_t>(target)]);
    }
  }
  BESS_RETURN_IF_ERROR(db->SetRoot("bench_root", parts[0]));
  return parts;
}

uint64_t Traverse(Slot* root, int hops, uint64_t seed) {
  Random rng(seed);
  uint64_t sum = 0;
  Slot* cur = root;
  for (int i = 0; i < hops; ++i) {
    const Part* p = reinterpret_cast<const Part*>(cur->dp);
    sum += p->id;
    uint64_t next = 0;
    for (int e = 0; e < 3 && next == 0; ++e) {
      next = p->to[static_cast<size_t>((rng.Next() + e) % 3)];
    }
    if (next == 0) break;
    cur = reinterpret_cast<Slot*>(next);
  }
  return sum;
}

void WriteMetricsSidecar(const std::string& bench_name) {
  std::string dir = ".";
  if (const char* env = ::getenv("BESS_METRICS_DIR")) dir = env;
  const std::string path = dir + "/" + bench_name + ".metrics.json";
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "metrics sidecar: cannot open %s\n", path.c_str());
    return;
  }
  const std::string json = Snapshot().ToJson();
  fwrite(json.data(), 1, json.size(), f);
  fputc('\n', f);
  fclose(f);
  printf("[metrics sidecar: %s]\n", path.c_str());
}

}  // namespace bessbench
