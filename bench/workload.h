// Shared workload machinery for the BeSS benchmark harness.
//
// The paper has no quantitative tables; every bench regenerates the
// behavioural claim behind one figure or textual comparison (see DESIGN.md
// §2). The workload here is an OO7-flavoured part graph: fixed-size parts
// with three outgoing connections, built over many object segments, with
// optional hot/cold skew — the traversal/update pattern the era's
// storage-manager papers stressed.
#ifndef BESS_BENCH_WORKLOAD_H_
#define BESS_BENCH_WORKLOAD_H_

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "bess/bess.h"
#include "util/random.h"

namespace bessbench {

using namespace bess;  // NOLINT: bench convenience

/// A CAD-ish part: three connections + identity + payload (64 bytes).
struct Part {
  uint64_t to[3];  // reference fields at offsets 0, 8, 16
  uint64_t id;
  uint64_t payload[4];
};
static_assert(sizeof(Part) == 64);

inline TypeDescriptor PartType() {
  TypeDescriptor t;
  t.name = "bench.Part";
  t.fixed_size = sizeof(Part);
  t.ref_offsets = {0, 8, 16};
  return t;
}

struct GraphOptions {
  int parts = 2000;
  uint64_t seed = 42;
  /// Fraction of connections pointing at recently created parts (locality
  /// knob; low values force many segments into a traversal's working set).
  double locality = 0.7;
};

/// Builds a random part graph in `file_id`; returns the slots in creation
/// order. Part 0 is named "bench_root".
Result<std::vector<Slot*>> BuildGraph(Database* db, uint16_t file_id,
                                      TypeIdx part_type,
                                      const GraphOptions& options);

/// Pointer-chase traversal starting at `root`: follows `hops` connections
/// picking edges pseudo-randomly; returns a checksum so the chase cannot be
/// optimized away.
uint64_t Traverse(Slot* root, int hops, uint64_t seed = 7);

/// A scratch directory under /tmp, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("bess_bench_" + tag + "_" + std::to_string(::getpid())))
                .string();
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }
  std::string Sub(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

/// Wall-clock timing helper: returns seconds elapsed running fn().
inline double TimeIt(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Section header so every bench emits the same, greppable format.
inline void PrintHeader(const std::string& title, const std::string& columns) {
  printf("\n=== %s ===\n%s\n", title.c_str(), columns.c_str());
  fflush(stdout);
}

/// Writes the process-wide metrics snapshot as `<bench>.metrics.json` next
/// to the binary (or into $BESS_METRICS_DIR). Call at the end of main();
/// forked workers sharing Registry::Default() aggregate into this file.
void WriteMetricsSidecar(const std::string& bench_name);

}  // namespace bessbench

#endif  // BESS_BENCH_WORKLOAD_H_
