// E18: secondary-index point lookup and push-mode range scan (DESIGN.md §14).
//
// The paper's configurable manager pairs the object store with associative
// access paths; this bench regenerates the two claims the B+-tree makes over
// the frame core it shares with every other subsystem:
//
//   point   — an indexed Get descends O(height) pages instead of grinding the
//             whole keyspace; at 10k objects the lookup must beat the
//             scan-everything baseline by >= 10x.
//   range   — BTreeIndex::Scan collects the leaf list under the latch and
//             streams it through FrameTable::ScanKeys (the PR-9 push
//             pipeline), so an index range scan with a cold cache must stay
//             within 1.5x of raw ScanRange page throughput over the same
//             frame-table configuration — the tree layering (leaf collection,
//             entry decode, per-entry callback) may not forfeit the pipeline.
//
// Device latency is injected (kLatency on "file.readat") for the cold-scan
// phases so the ratio is deterministic on any build box, exactly as in
// bench_scan. The build phase also audits the steal/no-force write side: the
// bgwriter (with PR-10 write coalescing, AioStats::write_runs) keeps dirty
// index frames draining so the demand path never pays a sync evict
// write-back.
//
// Writes BENCH_index.json (flat keys, one per line) for
// scripts/check_bench_index.sh:
//   point lookups/s >= 10x the full-scan baseline,
//   index cold range scan within 1.5x raw ScanRange throughput,
//   cache.evict.sync_writeback == 0 across every phase,
//   tree Validate clean and the scan delivered exactly `objects` entries.
#include <cstdio>
#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cache/async_page_io.h"
#include "cache/frame_table.h"
#include "index/index.h"
#include "os/async_io.h"
#include "os/fault_injection.h"
#include "storage/area_store.h"
#include "storage/storage_area.h"
#include "util/random.h"
#include "workload.h"

using namespace bessbench;

namespace {

constexpr uint32_t kObjects = 10000;
constexpr uint32_t kPointLookups = 20000;
constexpr uint32_t kScanLookups = 12;  // each pays a full-keyspace sweep
constexpr uint32_t kColdFrames = 64;   // << leaf count: the cold scan misses
constexpr uint32_t kQueueDepth = 16;
constexpr uint32_t kLatencyUs = 120;   // injected per-read device latency

std::string IKey(uint32_t i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%07u", i);
  return std::string(buf);
}

std::string IValue(uint32_t i) {
  std::string v = "v" + std::to_string(i) + "|";
  v.append(64 - (v.size() < 64 ? v.size() : 64), 'x');
  return v;
}

void ArmDeviceLatency() {
  fault::FaultSpec lat;
  lat.action = fault::FaultAction::kLatency;
  lat.latency_us = kLatencyUs;
  lat.count = -1;
  fault::FaultRegistry::Instance().Arm("file.readat", lat);
}

const BTreeIndex::RecordLogger kNoLog;  // standalone: unlogged, like Format

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  PrintHeader("E18: index point lookup + push range scan (DESIGN.md §14)",
              "phase              ops        ops/s     ratio    pages   notes");

  TempDir dir("index");
  auto area = StorageArea::Create(dir.Sub("index.bess"), /*area_id=*/1,
                                  /*initial_extents=*/4);
  if (!area.ok()) return 1;
  if (!BTreeIndex::Format(area->get()).ok()) return 1;

  uint64_t sync_writebacks = 0;
  double build_secs = 0, point_secs = 0, scanbase_secs = 0;
  uint64_t aio_writes = 0, aio_write_runs = 0;
  uint64_t validate_entries = 0;
  bool lookups_ok = true;

  // ---- phase 1: build + warm lookups (steal/no-force write side) -----------
  {
    BTreeIndex::Options bopts;
    bopts.db = 1;
    bopts.cache_frames = 512;  // holds the whole tree: evictions stay clean
    bopts.enable_bgwriter = true;
    bopts.bgwriter_interval_ms = 2;
    bopts.use_async = true;
    auto ix_r = BTreeIndex::Open(area->get(), bopts);
    if (!ix_r.ok()) return 1;
    BTreeIndex* ix = ix_r->get();

    build_secs = TimeIt([&] {
      for (uint32_t i = 0; i < kObjects; ++i) {
        // Pseudo-random insertion order: splits land all over the keyspace.
        const uint32_t k = (i * 7919u) % kObjects;
        if (!ix->Put(IKey(k), IValue(k), kNoLog).ok()) return;
      }
    });

    // Warm point lookups: O(height) binary searches against cached frames.
    Random rng(0xE18);
    uint64_t found = 0;
    point_secs = TimeIt([&] {
      std::string v;
      for (uint32_t i = 0; i < kPointLookups; ++i) {
        const uint32_t k = static_cast<uint32_t>(rng.Uniform(kObjects));
        auto r = ix->Get(IKey(k), &v);
        if (r.ok() && *r) ++found;
      }
    });
    lookups_ok = lookups_ok && found == kPointLookups;

    // Scan-everything baseline: what a point lookup costs with no access
    // path — sweep the keyspace comparing keys (no early exit; an unordered
    // heap file could not stop early either).
    uint64_t scan_found = 0;
    scanbase_secs = TimeIt([&] {
      for (uint32_t i = 0; i < kScanLookups; ++i) {
        const std::string want = IKey(static_cast<uint32_t>(
            rng.Uniform(kObjects)));
        (void)ix->Scan("", "", [&](Slice k, Slice) {
          if (k.compare(want) == 0) ++scan_found;
          return Status::OK();
        });
      }
    });
    lookups_ok = lookups_ok && scan_found == kScanLookups;

    if (!ix->Validate(&validate_entries).ok()) return 1;
    if (!ix->FlushDirty().ok()) return 1;
    const aio::AioStats aio = ix->async_io()->stats();
    aio_writes = aio.writes;
    aio_write_runs = aio.write_runs;
    sync_writebacks += ix->table()->stats().sync_writebacks;
    ix_r->reset();
    if (!(*area)->Sync().ok()) return 1;
  }

  const double point_rate = kPointLookups / point_secs;
  const double scanbase_rate = kScanLookups / scanbase_secs;
  const double point_speedup = point_rate / scanbase_rate;
  printf("build        %8u   %10.0f         -        -   %llu writes in "
         "%llu runs\n",
         kObjects, kObjects / build_secs,
         static_cast<unsigned long long>(aio_writes),
         static_cast<unsigned long long>(aio_write_runs));
  printf("point        %8u   %10.0f         -        -   warm, O(height)\n",
         kPointLookups, point_rate);
  printf("scan-base    %8u   %10.1f   %6.0fx        -   full sweep per "
         "lookup\n",
         kScanLookups, scanbase_rate, point_speedup);

  // ---- phase 2: cold range scan through the push pipeline ------------------
  // Median of 3 fresh-runtime repetitions: the ratio gate compares two
  // ~10ms wall times, so one scheduler hiccup in either phase would swing
  // it; the median absorbs that without softening the bound.
  uint64_t scan_entries = 0, index_pages = 0, scan_staged = 0;
  double index_scan_secs = 0;
  {
    std::vector<double> runs;
    for (int rep = 0; rep < 3; ++rep) {
      BTreeIndex::Options copts;
      copts.db = 1;
      copts.cache_frames = kColdFrames;
      copts.enable_bgwriter = false;  // read-only phase
      copts.use_async = true;
      copts.async_workers = kQueueDepth;
      copts.async_queue_depth = kQueueDepth;
      auto ix_r = BTreeIndex::Open(area->get(), copts);
      if (!ix_r.ok()) return 1;
      BTreeIndex* ix = ix_r->get();

      uint64_t entries = 0;
      ArmDeviceLatency();
      runs.push_back(TimeIt([&] {
        (void)ix->Scan("", "", [&](Slice, Slice) {
          ++entries;
          return Status::OK();
        });
      }));
      fault::FaultRegistry::Instance().DisarmAll();
      const FrameTable::Stats ts = ix->table()->stats();
      scan_entries = entries;
      index_pages = ts.scan_pages;
      scan_staged = ts.scan_staged;
      sync_writebacks += ts.sync_writebacks;
      ix_r->reset();
    }
    std::sort(runs.begin(), runs.end());
    index_scan_secs = runs[1];
  }
  const double index_pps = index_pages / index_scan_secs;
  printf("index-scan   %8llu   %10.0f         -   %6llu   %llu staged, "
         "%uus/read\n",
         static_cast<unsigned long long>(scan_entries), index_pps,
         static_cast<unsigned long long>(index_pages),
         static_cast<unsigned long long>(scan_staged), kLatencyUs);

  // ---- phase 3: raw ScanRange baseline over the same pipeline --------------
  // Same frame count, queue depth, injected latency and page count — the only
  // difference is the tree layering the 1.5x bound is pricing.
  double raw_scan_secs = 0;
  uint64_t raw_pages = index_pages;
  {
    auto raw_area = StorageArea::Create(dir.Sub("raw.bess"), /*area_id=*/0,
                                        /*initial_extents=*/4);
    if (!raw_area.ok()) return 1;
    AreaSegmentStore store;
    store.AddArea(1, 0, raw_area->get());
    std::string img(kPageSize, '\0');
    for (uint32_t p = 0; p < raw_pages; ++p) {
      for (size_t i = 0; i < kPageSize; ++i) {
        img[i] = static_cast<char>((p * 131 + i) & 0xFF);
      }
      if (!store.WritePages(1, 0, p, 1, img.data()).ok()) return 1;
    }

    std::vector<double> runs;
    for (int rep = 0; rep < 3; ++rep) {
      StorePageIo sync_io(&store);
      AsyncPageIoOptions aopts;
      aopts.backend = "pool";  // deterministic, as in bench_scan
      aopts.queue_depth = kQueueDepth;
      aopts.workers = kQueueDepth;
      auto aio_io = MakeAsyncPageIo(aopts, &sync_io, nullptr);
      if (!aio_io.ok()) return 1;
      HeapPlacement placement(kColdFrames);
      StorePageIo io(&store);
      FrameTable::Options fopts;
      fopts.frame_count = kColdFrames;
      fopts.async_io = aio_io->get();
      fopts.async_queue_depth = kQueueDepth;
      FrameTable table(fopts, &placement, &io);
      if (!table.Init().ok()) return 1;

      ArmDeviceLatency();
      runs.push_back(TimeIt([&] {
        (void)table.ScanRange(PageAddr{1, 0, 0}.Pack(), raw_pages,
                              [&](uint64_t, const void*) {
                                return Status::OK();
                              });
      }));
      fault::FaultRegistry::Instance().DisarmAll();
      sync_writebacks += table.stats().sync_writebacks;
      table.Stop();
    }
    std::sort(runs.begin(), runs.end());
    raw_scan_secs = runs[1];
  }
  const double raw_pps = raw_pages / raw_scan_secs;
  // >1 = the index scan is slower than raw page delivery; the gate caps this.
  const double range_ratio = raw_pps / index_pps;
  printf("raw-scan     %8llu   %10.0f   %6.2fx   %6llu   ScanRange, same "
         "pipeline\n",
         static_cast<unsigned long long>(raw_pages), raw_pps, range_ratio,
         static_cast<unsigned long long>(raw_pages));
  printf("\n%llu sync evict write-backs across all phases\n",
         static_cast<unsigned long long>(sync_writebacks));

  printf("\nExpectation: the tree turns a 10k-object sweep into an O(height)\n"
         "descent (>=10x), and its leaf scan rides the same push pipeline as\n"
         "raw ScanRange (within 1.5x), with the bgwriter keeping the demand\n"
         "path free of sync write-backs.\n");

  {
    std::string out_dir = ".";
    if (const char* env = ::getenv("BESS_METRICS_DIR")) out_dir = env;
    const std::string path = out_dir + "/BENCH_index.json";
    FILE* f = fopen(path.c_str(), "w");
    if (f == nullptr) {
      fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    fprintf(f,
            "{\n"
            "  \"objects\": %u,\n"
            "  \"build_per_sec\": %.0f,\n"
            "  \"point_lookups\": %u,\n"
            "  \"point_per_sec\": %.1f,\n"
            "  \"scanbase_per_sec\": %.3f,\n"
            "  \"point_speedup\": %.1f,\n"
            "  \"scan_entries\": %llu,\n"
            "  \"index_scan_pages\": %llu,\n"
            "  \"index_pages_per_sec\": %.1f,\n"
            "  \"raw_pages_per_sec\": %.1f,\n"
            "  \"range_ratio\": %.3f,\n"
            "  \"scan_staged\": %llu,\n"
            "  \"latency_us\": %u,\n"
            "  \"aio_writes\": %llu,\n"
            "  \"aio_write_runs\": %llu,\n"
            "  \"write_batch_factor\": %.2f,\n"
            "  \"validate_entries\": %llu,\n"
            "  \"lookups_ok\": %d,\n"
            "  \"evict_sync_writebacks\": %llu\n"
            "}\n",
            kObjects, kObjects / build_secs, kPointLookups, point_rate,
            scanbase_rate, point_speedup,
            static_cast<unsigned long long>(scan_entries),
            static_cast<unsigned long long>(index_pages), index_pps, raw_pps,
            range_ratio, static_cast<unsigned long long>(scan_staged),
            kLatencyUs, static_cast<unsigned long long>(aio_writes),
            static_cast<unsigned long long>(aio_write_runs),
            aio_write_runs != 0
                ? static_cast<double>(aio_writes) / aio_write_runs
                : 0.0,
            static_cast<unsigned long long>(validate_entries),
            lookups_ok && validate_entries == kObjects ? 1 : 0,
            static_cast<unsigned long long>(sync_writebacks));
    fclose(f);
    printf("wrote %s\n", path.c_str());
  }
  WriteMetricsSidecar("bench_index");
  return 0;
}
