// E9 (paper §4.1.2, Figure 4): the shared virtual address space machinery.
//
// Measures the building blocks that make pointers valid across processes in
// shared-memory mode: SMT assignment (fix-once), hit-path Fix cost,
// shm_ref translation vs a raw pointer, and the second-chance transition.
#include <sys/mman.h>

#include "bess/bess.h"
#include "bess/bess_internal.h"
#include "workload.h"

using namespace bessbench;

namespace {

class ZeroStore : public SegmentStore {
 public:
  Status FetchSlotted(SegmentId, void*, uint32_t*) override {
    return Status::NotSupported("");
  }
  Status FetchPages(uint16_t, uint16_t, PageId, uint32_t count,
                    void* buf) override {
    memset(buf, 0, static_cast<size_t>(count) * kPageSize);
    return Status::OK();
  }
  Status WritePages(uint16_t, uint16_t, PageId, uint32_t,
                    const void*) override {
    return Status::OK();
  }
};

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  const std::string shm_name = "/bess_svma_" + std::to_string(::getpid());
  SharedCache::Geometry geo;
  geo.frame_count = 512;
  geo.vframe_count = 2048;
  geo.smt_capacity = 4096;
  auto cache = SharedCache::Create(shm_name, geo);
  if (!cache.ok()) return 1;
  ZeroStore store;
  auto space = SharedPageSpace::Open(std::move(*cache), &store);
  if (!space.ok()) return 1;

  PrintHeader("E9: shared virtual address space machinery (§4.1.2)",
              "operation                              ns/op");

  // First-fix: SMT assignment + fetch + MAP_FIXED bind (fix-once).
  const int kPages = 400;
  double first = TimeIt([&] {
    for (uint32_t p = 0; p < kPages; ++p) {
      auto addr = (*space)->Fix(PageAddr{1, 0, p}, false);
      if (!addr.ok()) exit(1);
    }
  });
  printf("first fix (SMT assign + fetch + bind)  %8.0f\n",
         first / kPages * 1e9);

  // Hit-path fix: already accessible.
  const int kHits = 200000;
  double hits = TimeIt([&] {
    Random rng(1);
    for (int i = 0; i < kHits; ++i) {
      auto addr = (*space)->Fix(
          PageAddr{1, 0, static_cast<PageId>(rng.Uniform(kPages))}, false);
      if (!addr.ok()) exit(1);
    }
  });
  printf("fix, page accessible (hit)             %8.1f\n",
         hits / kHits * 1e9);

  // shm_ref translation vs raw pointer chase.
  auto a0 = (*space)->Fix(PageAddr{1, 0, 0}, true);
  if (!a0.ok()) return 1;
  SharedPageSpace* sp = space->get();
  auto sref = shm_ref<uint64_t>::FromPointer(sp, static_cast<uint64_t*>(*a0));
  if (!sref.ok()) return 1;
  const int kDerefs = 5000000;
  volatile uint64_t sink = 0;
  double translated = TimeIt([&] {
    for (int i = 0; i < kDerefs; ++i) {
      sink += *sref->get(sp);
    }
  });
  uint64_t* raw = static_cast<uint64_t*>(*a0);
  double raw_time = TimeIt([&] {
    for (int i = 0; i < kDerefs; ++i) {
      sink += *raw;
    }
  });
  printf("shm_ref translate + deref              %8.2f\n",
         translated / kDerefs * 1e9);
  printf("raw pointer deref                      %8.2f\n",
         raw_time / kDerefs * 1e9);

  // Second chance: protected frame re-enabled via a single mprotect.
  if (!(*space)->RunClockLevel1().ok()) return 1;  // all accessible->protected
  const auto before = (*space)->stats().second_chances;
  double second = TimeIt([&] {
    for (uint32_t p = 0; p < kPages; ++p) {
      auto addr = (*space)->Fix(PageAddr{1, 0, p}, false);
      if (!addr.ok()) exit(1);
    }
  });
  const auto taken = (*space)->stats().second_chances - before;
  printf("second chance (protected -> accessible) %7.0f   (%llu taken)\n",
         second / kPages * 1e9, (unsigned long long)taken);

  printf("\nExpectation: after the one-time fix, shared-mode access costs\n"
         "one addition over a raw pointer (the PVMA base); the clock's\n"
         "second chance is a single mprotect, far cheaper than a refetch.\n");
  ::shm_unlink(shm_name.c_str());
  (void)sink;
  WriteMetricsSidecar("bench_svma");
  return 0;
}
