// E13 (paper §3, ref [21]): ARIES-style recovery over the segmented WAL.
//
// Measures: restart (analysis + redo + undo) time as a function of log
// length, how a fuzzy checkpoint bounds restart by the dirty-set size
// rather than the log length, parallel-redo scaling, and group-commit
// coalescing of log syncs under concurrent committers.
//
// Besides the stdout tables, writes BENCH_recovery.json (flat keys, one per
// line — scripts/check_bench_recovery.sh gates on it) into $BESS_METRICS_DIR
// or the current directory.
#include "wal/recovery.h"
#include "workload.h"

using namespace bessbench;

namespace {

// The log is a directory of recycled segments now; "log length" is the sum.
uint64_t WalBytes(const std::string& dir) {
  uint64_t total = 0;
  std::error_code ec;
  for (const auto& e :
       std::filesystem::directory_iterator(dir + "/wal", ec)) {
    if (e.is_regular_file(ec)) total += e.file_size(ec);
  }
  return total;
}

struct RestartSample {
  double restart_ms = 0;
  uint64_t log_bytes = 0;
  RecoveryStats stats;
};

// Runs `txns` single-object commits (checkpointing every `cp_every` if > 0),
// dies without a clean shutdown, then times the recovering reopen.
RestartSample RunRestart(int txns, int cp_every) {
  TempDir dir("recovery");
  {
    Database::Options o;
    o.dir = dir.path();
    o.create = true;
    // Background checkpoints off: the sweep measures explicit-checkpoint
    // placement against raw log length, so the builder must be deterministic.
    o.checkpoint_log_bytes = 0;
    auto db = Database::Open(o);
    if (!db.ok()) exit(1);
    auto file = (*db)->CreateFile("f");
    for (int t = 0; t < txns; ++t) {
      auto txn = (*db)->Begin();
      uint64_t v = static_cast<uint64_t>(t);
      if (!(*db)->CreateObject(*file, kRawBytesType, 128, &v).ok()) exit(1);
      if (!(*db)->Commit(*txn).ok()) exit(1);
      if (cp_every > 0 && t % cp_every == cp_every - 1) {
        if (!(*db)->Checkpoint().ok()) exit(1);
      }
    }
    // No clean shutdown: whatever the log retains, restart must replay.
  }
  RestartSample s;
  s.log_bytes = WalBytes(dir.path());
  Database::Options o;
  o.dir = dir.path();
  o.create = false;
  std::unique_ptr<Database> reopened;
  s.restart_ms = TimeIt([&] {
                   auto db = Database::Open(o);
                   if (!db.ok()) exit(1);
                   reopened = std::move(*db);
                 }) *
                 1e3;
  s.stats = reopened->last_recovery_stats();
  return s;
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);

  PrintHeader("E13: restart recovery time vs log length (§3, [21])",
              "committed-txns   log-MB   restart-ms   records   redo-pages");
  for (int txns : {50, 200, 800}) {
    const RestartSample s = RunRestart(txns, /*cp_every=*/0);
    printf("%14d   %6.1f   %10.1f   %7llu   %10llu\n", txns,
           s.log_bytes / 1048576.0, s.restart_ms,
           (unsigned long long)s.stats.records_scanned,
           (unsigned long long)s.stats.redo_pages);
  }

  PrintHeader(
      "E13b: fuzzy checkpoint bounds restart by dirty set, not log length",
      "checkpoint    restart-ms   records   redo-pages   log-MB-at-restart");
  const RestartSample baseline = RunRestart(400, /*cp_every=*/0);
  const RestartSample fuzzy = RunRestart(400, /*cp_every=*/100);
  for (const auto* s : {&baseline, &fuzzy}) {
    printf("%10s    %10.1f   %7llu   %10llu   %8.1f\n",
           s == &baseline ? "never" : "every 100", s->restart_ms,
           (unsigned long long)s->stats.records_scanned,
           (unsigned long long)s->stats.redo_pages,
           s->log_bytes / 1048576.0);
  }

  PrintHeader("E13c: group commit coalesces log syncs",
              "committers   txns   log-syncs   syncs/txn");
  for (int threads : {1, 4, 8}) {
    TempDir dir("recovery_gc");
    Database::Options o;
    o.dir = dir.path();
    o.create = true;
    auto dbr = Database::Open(o);
    if (!dbr.ok()) return 1;
    auto db = std::move(*dbr);
    // Pre-create one file per thread (separate segments: no conflicts).
    std::vector<uint16_t> files;
    for (int i = 0; i < threads; ++i) {
      auto f = db->CreateFile("f" + std::to_string(i));
      files.push_back(*f);
    }
    const int kPerThread = 50;
    const uint64_t syncs0 = db->wal()->sync_count();
    std::vector<std::thread> workers;
    for (int i = 0; i < threads; ++i) {
      workers.emplace_back([&, i] {
        for (int t = 0; t < kPerThread; ++t) {
          auto txn = db->Begin();
          if (!txn.ok()) return;
          uint64_t v = static_cast<uint64_t>(t);
          (void)db->CreateObject(files[static_cast<size_t>(i)],
                                 kRawBytesType, 64, &v);
          (void)db->Commit(*txn);
        }
      });
    }
    for (auto& w : workers) w.join();
    const uint64_t syncs = db->wal()->sync_count() - syncs0;
    const int total = threads * kPerThread;
    printf("%10d   %4d   %9llu   %9.2f\n", threads, total,
           (unsigned long long)syncs, static_cast<double>(syncs) / total);
  }

  PrintHeader("E13d: parallel redo (same 800-txn log, no checkpoint)",
              "redo-workers   restart-ms   redo-pages");
  RestartSample serial, parallel;
  for (int workers : {1, 4}) {
    TempDir dir("recovery_pr");
    {
      Database::Options o;
      o.dir = dir.path();
      o.create = true;
      o.checkpoint_log_bytes = 0;  // identical logs for both worker counts
      auto db = Database::Open(o);
      if (!db.ok()) return 1;
      auto file = (*db)->CreateFile("f");
      for (int t = 0; t < 800; ++t) {
        auto txn = (*db)->Begin();
        uint64_t v = static_cast<uint64_t>(t);
        if (!(*db)->CreateObject(*file, kRawBytesType, 512, &v).ok()) {
          return 1;
        }
        if (!(*db)->Commit(*txn).ok()) return 1;
      }
    }
    RestartSample s;
    s.log_bytes = WalBytes(dir.path());
    Database::Options o;
    o.dir = dir.path();
    o.create = false;
    o.recovery_redo_workers = workers;
    std::unique_ptr<Database> reopened;
    s.restart_ms = TimeIt([&] {
                     auto db = Database::Open(o);
                     if (!db.ok()) exit(1);
                     reopened = std::move(*db);
                   }) *
                   1e3;
    s.stats = reopened->last_recovery_stats();
    printf("%12d   %10.1f   %10llu\n", s.stats.redo_workers, s.restart_ms,
           (unsigned long long)s.stats.redo_pages);
    (workers == 1 ? serial : parallel) = s;
  }

  printf("\nExpectation: restart time scales with the log to replay; a fuzzy\n"
         "checkpoint bounds it by the dirty set at the checkpoint (the log\n"
         "behind min(recLSN) is recycled, analysis seeds from the snapshot);\n"
         "parallel redo overlaps page writes; concurrent committers share\n"
         "fdatasyncs (syncs per transaction falls below the 1-committer "
         "line).\n");

  // The persistent gate artifact: flat keys, one per line, awk-parseable.
  {
    std::string out_dir = ".";
    if (const char* env = ::getenv("BESS_METRICS_DIR")) out_dir = env;
    const std::string path = out_dir + "/BENCH_recovery.json";
    FILE* f = fopen(path.c_str(), "w");
    if (f == nullptr) {
      fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    fprintf(f,
            "{\n"
            "  \"baseline_restart_ms\": %.3f,\n"
            "  \"baseline_records_scanned\": %llu,\n"
            "  \"baseline_redo_pages\": %llu,\n"
            "  \"baseline_log_bytes\": %llu,\n"
            "  \"fuzzy_restart_ms\": %.3f,\n"
            "  \"fuzzy_records_scanned\": %llu,\n"
            "  \"fuzzy_redo_pages\": %llu,\n"
            "  \"fuzzy_log_bytes\": %llu,\n"
            "  \"redo_workers\": %d,\n"
            "  \"parallel_serial_ms\": %.3f,\n"
            "  \"parallel_ms\": %.3f,\n"
            "  \"parallel_redo_pages\": %llu\n"
            "}\n",
            baseline.restart_ms,
            (unsigned long long)baseline.stats.records_scanned,
            (unsigned long long)baseline.stats.redo_pages,
            (unsigned long long)baseline.log_bytes, fuzzy.restart_ms,
            (unsigned long long)fuzzy.stats.records_scanned,
            (unsigned long long)fuzzy.stats.redo_pages,
            (unsigned long long)fuzzy.log_bytes,
            parallel.stats.redo_workers, serial.restart_ms,
            parallel.restart_ms,
            (unsigned long long)parallel.stats.redo_pages);
    fclose(f);
    printf("[gate artifact: %s]\n", path.c_str());
  }

  WriteMetricsSidecar("bench_recovery");
  return 0;
}
