// E13 (paper §3, ref [21]): ARIES-style recovery and the WAL.
//
// Measures: restart (analysis + redo + undo) time as a function of log
// length, the effect of checkpoints on restart time, and group-commit
// coalescing of log syncs under concurrent committers.
#include "wal/recovery.h"
#include "workload.h"

using namespace bessbench;

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);

  PrintHeader("E13: restart recovery time vs log length (§3, [21])",
              "committed-txns   log-MB   restart-ms   redo-pages");
  for (int txns : {50, 200, 800}) {
    TempDir dir("recovery");
    {
      Database::Options o;
      o.dir = dir.path();
      o.create = true;
      auto db = Database::Open(o);
      if (!db.ok()) return 1;
      auto file = (*db)->CreateFile("f");
      for (int t = 0; t < txns; ++t) {
        auto txn = (*db)->Begin();
        uint64_t v = static_cast<uint64_t>(t);
        if (!(*db)->CreateObject(*file, kRawBytesType, 128, &v).ok()) {
          return 1;
        }
        if (!(*db)->Commit(*txn).ok()) return 1;
      }
      // No clean shutdown: the log stays full, restart must replay it.
    }
    const uint64_t log_bytes = [&] {
      auto f = File::OpenReadOnly(dir.path() + "/wal.log");
      return f.ok() ? f->Size().value_or(0) : 0;
    }();
    double restart_ms = 0;
    uint64_t redo = 0;
    {
      Database::Options o;
      o.dir = dir.path();
      o.create = false;
      std::unique_ptr<Database> reopened;
      restart_ms = TimeIt([&] {
        auto db = Database::Open(o);
        if (!db.ok()) exit(1);
        reopened = std::move(*db);
      }) * 1e3;
      // Redo count is not exposed through Database; rerun recovery on the
      // (now reset) log would be empty — report pages from log size instead.
      redo = log_bytes / kPageSize;
    }
    printf("%14d   %6.1f   %10.1f   ~%llu\n", txns,
           log_bytes / 1048576.0, restart_ms, (unsigned long long)redo);
  }

  PrintHeader("E13b: checkpoint bounds restart time",
              "checkpoint    restart-ms   log-MB-at-restart");
  for (bool checkpoint : {false, true}) {
    TempDir dir("recovery_cp");
    {
      Database::Options o;
      o.dir = dir.path();
      o.create = true;
      auto db = Database::Open(o);
      if (!db.ok()) return 1;
      auto file = (*db)->CreateFile("f");
      for (int t = 0; t < 400; ++t) {
        auto txn = (*db)->Begin();
        uint64_t v = static_cast<uint64_t>(t);
        (void)(*db)->CreateObject(*file, kRawBytesType, 128, &v);
        if (!(*db)->Commit(*txn).ok()) return 1;
        if (checkpoint && t % 100 == 99) {
          if (!(*db)->Checkpoint().ok()) return 1;
        }
      }
    }
    const uint64_t log_bytes = [&] {
      auto f = File::OpenReadOnly(dir.path() + "/wal.log");
      return f.ok() ? f->Size().value_or(0) : 0;
    }();
    double restart_ms = TimeIt([&] {
      Database::Options o;
      o.dir = dir.path();
      o.create = false;
      auto db = Database::Open(o);
      if (!db.ok()) exit(1);
    }) * 1e3;
    printf("%10s    %10.1f   %8.1f\n", checkpoint ? "every 100" : "never",
           restart_ms, log_bytes / 1048576.0);
  }

  PrintHeader("E13c: group commit coalesces log syncs",
              "committers   txns   log-syncs   syncs/txn");
  for (int threads : {1, 4, 8}) {
    TempDir dir("recovery_gc");
    Database::Options o;
    o.dir = dir.path();
    o.create = true;
    auto dbr = Database::Open(o);
    if (!dbr.ok()) return 1;
    auto db = std::move(*dbr);
    // Pre-create one file per thread (separate segments: no conflicts).
    std::vector<uint16_t> files;
    for (int i = 0; i < threads; ++i) {
      auto f = db->CreateFile("f" + std::to_string(i));
      files.push_back(*f);
    }
    const int kPerThread = 50;
    const uint64_t syncs0 = db->wal()->sync_count();
    std::vector<std::thread> workers;
    for (int i = 0; i < threads; ++i) {
      workers.emplace_back([&, i] {
        for (int t = 0; t < kPerThread; ++t) {
          auto txn = db->Begin();
          if (!txn.ok()) return;
          uint64_t v = static_cast<uint64_t>(t);
          (void)db->CreateObject(files[static_cast<size_t>(i)],
                                 kRawBytesType, 64, &v);
          (void)db->Commit(*txn);
        }
      });
    }
    for (auto& w : workers) w.join();
    const uint64_t syncs = db->wal()->sync_count() - syncs0;
    const int total = threads * kPerThread;
    printf("%10d   %4d   %9llu   %9.2f\n", threads, total,
           (unsigned long long)syncs, static_cast<double>(syncs) / total);
  }
  printf("\nExpectation: restart time scales with the log to replay;\n"
         "checkpoints truncate it to near zero (force + no-steal makes the\n"
         "whole log redundant); concurrent committers share fdatasyncs\n"
         "(syncs per transaction falls below the single-committer line).\n");
  WriteMetricsSidecar("bench_recovery");
  return 0;
}
