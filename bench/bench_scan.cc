// E17: push-based scan pipeline (DESIGN.md §13).
//
// The paper's storage manager streams multi-page reads at the device instead
// of faulting one page at a time; this bench regenerates that claim on the
// async page pipeline. A scan over real storage-area files runs two ways:
//
//   pull  — the classic demand path: one Fix per page, each miss paying the
//           (injected) device latency synchronously before the consumer may
//           touch the page.
//   push  — FrameTable::ScanRange with a worker-pool async backend: reads
//           are staged `queue_depth` ahead of the consumer, so device time
//           overlaps both compute and the other reads in the batch.
//
// Device latency is injected (kLatency on "file.readat") so the ratio is
// deterministic on any build box — the pool backend is forced for the same
// reason (uring timing would measure the kernel, not the pipeline; the
// uring path is covered for correctness by async_io_test). A second phase
// dirties pages and counts WAL durability gates per async bgwriter batch.
//
// Writes BENCH_scan.json (flat keys, one per line) for
// scripts/check_bench_scan.sh:
//   push pages/s >= 2x pull at queue depth 8,
//   cache.evict.sync_writeback == 0,
//   one WAL gate per async flush batch,
//   every scanned page verified byte-exact.
#include <unistd.h>

#include <string>
#include <vector>

#include "cache/async_page_io.h"
#include "cache/frame_table.h"
#include "os/async_io.h"
#include "os/fault_injection.h"
#include "storage/area_store.h"
#include "storage/storage_area.h"
#include "workload.h"

using namespace bessbench;

namespace {

constexpr uint32_t kScanPages = 384;   // several extents
constexpr uint32_t kFrames = 48;
constexpr uint32_t kLatencyUs = 120;   // injected per-page device latency

std::string PatternPage(uint32_t p) {
  std::string bytes(kPageSize, '\0');
  for (size_t i = 0; i < kPageSize; ++i) {
    bytes[i] = static_cast<char>((p * 131 + i) & 0xFF);
  }
  return bytes;
}

uint64_t Key(uint32_t p) { return PageAddr{1, 0, p}.Pack(); }

/// Per-page consumer compute: fold the page into a checksum the optimizer
/// cannot drop — the "compute" half of the compute/IO overlap claim.
uint64_t TouchPage(const void* page) {
  const uint64_t* w = static_cast<const uint64_t*>(page);
  uint64_t acc = 0;
  for (size_t i = 0; i < kPageSize / sizeof(uint64_t); ++i) acc ^= w[i];
  return acc;
}

void ArmDeviceLatency() {
  fault::FaultSpec lat;
  lat.action = fault::FaultAction::kLatency;
  lat.latency_us = kLatencyUs;
  lat.count = -1;
  fault::FaultRegistry::Instance().Arm("file.readat", lat);
}

struct ScanResult {
  double pages_per_sec = 0;
  double overlap_ratio = 0;  ///< io-busy time / wall time (>1 = overlapped)
  uint64_t staged = 0;
  uint64_t fallbacks = 0;
  uint64_t read_runs = 0;  ///< device read ops after request coalescing
  uint64_t checksum = 0;
};

ScanResult RunPull(AreaSegmentStore* store) {
  HeapPlacement placement(kFrames);
  StorePageIo io(store);
  FrameTable::Options opts;
  opts.frame_count = kFrames;
  FrameTable table(opts, &placement, &io);
  if (!table.Init().ok()) return {};

  ScanResult r;
  ArmDeviceLatency();
  const double secs = TimeIt([&] {
    for (uint32_t p = 0; p < kScanPages; ++p) {
      auto fix = table.Fix(Key(p), /*for_write=*/false);
      if (!fix.ok()) return;
      r.checksum ^= TouchPage(fix->data);
    }
  });
  fault::FaultRegistry::Instance().DisarmAll();
  r.pages_per_sec = kScanPages / secs;
  // Pull is fully serial: the device is busy exactly while the consumer
  // waits, so the overlap numerator is the injected latency itself.
  r.overlap_ratio = (kScanPages * kLatencyUs * 1e-6) / secs;
  table.Stop();
  return r;
}

ScanResult RunPush(AreaSegmentStore* store, uint32_t depth) {
  StorePageIo sync_io(store);
  AsyncPageIoOptions aopts;
  aopts.backend = "pool";  // deterministic; see header comment
  aopts.queue_depth = depth;
  aopts.workers = depth;
  auto aio_io = MakeAsyncPageIo(aopts, &sync_io, nullptr);
  if (!aio_io.ok()) return {};

  HeapPlacement placement(kFrames);
  StorePageIo io(store);
  FrameTable::Options opts;
  opts.frame_count = kFrames;
  opts.async_io = aio_io->get();
  opts.async_queue_depth = depth;
  FrameTable table(opts, &placement, &io);
  if (!table.Init().ok()) return {};

  ScanResult r;
  ArmDeviceLatency();
  const double secs = TimeIt([&] {
    (void)table.ScanRange(Key(0), kScanPages,
                          [&](uint64_t, const void* page) {
                            r.checksum ^= TouchPage(page);
                            return Status::OK();
                          });
  });
  fault::FaultRegistry::Instance().DisarmAll();
  r.pages_per_sec = kScanPages / secs;
  const aio::AioStats stats = (*aio_io)->stats();
  r.overlap_ratio = (stats.io_busy_ns * 1e-9) / secs;
  r.read_runs = stats.read_runs;
  const FrameTable::Stats ts = table.stats();
  r.staged = ts.scan_staged;
  r.fallbacks = ts.scan_fallbacks;
  table.Stop();
  return r;
}

/// WAL-gate-per-batch audit for phase 2.
class GateCountingIo : public StorePageIo {
 public:
  explicit GateCountingIo(SegmentStore* store) : StorePageIo(store) {}
  Status EnsureWalDurable(uint64_t) override {
    ++gates_;
    return Status::OK();
  }
  uint64_t gates() const { return gates_; }

 private:
  uint64_t gates_ = 0;
};

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  PrintHeader("E17: push-based scan pipeline (DESIGN.md §13)",
              "path       depth   pages/s    vs-pull   overlap   staged   io-ops");

  TempDir dir("scan");
  auto area = StorageArea::Create(dir.Sub("scan.bess"), /*area_id=*/0,
                                  /*initial_extents=*/1);
  if (!area.ok()) return 1;
  AreaSegmentStore store;
  store.AddArea(1, 0, area->get());
  uint64_t expect_checksum = 0;
  for (uint32_t p = 0; p < kScanPages; ++p) {
    const std::string img = PatternPage(p);
    expect_checksum ^= TouchPage(img.data());
    if (!store.WritePages(1, 0, p, 1, img.data()).ok()) return 1;
  }

  const ScanResult pull = RunPull(&store);
  if (pull.pages_per_sec <= 0) return 1;
  printf("pull           -   %8.0f      1.00x    %5.2f        -   %6u\n",
         pull.pages_per_sec, pull.overlap_ratio, kScanPages);

  double push_qd[3] = {0, 0, 0};
  double overlap_qd8 = 0;
  uint64_t staged_qd8 = 0, fallbacks_qd8 = 0, read_runs_qd8 = 0;
  bool checksums_ok = pull.checksum == expect_checksum;
  const uint32_t depths[3] = {4, 8, 16};
  for (int i = 0; i < 3; ++i) {
    const ScanResult r = RunPush(&store, depths[i]);
    if (r.pages_per_sec <= 0) return 1;
    checksums_ok = checksums_ok && r.checksum == expect_checksum;
    push_qd[i] = r.pages_per_sec;
    if (depths[i] == 8) {
      overlap_qd8 = r.overlap_ratio;
      staged_qd8 = r.staged;
      fallbacks_qd8 = r.fallbacks;
      read_runs_qd8 = r.read_runs;
    }
    printf("push          %2u   %8.0f    %5.2fx    %5.2f   %6llu   %6llu\n",
           depths[i], r.pages_per_sec, r.pages_per_sec / pull.pages_per_sec,
           r.overlap_ratio, static_cast<unsigned long long>(r.staged),
           static_cast<unsigned long long>(r.read_runs));
  }

  // ---- phase 2: async bgwriter batches, one WAL gate per batch -------------
  GateCountingIo gate_io(&store);
  AsyncPageIoOptions aopts;
  aopts.backend = "pool";
  aopts.queue_depth = 16;
  auto aio_io = MakeAsyncPageIo(aopts, &gate_io, nullptr);
  if (!aio_io.ok()) return 1;
  HeapPlacement placement(kFrames);
  FrameTable::Options opts;
  opts.frame_count = kFrames;
  opts.enable_bgwriter = true;
  opts.bgwriter_interval_ms = 1;
  opts.async_io = aio_io->get();
  opts.async_queue_depth = 16;
  FrameTable table(opts, &placement, &gate_io);
  if (!table.Init().ok()) return 1;
  // Dirty fewer pages than there are frames, so the audit window holds only
  // bgwriter traffic: every EnsureWalDurable between here and the snapshot
  // below comes from an async flush batch (no eviction pressure, no
  // FlushDirty) — the per-batch gate claim is measured clean.
  constexpr uint32_t kDirtyPages = 32;
  static_assert(kDirtyPages < kFrames, "audit window must fit in the pool");
  for (uint32_t p = 0; p < kDirtyPages; ++p) {
    auto r = table.Fix(Key(p), /*for_write=*/true);
    if (!r.ok()) return 1;
    if (!table.MarkDirty(r->frame, p + 1).ok()) return 1;
  }
  for (int spin = 0; spin < 5000; ++spin) {
    if (table.stats().bgwriter_flushed >= kDirtyPages) break;
    ::usleep(1000);
  }
  const FrameTable::Stats bg = table.stats();
  const uint64_t gates = gate_io.gates();
  // Churn reads past capacity: evictions must find bgwriter-cleaned frames,
  // never paying a sync write-back on the demand path.
  for (uint32_t p = kDirtyPages; p < kScanPages; ++p) {
    if (!table.Fix(Key(p), false).ok()) return 1;
  }
  const uint64_t sync_wb = table.stats().sync_writebacks;
  printf("\nbgwriter: %llu pages flushed in %llu async batches, %llu WAL "
         "gates, %llu sync evict write-backs\n",
         static_cast<unsigned long long>(bg.bgwriter_flushed),
         static_cast<unsigned long long>(bg.async_flush_batches),
         static_cast<unsigned long long>(gates),
         static_cast<unsigned long long>(sync_wb));
  table.Stop();

  printf("\nExpectation: staging reads %u deep overlaps device latency with\n"
         "consumer compute and neighbouring reads — pages/s scales with\n"
         "queue depth until the consumer is the bottleneck; the bgwriter\n"
         "pays one durability gate per batch, not per page.\n",
         8u);

  {
    std::string out_dir = ".";
    if (const char* env = ::getenv("BESS_METRICS_DIR")) out_dir = env;
    const std::string path = out_dir + "/BENCH_scan.json";
    FILE* f = fopen(path.c_str(), "w");
    if (f == nullptr) {
      fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    fprintf(f,
            "{\n"
            "  \"scan_pages\": %u,\n"
            "  \"latency_us\": %u,\n"
            "  \"pull_pages_per_sec\": %.1f,\n"
            "  \"push_pages_per_sec_qd4\": %.1f,\n"
            "  \"push_pages_per_sec_qd8\": %.1f,\n"
            "  \"push_pages_per_sec_qd16\": %.1f,\n"
            "  \"speedup_qd8\": %.3f,\n"
            "  \"overlap_ratio_qd8\": %.3f,\n"
            "  \"scan_staged_qd8\": %llu,\n"
            "  \"scan_fallbacks_qd8\": %llu,\n"
            "  \"read_runs_qd8\": %llu,\n"
            "  \"batch_factor_qd8\": %.2f,\n"
            "  \"checksums_ok\": %d,\n"
            "  \"bg_flushed\": %llu,\n"
            "  \"bg_batches\": %llu,\n"
            "  \"bg_wal_gates\": %llu,\n"
            "  \"evict_sync_writebacks\": %llu,\n"
            "  \"uring_available\": %d\n"
            "}\n",
            kScanPages, kLatencyUs, pull.pages_per_sec, push_qd[0],
            push_qd[1], push_qd[2], push_qd[1] / pull.pages_per_sec,
            overlap_qd8, static_cast<unsigned long long>(staged_qd8),
            static_cast<unsigned long long>(fallbacks_qd8),
            static_cast<unsigned long long>(read_runs_qd8),
            read_runs_qd8 != 0
                ? static_cast<double>(kScanPages) / read_runs_qd8
                : 0.0,
            checksums_ok ? 1 : 0,
            static_cast<unsigned long long>(bg.bgwriter_flushed),
            static_cast<unsigned long long>(bg.async_flush_batches),
            static_cast<unsigned long long>(gates),
            static_cast<unsigned long long>(sync_wb),
            aio::AsyncFileEngine::UringSupported() ? 1 : 0);
    fclose(f);
    printf("wrote %s\n", path.c_str());
  }
  WriteMetricsSidecar("bench_scan");
  return 0;
}
