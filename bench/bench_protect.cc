// E4 (paper §2.2, ref [31]): the cost of corruption prevention.
//
// "The major cost associated with this kind of protection is an increased
// number of system calls, which for many applications is an acceptable
// tradeoff." Every BeSS-internal mutation of a write-protected control
// structure pays an unprotect/reprotect mprotect pair; this bench measures
// that pair directly and in context (object creation with protection on
// and off), plus the one-time protection cost per fetched segment.
#include "os/vmem.h"
#include "workload.h"

using namespace bessbench;

int main() {
  // --- Raw mprotect pair cost. -------------------------------------------------
  PrintHeader("E4: corruption-prevention cost (§2.2)",
              "measurement                                value");
  {
    auto mem = vmem::Reserve(16 * kPageSize);
    if (!mem.ok()) return 1;
    (void)vmem::CommitAnonymous(*mem, 16 * kPageSize, vmem::kReadWrite);
    const int kPairs = 20000;
    double secs = TimeIt([&] {
      for (int i = 0; i < kPairs; ++i) {
        (void)vmem::Protect(*mem, kPageSize, vmem::kReadWrite);
        (void)vmem::Protect(*mem, kPageSize, vmem::kRead);
      }
    });
    printf("unprotect+reprotect pair                  %8.0f ns\n",
           secs / kPairs * 1e9);
    (void)vmem::Release(*mem, 16 * kPageSize);
  }

  // --- In context: object creation with and without slotted protection. -------
  const int kObjects = 5000;
  auto run = [&](bool protect) -> double {
    TempDir dir(protect ? "prot_on" : "prot_off");
    Database::Options o;
    o.dir = dir.path();
    o.create = true;
    o.mapper.protect_slotted = protect;
    auto db = Database::Open(o);
    if (!db.ok()) exit(1);
    auto file = (*db)->CreateFile("f");
    auto txn = (*db)->Begin();
    uint64_t payload = 1;
    const double secs = TimeIt([&] {
      for (int i = 0; i < kObjects; ++i) {
        auto s = (*db)->CreateObject(*file, kRawBytesType, 64, &payload);
        if (!s.ok()) exit(1);
      }
    });
    (void)(*db)->Commit(*txn);
    return secs;
  };

  vmem::ResetCounters();
  const double with_prot = run(true);
  const uint64_t prot_calls = vmem::GetCounters().protect_calls;
  vmem::ResetCounters();
  const double without = run(false);
  const uint64_t noprot_calls = vmem::GetCounters().protect_calls;

  printf("create %d objects, protection ON          %8.1f ms  (%llu mprotect "
         "calls)\n",
         kObjects, with_prot * 1e3, (unsigned long long)prot_calls);
  printf("create %d objects, protection OFF         %8.1f ms  (%llu mprotect "
         "calls)\n",
         kObjects, without * 1e3, (unsigned long long)noprot_calls);
  printf("overhead                                  %8.1f%%\n",
         (with_prot / without - 1.0) * 100.0);
  printf("\nExpectation: the cost is ~2 mprotect syscalls per control-\n"
         "structure update (the paper's \"increased number of system\n"
         "calls\", ref [31]). The relative overhead therefore tracks the\n"
         "host's syscall latency; creation-heavy microloops are the worst\n"
         "case, read-mostly applications amortize it to near zero.\n");
  WriteMetricsSidecar("bench_protect");
  return 0;
}
